// Project lint: mechanical source rules that the compiler cannot (or only
// partially) enforce, run over src/ as a ctest entry and as the `lint` leg
// of scripts/check.sh. No external dependencies — plain std::filesystem
// walk plus a small comment/string stripper.
//
// Rules (docs/CORRECTNESS.md has the rationale):
//   raw-alloc      No `new` / `delete` / `malloc` / `calloc` / `realloc` /
//                  `free` in src/ — containers only; the hot path must not
//                  hide allocations. `= delete`d special members are fine.
//                  Suppress per file with a
//                  `springdtw-lint: allow-file(raw-alloc)` comment (only
//                  util/memory.cc, which implements the allocation
//                  tracker's operator new/delete replacements).
//   nodiscard      util/status.h must keep `[[nodiscard]]` on Status and
//                  StatusOr — that attribute is the compile-time half of
//                  the "no unchecked Status" rule; losing it silently
//                  disarms -Werror=unused-result across the codebase.
//   no-float       No `float` type or f-suffixed literals under src/dtw/
//                  and src/core/: all distance math is double (the paper's
//                  guarantees are argued in exact DTW terms; a stray float
//                  literal demotes an entire expression).
//   include-guard  Every header under src/ carries the canonical
//                  `SPRINGDTW_<PATH>_H_` include guard.
//   memory-order   Every std::atomic load/store/RMW call must name an
//                  explicit std::memory_order AND carry a same-line-or-
//                  preceding `// order:` justification comment, so the
//                  SPSC ring and drain-barrier acquire/release pairs are
//                  machine-checked documentation. Only runs in files that
//                  mention std::atomic.
//   raw-mutex      No std::mutex / std::lock_guard / std::unique_lock /
//                  std::condition_variable outside util/ — everything
//                  locks through the annotated util::Mutex wrappers so
//                  Clang Thread Safety Analysis sees every lock site.
//   thread-annotation
//                  Every util::Mutex member (and any member named *_mu /
//                  *_mu_) must guard something: the file must annotate at
//                  least one sibling with GUARDED_BY(that mutex) (or
//                  REQUIRES/ACQUIRE), or the declaration must carry an
//                  explicit allow comment (park-only mutexes).
//
// Suppressions: `springdtw-lint: allow-file(RULE)` anywhere in the file
// disables RULE for the whole file; `springdtw-lint: allow(RULE)` on the
// violating line or the line above disables RULE for that site.
//
// Usage: springdtw_lint <src-dir>   (exit 0 = clean, 1 = violations,
//                                    2 = usage/IO error)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({file, line, rule, message});
}

/// Replaces comments and string/char literal contents with spaces, keeping
/// newlines so line numbers survive. Good enough for token scanning; raw
/// strings are treated as plain strings (none in this codebase carry code).
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True if `word` occurs in `line` as a whole token; sets *pos.
bool FindToken(const std::string& line, const std::string& word,
               size_t* pos) {
  size_t from = 0;
  while ((from = line.find(word, from)) != std::string::npos) {
    const bool left_ok = from == 0 || !IsIdentChar(line[from - 1]);
    const size_t end = from + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      *pos = from;
      return true;
    }
    from = end;
  }
  return false;
}

/// Last non-space character before `pos`, or '\0'.
char LastNonSpaceBefore(const std::string& line, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(line[pos]))) {
      return line[pos];
    }
  }
  return '\0';
}

bool EndsWithToken(const std::string& line, size_t pos,
                   const std::string& word) {
  // True if the token `word` immediately precedes position `pos`
  // (whitespace-separated) — used for `operator delete`, `= delete`.
  size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  if (end < word.size()) return false;
  const size_t start = end - word.size();
  if (line.compare(start, word.size(), word) != 0) return false;
  return start == 0 || !IsIdentChar(line[start - 1]);
}

void CheckRawAlloc(const std::string& file, const std::string& raw_text,
                   const std::vector<std::string>& stripped_lines) {
  if (raw_text.find("springdtw-lint: allow-file(raw-alloc)") !=
      std::string::npos) {
    return;
  }
  static const char* kTokens[] = {"new",    "delete",  "malloc",
                                  "calloc", "realloc", "free"};
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    // Preprocessor lines (`#include <new>`) are not code.
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (const char* token : kTokens) {
      size_t pos = 0;
      if (!FindToken(line, token, &pos)) continue;
      const std::string word(token);
      if (word == "delete" || word == "new") {
        // `= delete;` / `= delete("...")` special members are not
        // allocation; `operator new/delete` declarations only appear in
        // allow-listed files and would be flagged here otherwise.
        if (LastNonSpaceBefore(line, pos) == '=') continue;
        if (EndsWithToken(line, pos, "operator")) {
          Report(file, n + 1, "raw-alloc",
                 "operator " + word +
                     " outside an allow-file(raw-alloc) file");
          continue;
        }
      }
      Report(file, n + 1, "raw-alloc",
             "raw allocation token `" + word +
                 "`; use containers / RAII (see docs/CORRECTNESS.md)");
    }
  }
}

void CheckNoFloat(const std::string& file,
                  const std::vector<std::string>& stripped_lines) {
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    size_t pos = 0;
    if (FindToken(line, "float", &pos)) {
      Report(file, n + 1, "no-float",
             "`float` in distance code; all DTW math is double");
    }
    // f-suffixed decimal literals (1.0f, 2f, 1e3f). Hex literals like
    // 0x3f are skipped by requiring the digit run to not follow 'x'/'X'
    // and to contain no hex-only letters.
    for (size_t i = 0; i < line.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(line[i]))) continue;
      if (i > 0 && (IsIdentChar(line[i - 1]) || line[i - 1] == '.')) {
        continue;  // Part of an identifier or already inside a number.
      }
      size_t j = i;
      bool hex = false;
      if (line[j] == '0' && j + 1 < line.size() &&
          (line[j + 1] == 'x' || line[j + 1] == 'X')) {
        hex = true;
        j += 2;
        while (j < line.size() &&
               std::isxdigit(static_cast<unsigned char>(line[j]))) {
          ++j;
        }
      } else {
        while (j < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[j])) ||
                line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        if (j < line.size() && (line[j] == 'e' || line[j] == 'E')) {
          ++j;
          if (j < line.size() && (line[j] == '+' || line[j] == '-')) ++j;
          while (j < line.size() &&
                 std::isdigit(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
        }
      }
      if (!hex && j < line.size() && (line[j] == 'f' || line[j] == 'F') &&
          (j + 1 >= line.size() || !IsIdentChar(line[j + 1]))) {
        Report(file, n + 1, "no-float",
               "f-suffixed literal demotes the expression to float");
      }
      i = j;
    }
  }
}

void CheckIncludeGuard(const std::string& file, const fs::path& rel,
                       const std::string& raw_text) {
  std::string guard = "SPRINGDTW_";
  for (const char c : rel.generic_string()) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';  // src/util/codec.h -> SPRINGDTW_UTIL_CODEC_H_
  if (raw_text.find("#ifndef " + guard) == std::string::npos ||
      raw_text.find("#define " + guard) == std::string::npos) {
    Report(file, 1, "include-guard",
           "missing or misnamed include guard; expected " + guard);
  }
}

/// True when raw line `n` (0-based) or the line above carries a
/// `springdtw-lint: allow(rule)` comment.
bool LineAllows(const std::vector<std::string>& raw_lines, size_t n,
                const std::string& rule) {
  const std::string marker = "springdtw-lint: allow(" + rule + ")";
  if (n < raw_lines.size() &&
      raw_lines[n].find(marker) != std::string::npos) {
    return true;
  }
  return n > 0 && raw_lines[n - 1].find(marker) != std::string::npos;
}

bool FileAllows(const std::string& raw_text, const std::string& rule) {
  return raw_text.find("springdtw-lint: allow-file(" + rule + ")") !=
         std::string::npos;
}

std::string TrimmedView(const std::string& line) {
  const size_t first = line.find_first_not_of(" \t");
  if (first == std::string::npos) return std::string();
  const size_t last = line.find_last_not_of(" \t");
  return line.substr(first, last - first + 1);
}

/// Atomic member-function tokens checked by the memory-order rule.
const char* const kAtomicOps[] = {
    "load",       "store",       "exchange",
    "fetch_add",  "fetch_sub",   "fetch_and",
    "fetch_or",   "fetch_xor",   "compare_exchange_weak",
    "compare_exchange_strong"};

/// True when the stripped line could be part of the same annotated atomic
/// statement group as a line below it: a comment-only raw line, a
/// memory_order-carrying continuation, another atomic op, or an obvious
/// statement continuation (trailing `=`, `,` or `(`). The upward scan for
/// the `// order:` justification walks through such lines so one comment
/// may cover a contiguous run of atomic ops (write `order: relaxed ×2`).
bool PartOfAtomicGroup(const std::string& raw_line,
                       const std::string& stripped_line) {
  const std::string trimmed_raw = TrimmedView(raw_line);
  if (trimmed_raw.empty() || trimmed_raw.rfind("//", 0) == 0) return true;
  if (stripped_line.find("memory_order") != std::string::npos) return true;
  size_t pos = 0;
  for (const char* op : kAtomicOps) {
    if (FindToken(stripped_line, op, &pos)) return true;
  }
  const std::string trimmed = TrimmedView(stripped_line);
  if (trimmed.empty()) return true;
  const char last = trimmed.back();
  return last == '=' || last == ',' || last == '(';
}

/// `// order:` justification on the op's line or reachable through the
/// contiguous atomic statement group above it.
bool HasOrderComment(const std::vector<std::string>& raw_lines,
                     const std::vector<std::string>& stripped_lines,
                     size_t n) {
  if (raw_lines[n].find("order:") != std::string::npos &&
      raw_lines[n].find("//") != std::string::npos) {
    return true;
  }
  const size_t scan_limit = 12;
  for (size_t back = 1; back <= scan_limit && back <= n; ++back) {
    const size_t k = n - back;
    const std::string trimmed = TrimmedView(raw_lines[k]);
    if (trimmed.rfind("//", 0) == 0 &&
        trimmed.find("order:") != std::string::npos) {
      return true;
    }
    if (!PartOfAtomicGroup(raw_lines[k], stripped_lines[k])) return false;
  }
  return false;
}

void CheckMemoryOrder(const std::string& file,
                      const std::string& raw_text,
                      const std::vector<std::string>& raw_lines,
                      const std::vector<std::string>& stripped_lines) {
  // Only meaningful where atomics are in play; `.load(` on non-atomics
  // (config readers etc.) must not trip the rule elsewhere.
  if (raw_text.find("std::atomic") == std::string::npos) return;
  if (FileAllows(raw_text, "memory-order")) return;
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    for (const char* op : kAtomicOps) {
      const std::string word(op);
      size_t from = 0;
      while ((from = line.find(word, from)) != std::string::npos) {
        const size_t end = from + word.size();
        const bool left_ok = from == 0 || !IsIdentChar(line[from - 1]);
        const bool right_ok = end < line.size() && line[end] == '(';
        const bool member_call =
            from > 0 && (line[from - 1] == '.' || line[from - 1] == '>');
        from = end;
        if (!left_ok || !right_ok || !member_call) continue;
        if (LineAllows(raw_lines, n, "memory-order")) continue;
        // The call's argument list may wrap; search to the statement end.
        std::string statement = line.substr(from);
        for (size_t k = n + 1;
             k < stripped_lines.size() && k <= n + 4 &&
             statement.find(';') == std::string::npos;
             ++k) {
          statement += stripped_lines[k];
        }
        if (statement.substr(0, statement.find(';'))
                .find("memory_order") == std::string::npos) {
          Report(file, n + 1, "memory-order",
                 "atomic `" + word +
                     "` without an explicit std::memory_order");
        } else if (!HasOrderComment(raw_lines, stripped_lines, n)) {
          Report(file, n + 1, "memory-order",
                 "atomic `" + word +
                     "` lacks a `// order:` justification comment");
        }
      }
    }
  }
}

void CheckRawMutex(const std::string& file, const std::string& raw_text,
                   const std::vector<std::string>& raw_lines,
                   const std::vector<std::string>& stripped_lines) {
  if (FileAllows(raw_text, "raw-mutex")) return;
  static const char* kForbidden[] = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::shared_mutex",
      "std::lock_guard",      "std::unique_lock",
      "std::scoped_lock",     "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any"};
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    if (line.find("#include") != std::string::npos &&
        (line.find("<mutex>") != std::string::npos ||
         line.find("<condition_variable>") != std::string::npos)) {
      if (!LineAllows(raw_lines, n, "raw-mutex")) {
        Report(file, n + 1, "raw-mutex",
               "include raw mutex headers only under util/; use "
               "util/mutex.h");
      }
      continue;
    }
    for (const char* token : kForbidden) {
      size_t pos = 0;
      if (!FindToken(line, token, &pos)) continue;
      if (LineAllows(raw_lines, n, "raw-mutex")) continue;
      Report(file, n + 1, "raw-mutex",
             std::string("`") + token +
                 "` outside util/; use the annotated util::Mutex / "
                 "util::MutexLock / util::CondVar wrappers");
    }
  }
}

void CheckThreadAnnotation(const std::string& file,
                           const std::string& raw_text,
                           const std::vector<std::string>& raw_lines,
                           const std::vector<std::string>& stripped_lines) {
  if (FileAllows(raw_text, "thread-annotation")) return;
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    std::string member;
    // Mutex-wrapper member declarations: `[util::]Mutex name_;` (plain
    // members only — references, pointers, and constructor calls are not
    // declarations of a guarding mutex).
    size_t pos = 0;
    if (FindToken(line, "Mutex", &pos)) {
      size_t j = pos + 5;
      while (j < line.size() && line[j] == ' ') ++j;
      size_t name_end = j;
      while (name_end < line.size() && IsIdentChar(line[name_end])) {
        ++name_end;
      }
      size_t after = name_end;
      while (after < line.size() && line[after] == ' ') ++after;
      if (name_end > j && after < line.size() && line[after] == ';') {
        member = line.substr(j, name_end - j);
      }
    }
    if (member.empty()) {
      // Members named by the guarding convention (`*_mu` / `*_mu_`)
      // declared with any type: `<type> name_mu_;`.
      for (size_t i = 0; i < line.size(); ++i) {
        if (!IsIdentChar(line[i]) || (i > 0 && IsIdentChar(line[i - 1]))) {
          continue;
        }
        size_t name_end = i;
        while (name_end < line.size() && IsIdentChar(line[name_end])) {
          ++name_end;
        }
        const std::string ident = line.substr(i, name_end - i);
        size_t after = name_end;
        while (after < line.size() && line[after] == ' ') ++after;
        const bool mu_name = ident.size() > 3 &&
                             (ident.rfind("_mu_") == ident.size() - 4 ||
                              ident.rfind("_mu") == ident.size() - 3);
        if (mu_name && i > 0 && after < line.size() &&
            line[after] == ';') {
          member = ident;
          break;
        }
        i = name_end;
      }
    }
    if (member.empty()) continue;
    if (LineAllows(raw_lines, n, "thread-annotation")) continue;
    // Satisfied when some sibling is annotated as guarded by (or some
    // function requires/acquires) this mutex.
    static const char* kAnnotations[] = {"GUARDED_BY(", "PT_GUARDED_BY(",
                                         "REQUIRES(", "ACQUIRE("};
    bool annotated = false;
    for (const char* annotation : kAnnotations) {
      if (raw_text.find(std::string(annotation) + member + ")") !=
          std::string::npos) {
        annotated = true;
        break;
      }
    }
    if (!annotated) {
      Report(file, n + 1, "thread-annotation",
             "mutex member `" + member +
                 "` guards nothing: annotate a sibling with "
                 "SPRINGDTW_GUARDED_BY(" +
                 member +
                 ") or add a `springdtw-lint: allow(thread-annotation)` "
                 "comment");
    }
  }
}

void CheckNodiscardStatus(const std::string& file,
                          const std::string& raw_text) {
  if (raw_text.find("class [[nodiscard]] Status") == std::string::npos) {
    Report(file, 1, "nodiscard",
           "util/status.h must declare `class [[nodiscard]] Status`");
  }
  if (raw_text.find("class [[nodiscard]] StatusOr") == std::string::npos) {
    Report(file, 1, "nodiscard",
           "util/status.h must declare `class [[nodiscard]] StatusOr`");
  }
}

bool LintFile(const fs::path& path, const fs::path& src_root) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw_text = buffer.str();
  const std::string file = path.generic_string();
  const fs::path rel = fs::relative(path, src_root);

  const std::vector<std::string> raw_lines = SplitLines(raw_text);
  const std::vector<std::string> stripped_lines =
      SplitLines(StripCommentsAndStrings(raw_text));

  CheckRawAlloc(file, raw_text, stripped_lines);
  const std::string rel_str = rel.generic_string();
  if (rel_str.rfind("dtw/", 0) == 0 || rel_str.rfind("core/", 0) == 0) {
    CheckNoFloat(file, stripped_lines);
  }
  if (path.extension() == ".h") {
    CheckIncludeGuard(file, rel, raw_text);
  }
  if (rel_str == "util/status.h") {
    CheckNodiscardStatus(file, raw_text);
  }
  CheckMemoryOrder(file, raw_text, raw_lines, stripped_lines);
  if (rel_str.rfind("util/", 0) != 0) {
    CheckRawMutex(file, raw_text, raw_lines, stripped_lines);
  }
  CheckThreadAnnotation(file, raw_text, raw_lines, stripped_lines);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <src-dir>\n", argv[0]);
    return 2;
  }
  const fs::path src_root(argv[1]);
  std::error_code ec;
  if (!fs::is_directory(src_root, ec)) {
    std::fprintf(stderr, "not a directory: %s\n", argv[1]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path ext = entry.path().extension();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  bool io_ok = true;
  for (const fs::path& path : files) {
    io_ok = LintFile(path, src_root) && io_ok;
  }
  if (!io_ok) return 2;

  for (const Violation& v : g_violations) {
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::printf("springdtw_lint: %zu violation(s) in %zu files scanned\n",
                g_violations.size(), files.size());
    return 1;
  }
  std::printf("springdtw_lint: OK (%zu files scanned)\n", files.size());
  return 0;
}
