// Project lint: mechanical source rules that the compiler cannot (or only
// partially) enforce, run over src/ as a ctest entry and as the `lint` leg
// of scripts/check.sh. No external dependencies — plain std::filesystem
// walk plus a small comment/string stripper.
//
// Rules (docs/CORRECTNESS.md has the rationale):
//   raw-alloc      No `new` / `delete` / `malloc` / `calloc` / `realloc` /
//                  `free` in src/ — containers only; the hot path must not
//                  hide allocations. `= delete`d special members are fine.
//                  Suppress per file with a
//                  `springdtw-lint: allow-file(raw-alloc)` comment (only
//                  util/memory.cc, which implements the allocation
//                  tracker's operator new/delete replacements).
//   nodiscard      util/status.h must keep `[[nodiscard]]` on Status and
//                  StatusOr — that attribute is the compile-time half of
//                  the "no unchecked Status" rule; losing it silently
//                  disarms -Werror=unused-result across the codebase.
//   no-float       No `float` type or f-suffixed literals under src/dtw/
//                  and src/core/: all distance math is double (the paper's
//                  guarantees are argued in exact DTW terms; a stray float
//                  literal demotes an entire expression).
//   include-guard  Every header under src/ carries the canonical
//                  `SPRINGDTW_<PATH>_H_` include guard.
//
// Usage: springdtw_lint <src-dir>   (exit 0 = clean, 1 = violations,
//                                    2 = usage/IO error)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({file, line, rule, message});
}

/// Replaces comments and string/char literal contents with spaces, keeping
/// newlines so line numbers survive. Good enough for token scanning; raw
/// strings are treated as plain strings (none in this codebase carry code).
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True if `word` occurs in `line` as a whole token; sets *pos.
bool FindToken(const std::string& line, const std::string& word,
               size_t* pos) {
  size_t from = 0;
  while ((from = line.find(word, from)) != std::string::npos) {
    const bool left_ok = from == 0 || !IsIdentChar(line[from - 1]);
    const size_t end = from + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      *pos = from;
      return true;
    }
    from = end;
  }
  return false;
}

/// Last non-space character before `pos`, or '\0'.
char LastNonSpaceBefore(const std::string& line, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(line[pos]))) {
      return line[pos];
    }
  }
  return '\0';
}

bool EndsWithToken(const std::string& line, size_t pos,
                   const std::string& word) {
  // True if the token `word` immediately precedes position `pos`
  // (whitespace-separated) — used for `operator delete`, `= delete`.
  size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  if (end < word.size()) return false;
  const size_t start = end - word.size();
  if (line.compare(start, word.size(), word) != 0) return false;
  return start == 0 || !IsIdentChar(line[start - 1]);
}

void CheckRawAlloc(const std::string& file, const std::string& raw_text,
                   const std::vector<std::string>& stripped_lines) {
  if (raw_text.find("springdtw-lint: allow-file(raw-alloc)") !=
      std::string::npos) {
    return;
  }
  static const char* kTokens[] = {"new",    "delete",  "malloc",
                                  "calloc", "realloc", "free"};
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    // Preprocessor lines (`#include <new>`) are not code.
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (const char* token : kTokens) {
      size_t pos = 0;
      if (!FindToken(line, token, &pos)) continue;
      const std::string word(token);
      if (word == "delete" || word == "new") {
        // `= delete;` / `= delete("...")` special members are not
        // allocation; `operator new/delete` declarations only appear in
        // allow-listed files and would be flagged here otherwise.
        if (LastNonSpaceBefore(line, pos) == '=') continue;
        if (EndsWithToken(line, pos, "operator")) {
          Report(file, n + 1, "raw-alloc",
                 "operator " + word +
                     " outside an allow-file(raw-alloc) file");
          continue;
        }
      }
      Report(file, n + 1, "raw-alloc",
             "raw allocation token `" + word +
                 "`; use containers / RAII (see docs/CORRECTNESS.md)");
    }
  }
}

void CheckNoFloat(const std::string& file,
                  const std::vector<std::string>& stripped_lines) {
  for (size_t n = 0; n < stripped_lines.size(); ++n) {
    const std::string& line = stripped_lines[n];
    size_t pos = 0;
    if (FindToken(line, "float", &pos)) {
      Report(file, n + 1, "no-float",
             "`float` in distance code; all DTW math is double");
    }
    // f-suffixed decimal literals (1.0f, 2f, 1e3f). Hex literals like
    // 0x3f are skipped by requiring the digit run to not follow 'x'/'X'
    // and to contain no hex-only letters.
    for (size_t i = 0; i < line.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(line[i]))) continue;
      if (i > 0 && (IsIdentChar(line[i - 1]) || line[i - 1] == '.')) {
        continue;  // Part of an identifier or already inside a number.
      }
      size_t j = i;
      bool hex = false;
      if (line[j] == '0' && j + 1 < line.size() &&
          (line[j + 1] == 'x' || line[j + 1] == 'X')) {
        hex = true;
        j += 2;
        while (j < line.size() &&
               std::isxdigit(static_cast<unsigned char>(line[j]))) {
          ++j;
        }
      } else {
        while (j < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[j])) ||
                line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        if (j < line.size() && (line[j] == 'e' || line[j] == 'E')) {
          ++j;
          if (j < line.size() && (line[j] == '+' || line[j] == '-')) ++j;
          while (j < line.size() &&
                 std::isdigit(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
        }
      }
      if (!hex && j < line.size() && (line[j] == 'f' || line[j] == 'F') &&
          (j + 1 >= line.size() || !IsIdentChar(line[j + 1]))) {
        Report(file, n + 1, "no-float",
               "f-suffixed literal demotes the expression to float");
      }
      i = j;
    }
  }
}

void CheckIncludeGuard(const std::string& file, const fs::path& rel,
                       const std::string& raw_text) {
  std::string guard = "SPRINGDTW_";
  for (const char c : rel.generic_string()) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';  // src/util/codec.h -> SPRINGDTW_UTIL_CODEC_H_
  if (raw_text.find("#ifndef " + guard) == std::string::npos ||
      raw_text.find("#define " + guard) == std::string::npos) {
    Report(file, 1, "include-guard",
           "missing or misnamed include guard; expected " + guard);
  }
}

void CheckNodiscardStatus(const std::string& file,
                          const std::string& raw_text) {
  if (raw_text.find("class [[nodiscard]] Status") == std::string::npos) {
    Report(file, 1, "nodiscard",
           "util/status.h must declare `class [[nodiscard]] Status`");
  }
  if (raw_text.find("class [[nodiscard]] StatusOr") == std::string::npos) {
    Report(file, 1, "nodiscard",
           "util/status.h must declare `class [[nodiscard]] StatusOr`");
  }
}

bool LintFile(const fs::path& path, const fs::path& src_root) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw_text = buffer.str();
  const std::string file = path.generic_string();
  const fs::path rel = fs::relative(path, src_root);

  const std::vector<std::string> stripped_lines =
      SplitLines(StripCommentsAndStrings(raw_text));

  CheckRawAlloc(file, raw_text, stripped_lines);
  const std::string rel_str = rel.generic_string();
  if (rel_str.rfind("dtw/", 0) == 0 || rel_str.rfind("core/", 0) == 0) {
    CheckNoFloat(file, stripped_lines);
  }
  if (path.extension() == ".h") {
    CheckIncludeGuard(file, rel, raw_text);
  }
  if (rel_str == "util/status.h") {
    CheckNodiscardStatus(file, raw_text);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <src-dir>\n", argv[0]);
    return 2;
  }
  const fs::path src_root(argv[1]);
  std::error_code ec;
  if (!fs::is_directory(src_root, ec)) {
    std::fprintf(stderr, "not a directory: %s\n", argv[1]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path ext = entry.path().extension();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  bool io_ok = true;
  for (const fs::path& path : files) {
    io_ok = LintFile(path, src_root) && io_ok;
  }
  if (!io_ok) return 2;

  for (const Violation& v : g_violations) {
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::printf("springdtw_lint: %zu violation(s) in %zu files scanned\n",
                g_violations.size(), files.size());
    return 1;
  }
  std::printf("springdtw_lint: OK (%zu files scanned)\n", files.size());
  return 0;
}
