// springdtw_serve: run a ShardedMonitor as a long-lived TCP daemon.
//
//   springdtw_serve [--port=0] [--workers=2]
//       [--checkpoint=FILE] [--checkpoint_period_ms=0]
//       [--introspect_port=-1] [--staleness_ms=1000]
//       [--span_sample_every=64] [--cost_sample_every=64]
//       [--max_connections=64] [--max_frame_bytes=1048576]
//       [--idle_timeout_ms=0]
//
// Speaks the net/protocol.h wire format (docs/SERVING.md): clients open
// streams, register/remove queries, push ticks, subscribe to match
// fan-out, and request drains/checkpoints. The bound port is printed as
// "SERVE_PORT=<port>" once the server is up (port 0 picks an ephemeral
// port), so scripts can discover it.
//
// --checkpoint=FILE makes the daemon durable: if FILE exists at startup
// the monitor restores from it (resuming mid-stream, pending candidates
// intact), CHECKPOINT frames and the periodic checkpointer write to it
// (atomically, via a temp file + rename), and on SIGTERM/SIGINT the daemon
// drains, writes a final checkpoint, and exits 0. The final checkpoint
// deliberately does NOT flush pending candidates — a restore continues the
// stream byte-identically, as if the process had never died.
//
// --introspect_port=N additionally serves /metrics, /healthz, /statusz,
// /tracez, /spanz, /queryz, /streamz over HTTP (N=0 ephemeral; printed as
// "INTROSPECT_PORT=<port>"); the serving layer's spring_net_* families are
// spliced into /metrics. --span_sample_every=N samples 1-in-N ticks for
// end-to-end spans and --cost_sample_every=N samples per-query CPU cost
// (0 disables either; both are no-ops without --introspect_port).

#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "monitor/sharded_monitor.h"
#include "net/server.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

using namespace springdtw;

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int /*signum*/) { g_shutdown = 1; }

util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return util::IoError("read failed: " + path);
  return bytes;
}

util::Status WriteFileBytesAtomic(const std::string& path,
                                  const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::IoError("cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return util::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::IoError("rename failed: " + path);
  }
  return util::Status::Ok();
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const int64_t port = flags.GetInt64("port", 0);
  const int64_t workers = flags.GetInt64("workers", 2);
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const double checkpoint_period_ms =
      flags.GetDouble("checkpoint_period_ms", 0.0);
  const int64_t introspect_port = flags.GetInt64("introspect_port", -1);

  monitor::ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = workers > 0 ? workers : 1;
  monitor_options.introspect_port = introspect_port;
  monitor_options.staleness_budget_ms =
      flags.GetDouble("staleness_ms", 1000.0);
  monitor_options.span_sample_every = flags.GetInt64("span_sample_every", 64);
  monitor_options.cost_sample_every = flags.GetInt64("cost_sample_every", 64);
  monitor::ShardedMonitor monitor(monitor_options);

  if (!checkpoint_path.empty()) {
    std::ifstream probe(checkpoint_path, std::ios::binary);
    if (probe.good()) {
      auto bytes = ReadFileBytes(checkpoint_path);
      if (!bytes.ok()) {
        std::fprintf(stderr, "checkpoint read: %s\n",
                     bytes.status().ToString().c_str());
        return 1;
      }
      const util::Status restored = monitor.RestoreState(*bytes);
      if (!restored.ok()) {
        std::fprintf(stderr, "checkpoint restore: %s\n",
                     restored.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "restored %zu streams, %zu checkpoint bytes\n",
                   static_cast<size_t>(monitor.num_streams()),
                   bytes->size());
    }
  }

  net::StreamServerOptions server_options;
  server_options.port = static_cast<int>(port);
  server_options.max_connections = flags.GetInt64("max_connections", 64);
  server_options.max_frame_bytes = static_cast<uint64_t>(flags.GetInt64(
      "max_frame_bytes", static_cast<int64_t>(net::kDefaultMaxFrameBytes)));
  server_options.idle_timeout_ms = flags.GetDouble("idle_timeout_ms", 0.0);
  server_options.checkpoint_period_ms = checkpoint_period_ms;
  net::StreamServer server(&monitor, server_options);

  if (!checkpoint_path.empty()) {
    // Runs on the server's event-loop thread, which holds the router role.
    server.SetCheckpointFn(
        [&monitor, checkpoint_path]() -> util::StatusOr<uint64_t> {
          const std::vector<uint8_t> bytes = monitor.SerializeState();
          SPRINGDTW_RETURN_IF_ERROR(
              WriteFileBytesAtomic(checkpoint_path, bytes));
          return static_cast<uint64_t>(bytes.size());
        });
  }

  monitor.SetAuxMetricsProvider(
      [&server] { return server.MetricsSnapshot(); });
  monitor.Start();
  const util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("SERVE_PORT=%d\n", server.port());
  if (monitor.introspection_port() >= 0) {
    std::printf("INTROSPECT_PORT=%d\n", monitor.introspection_port());
  }
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  // Graceful shutdown: stop serving (joins the loop thread, handing the
  // router role back to this thread), apply everything routed, and write a
  // final checkpoint preserving pending candidates.
  server.Stop();
  (void)monitor.Drain();
  if (!checkpoint_path.empty()) {
    const std::vector<uint8_t> bytes = monitor.SerializeState();
    const util::Status written =
        WriteFileBytesAtomic(checkpoint_path, bytes);
    if (!written.ok()) {
      std::fprintf(stderr, "final checkpoint: %s\n",
                   written.ToString().c_str());
      monitor.Stop();
      return 1;
    }
    std::fprintf(stderr, "final checkpoint: %zu bytes\n", bytes.size());
  }
  monitor.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
