// springdtw_serve: run a ShardedMonitor as a long-lived TCP daemon.
//
//   springdtw_serve [--port=0] [--workers=2]
//       [--checkpoint=FILE] [--checkpoint_period_ms=0]
//       [--wal_dir=DIR] [--fsync=os|interval|every_record]
//       [--fsync_interval_ms=50] [--wal_segment_bytes=4194304]
//       [--introspect_port=-1] [--staleness_ms=1000]
//       [--span_sample_every=64] [--cost_sample_every=64]
//       [--max_connections=64] [--max_frame_bytes=1048576]
//       [--idle_timeout_ms=0]
//       [--alert_rules=FILE] [--slo_p99_ms=0] [--timeline]
//
// Speaks the net/protocol.h wire format (docs/SERVING.md): clients open
// streams, register/remove queries, push ticks, subscribe to match
// fan-out, and request drains/checkpoints. The bound port is printed as
// "SERVE_PORT=<port>" once the server is up (port 0 picks an ephemeral
// port), so scripts can discover it.
//
// --checkpoint=FILE makes the daemon durable: if FILE exists at startup
// the monitor restores from it (resuming mid-stream, pending candidates
// intact), CHECKPOINT frames and the periodic checkpointer write to it
// (atomically: temp file + fsync + rename + directory fsync), and on
// SIGTERM/SIGINT the daemon drains, writes a final checkpoint, and exits
// 0. The final checkpoint deliberately does NOT flush pending candidates —
// a restore continues the stream byte-identically, as if the process had
// never died.
//
// --wal_dir=DIR additionally logs every accepted tick to a per-shard
// write-ahead log before it is acked, making ingest durable between
// checkpoints (docs/DURABILITY.md). Startup restores the newest checkpoint
// (defaulting --checkpoint to DIR/checkpoint.ckpt), replays the WAL tail
// through the monitor, and re-delivers any matches past the logged
// delivery watermark to the first subscribers; an unclean shutdown is
// detected and reported on stderr as a "WAL_RECOVERY ..." line carrying
// the replayed-record count. --fsync picks the durability/throughput
// trade-off per docs/DURABILITY.md.
//
// --introspect_port=N additionally serves /metrics, /healthz, /statusz,
// /tracez, /spanz, /queryz, /streamz over HTTP (N=0 ephemeral; printed as
// "INTROSPECT_PORT=<port>"); the serving layer's spring_net_* families are
// spliced into /metrics. --span_sample_every=N samples 1-in-N ticks for
// end-to-end spans and --cost_sample_every=N samples per-query CPU cost
// (0 disables either; both are no-ops without --introspect_port).
//
// --timeline additionally records every published snapshot into the
// fixed-memory metrics timeline served as /timez. --alert_rules=FILE loads
// alert rules (syntax: docs/OBSERVABILITY.md) evaluated on the publish
// cadence and served as /alertz; a firing page-severity rule flips
// /healthz to 503. --slo_p99_ms=N adds the conventional two-window
// burn-rate page rule over the p99 end-to-end latency budget of N ms.
// Rules imply the timeline; either implies introspection.

#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "net/server.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"
#include "wal/env.h"
#include "wal/wal.h"

namespace {

using namespace springdtw;

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int /*signum*/) { g_shutdown = 1; }

util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return util::IoError("read failed: " + path);
  return bytes;
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const int64_t port = flags.GetInt64("port", 0);
  const int64_t workers = flags.GetInt64("workers", 2);
  const std::string wal_dir = flags.GetString("wal_dir", "");
  std::string checkpoint_path = flags.GetString("checkpoint", "");
  if (checkpoint_path.empty() && !wal_dir.empty()) {
    checkpoint_path = wal_dir + "/checkpoint.ckpt";
  }
  const double checkpoint_period_ms =
      flags.GetDouble("checkpoint_period_ms", 0.0);
  const int64_t introspect_port = flags.GetInt64("introspect_port", -1);

  monitor::ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = workers > 0 ? workers : 1;
  monitor_options.introspect_port = introspect_port;
  monitor_options.staleness_budget_ms =
      flags.GetDouble("staleness_ms", 1000.0);
  monitor_options.span_sample_every = flags.GetInt64("span_sample_every", 64);
  monitor_options.cost_sample_every = flags.GetInt64("cost_sample_every", 64);
  monitor_options.enable_timeline = flags.GetBool("timeline", false);
  monitor_options.slo_p99_ms = flags.GetDouble("slo_p99_ms", 0.0);
  const std::string alert_rules_path = flags.GetString("alert_rules", "");
  if (!alert_rules_path.empty()) {
    std::ifstream rules_in(alert_rules_path);
    if (!rules_in) {
      std::fprintf(stderr, "cannot open --alert_rules=%s\n",
                   alert_rules_path.c_str());
      return 1;
    }
    std::string rules_text((std::istreambuf_iterator<char>(rules_in)),
                           std::istreambuf_iterator<char>());
    auto rules = obs::ParseAlertRules(rules_text);
    if (!rules.ok()) {
      std::fprintf(stderr, "--alert_rules=%s: %s\n", alert_rules_path.c_str(),
                   rules.status().ToString().c_str());
      return 1;
    }
    monitor_options.alert_rules = *std::move(rules);
    std::fprintf(stderr, "loaded %zu alert rules from %s\n",
                 monitor_options.alert_rules.size(),
                 alert_rules_path.c_str());
  }

  // Registered with the monitor only for WAL replay, but sinks are
  // never unregistered, so it must outlive the monitor: declared first,
  // gated by `replay_active` so live serving does not accumulate here.
  bool replay_active = false;
  std::vector<monitor::CollectSink::Entry> replay_entries;
  monitor::CallbackSink replay_sink(
      [&replay_active, &replay_entries](const monitor::MatchOrigin& origin,
                                        const core::Match& match) {
        if (replay_active) {
          replay_entries.push_back(monitor::CollectSink::Entry{origin, match});
        }
      });

  monitor::ShardedMonitor monitor(monitor_options);

  if (!checkpoint_path.empty()) {
    std::ifstream probe(checkpoint_path, std::ios::binary);
    if (probe.good()) {
      auto bytes = ReadFileBytes(checkpoint_path);
      if (!bytes.ok()) {
        std::fprintf(stderr, "checkpoint read: %s\n",
                     bytes.status().ToString().c_str());
        return 1;
      }
      const util::Status restored = monitor.RestoreState(*bytes);
      if (!restored.ok()) {
        std::fprintf(stderr, "checkpoint restore: %s\n",
                     restored.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "restored %zu streams, %zu checkpoint bytes\n",
                   static_cast<size_t>(monitor.num_streams()),
                   bytes->size());
    }
  }

  // Scan the WAL tail before the writer opens fresh segments, so the scan
  // sees exactly what the previous incarnation left behind.
  wal::Env* const wal_env = wal::Env::Default();
  std::unique_ptr<wal::WalWriter> wal;
  wal::RecoveredWal recovered;
  if (!wal_dir.empty()) {
    auto scanned = wal::RecoverWal(wal_env, wal_dir, monitor.next_seq());
    if (!scanned.ok()) {
      std::fprintf(stderr, "WAL recovery: %s\n",
                   scanned.status().ToString().c_str());
      return 1;
    }
    recovered = std::move(*scanned);

    wal::WalOptions wal_options;
    wal_options.dir = wal_dir;
    wal_options.num_shards = monitor_options.num_workers;
    wal_options.fsync_interval_ms = flags.GetInt64("fsync_interval_ms", 50);
    wal_options.segment_bytes =
        flags.GetInt64("wal_segment_bytes", 4 << 20);
    auto policy = wal::ParseFsyncPolicy(flags.GetString("fsync", "os"));
    if (!policy.ok()) {
      std::fprintf(stderr, "--fsync: %s\n",
                   policy.status().ToString().c_str());
      return 1;
    }
    wal_options.fsync = *policy;
    auto opened = wal::WalWriter::Open(wal_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "WAL open: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    wal = std::move(*opened);
    wal->RecordReplayedRecords(recovered.records_replayed);
  }

  monitor.Start();

  // Replay the recovered tail through the monitor exactly as the original
  // ingest ran it, capturing the matches it (re)produces; everything at or
  // below the delivery watermark already reached every subscriber before
  // the crash and is filtered out, the rest is buffered for re-delivery to
  // the first post-restart subscribers. Not checkpointed or truncated
  // here: the tail stays on disk until a natural checkpoint, so repeated
  // crashes replay the same tail from the same checkpoint.
  std::vector<net::RecoveredMatch> recovered_matches;
  if (!recovered.chunks.empty() || recovered.torn_tail) {
    monitor.AddSink(&replay_sink);
    replay_active = true;
    for (const auto& chunk : recovered.chunks) {
      if (monitor.next_seq() != chunk.seq0) {
        std::fprintf(stderr,
                     "WAL replay: sequence skew (log %llu, monitor %llu)\n",
                     static_cast<unsigned long long>(chunk.seq0),
                     static_cast<unsigned long long>(monitor.next_seq()));
        monitor.Stop();
        return 1;
      }
      const util::Status pushed =
          monitor.PushBatch(chunk.stream_id, chunk.values);
      if (!pushed.ok()) {
        std::fprintf(stderr, "WAL replay: %s\n", pushed.ToString().c_str());
        monitor.Stop();
        return 1;
      }
    }
    const util::StatusOr<int64_t> drained = monitor.Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "WAL replay drain: %s\n",
                   drained.status().ToString().c_str());
      monitor.Stop();
      return 1;
    }
    replay_active = false;
    for (const auto& entry : replay_entries) {
      if (entry.origin.global_seq < 0) continue;
      if (recovered.has_watermark) {
        const auto key = std::make_pair(
            static_cast<uint64_t>(entry.origin.global_seq),
            entry.origin.query_id);
        const auto mark = std::make_pair(recovered.watermark_seq,
                                         recovered.watermark_query_id);
        if (key <= mark) continue;
      }
      recovered_matches.push_back(
          net::RecoveredMatch{entry.origin, entry.match});
    }
    std::fprintf(
        stderr,
        "WAL_RECOVERY dir=%s replayed_records=%lld replayed_values=%lld "
        "segments=%lld torn_tail=%d recovered_matches=%zu\n",
        wal_dir.c_str(), static_cast<long long>(recovered.records_replayed),
        static_cast<long long>(recovered.values),
        static_cast<long long>(recovered.segments),
        recovered.torn_tail ? 1 : 0, recovered_matches.size());
  }

  net::StreamServerOptions server_options;
  server_options.port = static_cast<int>(port);
  server_options.max_connections = flags.GetInt64("max_connections", 64);
  server_options.max_frame_bytes = static_cast<uint64_t>(flags.GetInt64(
      "max_frame_bytes", static_cast<int64_t>(net::kDefaultMaxFrameBytes)));
  server_options.idle_timeout_ms = flags.GetDouble("idle_timeout_ms", 0.0);
  server_options.checkpoint_period_ms = checkpoint_period_ms;
  net::StreamServer server(&monitor, server_options);

  if (!checkpoint_path.empty()) {
    // Runs on the server's event-loop thread, which holds the router role.
    server.SetCheckpointFn(
        [&monitor, wal_env, checkpoint_path]() -> util::StatusOr<uint64_t> {
          const std::vector<uint8_t> bytes = monitor.SerializeState();
          SPRINGDTW_RETURN_IF_ERROR(
              wal::AtomicWriteFile(wal_env, checkpoint_path, bytes));
          return static_cast<uint64_t>(bytes.size());
        });
  }
  if (wal != nullptr) {
    server.SetWal(wal.get());
    server.SetRecoveredMatches(std::move(recovered_matches));
  }

  monitor.SetAuxMetricsProvider([&server, &wal] {
    obs::MetricsSnapshot snapshot = server.MetricsSnapshot();
    if (wal != nullptr) {
      obs::MetricsSnapshot wal_snapshot = wal->MetricsSnapshot();
      snapshot.families.insert(
          snapshot.families.end(),
          std::make_move_iterator(wal_snapshot.families.begin()),
          std::make_move_iterator(wal_snapshot.families.end()));
    }
    return snapshot;
  });
  const util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    monitor.Stop();
    return 1;
  }

  std::printf("SERVE_PORT=%d\n", server.port());
  if (monitor.introspection_port() >= 0) {
    std::printf("INTROSPECT_PORT=%d\n", monitor.introspection_port());
  }
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  // Graceful shutdown: stop serving (joins the loop thread, handing the
  // router role back to this thread), apply everything routed, write a
  // final checkpoint preserving pending candidates, and — with that
  // checkpoint durably covering every logged tick — truncate the WAL so
  // the next start is clean.
  server.Stop();
  (void)monitor.Drain();
  if (!checkpoint_path.empty()) {
    const std::vector<uint8_t> bytes = monitor.SerializeState();
    const util::Status written =
        wal::AtomicWriteFile(wal_env, checkpoint_path, bytes);
    if (!written.ok()) {
      std::fprintf(stderr, "final checkpoint: %s\n",
                   written.ToString().c_str());
      monitor.Stop();
      return 1;
    }
    std::fprintf(stderr, "final checkpoint: %zu bytes\n", bytes.size());
    if (wal != nullptr) {
      const util::Status truncated = wal->Truncate();
      if (!truncated.ok()) {
        std::fprintf(stderr, "WAL truncate: %s\n",
                     truncated.ToString().c_str());
        monitor.Stop();
        return 1;
      }
    }
  }
  monitor.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
