// springdtw_match: run SPRING disjoint-query matching on stored files.
//
//   springdtw_match --stream=chirp_stream.csv --query=chirp_query.csv
//       --epsilon=100 [--distance=squared|absolute] [--max_length=0]
//       [--min_length=0] [--topk=0] [--paths]
//
// Files may be CSV (one value per line, "nan" = missing, repaired
// hold-last) or the binary .sdtw format. With --topk=K the threshold is
// ignored and the K best disjoint matches are printed instead. With
// --paths each match's warping-path step counts are printed too.

#include <cstdio>
#include <string>

#include "core/subsequence_scan.h"
#include "ts/binary_io.h"
#include "ts/csv.h"
#include "ts/repair.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace springdtw;

util::StatusOr<ts::Series> LoadSeries(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".sdtw") {
    return ts::ReadSeriesBinary(path);
  }
  return ts::ReadSeriesCsv(path);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const std::string stream_path = flags.GetString("stream", "");
  const std::string query_path = flags.GetString("query", "");
  if (stream_path.empty() || query_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --stream=FILE --query=FILE --epsilon=E "
                 "[--topk=K] [--distance=squared|absolute] "
                 "[--max_length=N] [--min_length=N] [--paths]\n",
                 flags.program_name().c_str());
    return 2;
  }

  auto stream = LoadSeries(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto query = LoadSeries(query_path);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  if (query->CountMissing() > 0) {
    std::fprintf(stderr, "query has missing values; repair it first\n");
    return 1;
  }
  const int64_t missing = stream->CountMissing();
  const ts::Series repaired =
      missing > 0 ? RepairMissing(*stream, ts::RepairPolicy::kHoldLast)
                  : std::move(*stream);
  if (missing > 0) {
    std::fprintf(stderr, "note: repaired %lld missing readings hold-last\n",
                 static_cast<long long>(missing));
  }

  const dtw::LocalDistance distance =
      flags.GetString("distance", "squared") == "absolute"
          ? dtw::LocalDistance::kAbsolute
          : dtw::LocalDistance::kSquared;
  const int64_t topk = flags.GetInt64("topk", 0);

  if (topk > 0) {
    const auto matches =
        core::TopKDisjointMatches(repaired, *query, topk, distance);
    for (const core::Match& m : matches) {
      std::printf("%s\n", m.ToString().c_str());
    }
    return 0;
  }

  const double epsilon = flags.GetDouble("epsilon", -1.0);
  if (epsilon < 0.0) {
    std::fprintf(stderr, "need --epsilon>=0 (or --topk=K)\n");
    return 2;
  }
  if (flags.GetBool("paths", false)) {
    const auto matches =
        core::DisjointPathMatches(repaired, *query, epsilon, distance);
    for (const core::PathMatch& m : matches) {
      std::printf("%s path_steps=%zu\n", m.match.ToString().c_str(),
                  m.path.size());
    }
    std::printf("# %zu matches\n", matches.size());
  } else {
    // The scan helpers do not take length constraints; run the matcher
    // directly so --max_length/--min_length work.
    core::SpringOptions options;
    options.epsilon = epsilon;
    options.local_distance = distance;
    options.max_match_length = flags.GetInt64("max_length", 0);
    options.min_match_length = flags.GetInt64("min_length", 0);
    core::SpringMatcher matcher(query->values(), options);
    core::Match match;
    int64_t count = 0;
    for (int64_t t = 0; t < repaired.size(); ++t) {
      if (matcher.Update(repaired[t], &match)) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      }
    }
    if (matcher.Flush(&match)) {
      std::printf("%s (flushed)\n", match.ToString().c_str());
      ++count;
    }
    std::printf("# %lld matches\n", static_cast<long long>(count));
  }
  return 0;
}
