// springdtw_match: run SPRING disjoint-query matching on stored files.
//
//   springdtw_match --stream=chirp_stream.csv --query=chirp_query.csv
//       --epsilon=100 [--distance=squared|absolute] [--max_length=0]
//       [--min_length=0] [--topk=0] [--paths]
//       [--batch=0] [--threads=0]
//       [--metrics=prom|json] [--metrics_out=FILE]
//       [--trace_out=FILE] [--trace_capacity=4096] [--report_every=0]
//
// Files may be CSV (one value per line, "nan" = missing, repaired
// hold-last) or the binary .sdtw format. With --topk=K the threshold is
// ignored and the K best disjoint matches are printed instead. With
// --paths each match's warping-path step counts are printed too.
//
// Scale-out (threshold mode only): --batch=CHUNK ingests through the
// engine's SoA batched path in CHUNK-value runs instead of one Push per
// value. --threads=N routes through the ShardedMonitor shell with N
// workers (matches still print in deterministic order; a single stream
// lives on one shard, so this exercises the pipeline rather than
// splitting the DP). Both produce byte-identical output to the scalar
// path — the differential oracle test holds them to that.
//
// Observability (threshold mode only): --metrics renders the engine's
// metrics registry after the run — Prometheus text or JSON — to stdout or
// --metrics_out; with --threads it is the fleet-wide merged snapshot.
// --trace_out dumps the match-lifecycle trace ring as JSONL (single-engine
// runs only). --report_every=N prints a one-line metrics summary to stderr
// every N ticks.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>

#include "core/subsequence_scan.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "obs/exposition.h"
#include "obs/observability.h"
#include "ts/binary_io.h"
#include "ts/csv.h"
#include "ts/repair.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace springdtw;

util::StatusOr<ts::Series> LoadSeries(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".sdtw") {
    return ts::ReadSeriesBinary(path);
  }
  return ts::ReadSeriesCsv(path);
}

// Writes `text` to `path`, or to stdout when path is empty or "-".
bool WriteOutput(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

// Renders a metrics snapshot in `format` (prom|json) to `path`/stdout.
bool WriteMetrics(const obs::MetricsSnapshot& snapshot,
                  const std::string& format, const std::string& path) {
  const std::string rendered = format == "prom"
                                   ? obs::RenderPrometheus(snapshot)
                                   : obs::RenderJson(snapshot) + "\n";
  return WriteOutput(path, rendered);
}

// Threshold-mode matching through the MonitorEngine with an observability
// bundle attached; renders metrics / trace afterwards. `batch_chunk` > 0
// switches the engine to SoA batch mode and ingests via PushBatch in
// chunk-value runs.
int RunObserved(const ts::Series& stream, const ts::Series& query,
                const core::SpringOptions& options, int64_t batch_chunk,
                const std::string& metrics_format,
                const std::string& metrics_out, const std::string& trace_out,
                int64_t trace_capacity, int64_t report_every) {
  obs::ObservabilityOptions obs_options;
  obs_options.trace_capacity = trace_capacity;
  obs_options.report_every_ticks = report_every;
  obs_options.report_out = &std::cerr;
  obs::Observability observability(obs_options);

  monitor::EngineOptions engine_options;
  engine_options.batch_queries = batch_chunk > 0;
  monitor::MonitorEngine engine(engine_options);
  // Attaching observability routes ingest through the engine's observed
  // per-value path, which bypasses the query-major batched fast path — so
  // a bare --batch run stays unobserved and actually exercises the SoA
  // pool.
  const bool want_obs =
      !metrics_format.empty() || !trace_out.empty() || report_every > 0;
  if (want_obs) engine.AttachObservability(&observability);
  // The stream is already repaired here; keep engine-side repair off.
  const int64_t stream_id = engine.AddStream("stream", false);
  const auto query_id =
      engine.AddQuery(stream_id, "query", query.values(), options);
  if (!query_id.ok()) {
    std::fprintf(stderr, "%s\n", query_id.status().ToString().c_str());
    return 1;
  }
  int64_t count = 0;
  monitor::CallbackSink printer(
      [&count](const monitor::MatchOrigin&, const core::Match& match) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      });
  engine.AddSink(&printer);

  const std::vector<double>& values = stream.values();
  const int64_t chunk = std::max<int64_t>(1, batch_chunk);
  for (int64_t at = 0; at < stream.size(); at += chunk) {
    const int64_t n = std::min(chunk, stream.size() - at);
    const util::StatusOr<int64_t> pushed =
        batch_chunk > 0
            ? engine.PushBatch(stream_id,
                               std::span<const double>(
                                   values.data() + at,
                                   static_cast<size_t>(n)))
            : engine.Push(stream_id, values[static_cast<size_t>(at)]);
    if (!pushed.ok()) {
      std::fprintf(stderr, "%s\n", pushed.status().ToString().c_str());
      return 1;
    }
  }
  engine.FlushAll();
  std::printf("# %lld matches\n", static_cast<long long>(count));

  if (want_obs) engine.RefreshObservabilityGauges();
  if (!metrics_format.empty()) {
    if (!WriteMetrics(observability.registry().Snapshot(), metrics_format,
                      metrics_out)) {
      return 1;
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   trace_out.c_str());
      return 1;
    }
    observability.trace().DumpJsonl(out);
  }
  return 0;
}

// Threshold-mode matching through the ShardedMonitor shell (--threads=N).
// Matches are delivered deterministically at the FlushAll barrier; metrics,
// when requested, are the fleet-wide merged snapshot.
int RunSharded(const ts::Series& stream, const ts::Series& query,
               const core::SpringOptions& options, int64_t threads,
               int64_t batch_chunk, const std::string& metrics_format,
               const std::string& metrics_out) {
  monitor::ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = threads;
  monitor_options.collect_metrics = !metrics_format.empty();
  monitor::ShardedMonitor monitor(monitor_options);
  // The stream is already repaired here; keep router-side repair off.
  const int64_t stream_id = monitor.AddStream("stream", false);
  const auto query_id =
      monitor.AddQuery(stream_id, "query", query.values(), options);
  if (!query_id.ok()) {
    std::fprintf(stderr, "%s\n", query_id.status().ToString().c_str());
    return 1;
  }
  int64_t count = 0;
  monitor::CallbackSink printer(
      [&count](const monitor::MatchOrigin&, const core::Match& match) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      });
  monitor.AddSink(&printer);

  monitor.Start();
  const std::vector<double>& values = stream.values();
  const int64_t chunk = std::max<int64_t>(1, batch_chunk);
  for (int64_t at = 0; at < stream.size(); at += chunk) {
    const int64_t n = std::min(chunk, stream.size() - at);
    const util::Status pushed = monitor.PushBatch(
        stream_id, std::span<const double>(values.data() + at,
                                           static_cast<size_t>(n)));
    if (!pushed.ok()) {
      std::fprintf(stderr, "%s\n", pushed.ToString().c_str());
      return 1;
    }
  }
  monitor.FlushAll();
  std::printf("# %lld matches\n", static_cast<long long>(count));

  if (!metrics_format.empty()) {
    if (!WriteMetrics(monitor.MergedMetricsSnapshot(), metrics_format,
                      metrics_out)) {
      return 1;
    }
  }
  monitor.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const std::string stream_path = flags.GetString("stream", "");
  const std::string query_path = flags.GetString("query", "");
  if (stream_path.empty() || query_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --stream=FILE --query=FILE --epsilon=E "
                 "[--topk=K] [--distance=squared|absolute] "
                 "[--max_length=N] [--min_length=N] [--paths] "
                 "[--batch=CHUNK] [--threads=N]\n",
                 flags.program_name().c_str());
    return 2;
  }

  auto stream = LoadSeries(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto query = LoadSeries(query_path);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  if (query->CountMissing() > 0) {
    std::fprintf(stderr, "query has missing values; repair it first\n");
    return 1;
  }
  const int64_t missing = stream->CountMissing();
  const ts::Series repaired =
      missing > 0 ? RepairMissing(*stream, ts::RepairPolicy::kHoldLast)
                  : std::move(*stream);
  if (missing > 0) {
    std::fprintf(stderr, "note: repaired %lld missing readings hold-last\n",
                 static_cast<long long>(missing));
  }

  const dtw::LocalDistance distance =
      flags.GetString("distance", "squared") == "absolute"
          ? dtw::LocalDistance::kAbsolute
          : dtw::LocalDistance::kSquared;
  const int64_t topk = flags.GetInt64("topk", 0);
  const int64_t threads = flags.GetInt64("threads", 0);
  const int64_t batch = flags.GetInt64("batch", 0);

  if (topk > 0) {
    if (!flags.GetString("metrics", "").empty() ||
        !flags.GetString("trace_out", "").empty()) {
      std::fprintf(stderr, "--metrics/--trace_out do not combine with "
                           "--topk\n");
      return 2;
    }
    if (threads > 0 || batch > 0) {
      std::fprintf(stderr, "--threads/--batch do not combine with "
                           "--topk\n");
      return 2;
    }
    const auto matches =
        core::TopKDisjointMatches(repaired, *query, topk, distance);
    for (const core::Match& m : matches) {
      std::printf("%s\n", m.ToString().c_str());
    }
    return 0;
  }

  const double epsilon = flags.GetDouble("epsilon", -1.0);
  if (epsilon < 0.0) {
    std::fprintf(stderr, "need --epsilon>=0 (or --topk=K)\n");
    return 2;
  }

  const std::string metrics_format = flags.GetString("metrics", "");
  const std::string trace_out = flags.GetString("trace_out", "");
  if (!metrics_format.empty() && metrics_format != "prom" &&
      metrics_format != "json") {
    std::fprintf(stderr, "--metrics must be 'prom' or 'json'\n");
    return 2;
  }
  if ((threads > 0 || batch > 0) && flags.GetBool("paths", false)) {
    std::fprintf(stderr, "--threads/--batch do not combine with --paths\n");
    return 2;
  }
  if (threads > 0 && !trace_out.empty()) {
    std::fprintf(stderr, "--trace_out needs a single engine; it does not "
                         "combine with --threads\n");
    return 2;
  }
  if (!metrics_format.empty() || !trace_out.empty() || threads > 0 ||
      batch > 0) {
    if (flags.GetBool("paths", false)) {
      std::fprintf(stderr, "--metrics/--trace_out do not combine with "
                           "--paths\n");
      return 2;
    }
    core::SpringOptions options;
    options.epsilon = epsilon;
    options.local_distance = distance;
    options.max_match_length = flags.GetInt64("max_length", 0);
    options.min_match_length = flags.GetInt64("min_length", 0);
    if (threads > 0) {
      return RunSharded(repaired, *query, options, threads, batch,
                        metrics_format, flags.GetString("metrics_out", ""));
    }
    return RunObserved(repaired, *query, options, batch, metrics_format,
                       flags.GetString("metrics_out", ""), trace_out,
                       flags.GetInt64("trace_capacity", 4096),
                       flags.GetInt64("report_every", 0));
  }

  if (flags.GetBool("paths", false)) {
    const auto matches =
        core::DisjointPathMatches(repaired, *query, epsilon, distance);
    for (const core::PathMatch& m : matches) {
      std::printf("%s path_steps=%zu\n", m.match.ToString().c_str(),
                  m.path.size());
    }
    std::printf("# %zu matches\n", matches.size());
  } else {
    // The scan helpers do not take length constraints; run the matcher
    // directly so --max_length/--min_length work.
    core::SpringOptions options;
    options.epsilon = epsilon;
    options.local_distance = distance;
    options.max_match_length = flags.GetInt64("max_length", 0);
    options.min_match_length = flags.GetInt64("min_length", 0);
    core::SpringMatcher matcher(query->values(), options);
    core::Match match;
    int64_t count = 0;
    for (int64_t t = 0; t < repaired.size(); ++t) {
      if (matcher.Update(repaired[t], &match)) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      }
    }
    if (matcher.Flush(&match)) {
      std::printf("%s (flushed)\n", match.ToString().c_str());
      ++count;
    }
    std::printf("# %lld matches\n", static_cast<long long>(count));
  }
  return 0;
}
