// springdtw_match: run SPRING disjoint-query matching on stored files.
//
//   springdtw_match --stream=chirp_stream.csv --query=chirp_query.csv
//       --epsilon=100 [--distance=squared|absolute] [--max_length=0]
//       [--min_length=0] [--topk=0] [--paths]
//       [--batch=0] [--threads=0]
//       [--metrics=prom|json] [--metrics_out=FILE]
//       [--trace_out=FILE] [--trace_capacity=4096] [--report_every=0]
//
// Files may be CSV (one value per line, "nan" = missing, repaired
// hold-last) or the binary .sdtw format. With --topk=K the threshold is
// ignored and the K best disjoint matches are printed instead. With
// --paths each match's warping-path step counts are printed too.
//
// Scale-out (threshold mode only): --batch=CHUNK ingests through the
// engine's SoA batched path in CHUNK-value runs instead of one Push per
// value. --threads=N routes through the ShardedMonitor shell with N
// workers (matches still print in deterministic order; a single stream
// lives on one shard, so this exercises the pipeline rather than
// splitting the DP). Both produce byte-identical output to the scalar
// path — the differential oracle test holds them to that.
//
// Observability (threshold mode only): --metrics renders the engine's
// metrics registry after the run — Prometheus text or JSON — to stdout or
// --metrics_out; with --threads it is the fleet-wide merged snapshot.
// --trace_out dumps the match-lifecycle trace ring as JSONL (single-engine
// runs only). --report_every=N prints a one-line metrics summary to stderr
// every N ticks.
//
// Live introspection (threshold mode only): --introspect_port=N serves
// /metrics, /metrics.json, /healthz, /statusz, and /tracez over HTTP on
// 127.0.0.1 while the run ingests (N=0 picks an ephemeral port); the bound
// port is printed as "INTROSPECT_PORT=<port>" before ingest starts.
// --introspect_linger_ms keeps the process (and server) alive after the
// run so late scrapers still get the final state;
// --introspect_staleness_ms and --introspect_publish_ms tune the watchdog
// budget and snapshot publish cadence (docs/OBSERVABILITY.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "core/subsequence_scan.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "obs/exposition.h"
#include "obs/introspection_server.h"
#include "obs/observability.h"
#include "ts/binary_io.h"
#include "ts/csv.h"
#include "ts/repair.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using namespace springdtw;

util::StatusOr<ts::Series> LoadSeries(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".sdtw") {
    return ts::ReadSeriesBinary(path);
  }
  return ts::ReadSeriesCsv(path);
}

// Writes `text` to `path`, or to stdout when path is empty or "-".
bool WriteOutput(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

// Renders a metrics snapshot in `format` (prom|json) to `path`/stdout.
bool WriteMetrics(const obs::MetricsSnapshot& snapshot,
                  const std::string& format, const std::string& path) {
  const std::string rendered = format == "prom"
                                   ? obs::RenderPrometheus(snapshot)
                                   : obs::RenderJson(snapshot) + "\n";
  return WriteOutput(path, rendered);
}

// Live-introspection knobs (--introspect_*); port < 0 disables.
struct IntrospectOptions {
  int64_t port = -1;
  int64_t linger_ms = 0;
  double staleness_ms = 1000.0;
  double publish_ms = 50.0;
};

void LingerForScrapers(const IntrospectOptions& introspect) {
  if (introspect.port >= 0 && introspect.linger_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(introspect.linger_ms));
  }
}

// Threshold-mode matching through the MonitorEngine with an observability
// bundle attached; renders metrics / trace afterwards. `batch_chunk` > 0
// switches the engine to SoA batch mode and ingests via PushBatch in
// chunk-value runs.
int RunObserved(const ts::Series& stream, const ts::Series& query,
                const core::SpringOptions& options, int64_t batch_chunk,
                const std::string& metrics_format,
                const std::string& metrics_out, const std::string& trace_out,
                int64_t trace_capacity, int64_t report_every,
                const IntrospectOptions& introspect) {
  obs::ObservabilityOptions obs_options;
  obs_options.trace_capacity = trace_capacity;
  obs_options.report_every_ticks = report_every;
  obs_options.report_out = &std::cerr;
  obs::Observability observability(obs_options);

  monitor::EngineOptions engine_options;
  engine_options.batch_queries = batch_chunk > 0;
  monitor::MonitorEngine engine(engine_options);
  // Attaching observability routes ingest through the engine's observed
  // per-value path, which bypasses the query-major batched fast path — so
  // a bare --batch run stays unobserved and actually exercises the SoA
  // pool.
  const bool want_obs = !metrics_format.empty() || !trace_out.empty() ||
                        report_every > 0 || introspect.port >= 0;
  if (want_obs) engine.AttachObservability(&observability);
  // The stream is already repaired here; keep engine-side repair off.
  const int64_t stream_id = engine.AddStream("stream", false);
  const auto query_id =
      engine.AddQuery(stream_id, "query", query.values(), options);
  if (!query_id.ok()) {
    std::fprintf(stderr, "%s\n", query_id.status().ToString().c_str());
    return 1;
  }
  int64_t count = 0;
  monitor::CallbackSink printer(
      [&count](const monitor::MatchOrigin&, const core::Match& match) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      });
  engine.AddSink(&printer);

  // Single-threaded introspection: the ingest loop publishes snapshots
  // into a cache (throttled), the server thread serves the latest copy.
  obs::IntrospectionCache cache;
  std::unique_ptr<obs::IntrospectionServer> server;
  const uint64_t start_nanos =
      static_cast<uint64_t>(util::Stopwatch::NowNanos());
  const uint64_t publish_interval_nanos =
      static_cast<uint64_t>(std::max(introspect.publish_ms, 0.0) * 1e6);
  uint64_t last_publish_nanos = 0;
  const auto publish = [&](bool running, int64_t ticks, uint64_t now) {
    engine.RefreshObservabilityGauges();
    cache.PublishMetrics(observability.registry().Snapshot());
    obs::HealthReport health;
    health.state = running ? "ok" : "stopped";
    health.staleness_budget_ms = introspect.staleness_ms;
    obs::WorkerHealth worker;
    worker.state = health.state;
    worker.ms_since_progress = 0.0;
    health.workers.push_back(worker);
    cache.PublishHealth(std::move(health));
    obs::StatusReport status;
    status.role = "engine";
    status.started = running;
    status.uptime_seconds = static_cast<double>(now - start_nanos) / 1e9;
    status.num_workers = 1;
    status.num_streams = engine.num_streams();
    status.num_queries = engine.num_queries();
    status.ticks_ingested = ticks;
    status.matches_delivered = count;
    cache.PublishStatus(std::move(status));
    obs::TracezReport traces;
    traces.events = observability.trace().Events();
    traces.dropped = observability.trace().dropped();
    cache.PublishTraces(std::move(traces));
    last_publish_nanos = now;
  };
  if (introspect.port >= 0) {
    obs::IntrospectionServerOptions server_options;
    server_options.port = static_cast<int>(introspect.port);
    server = std::make_unique<obs::IntrospectionServer>(server_options,
                                                        cache.Handlers());
    const util::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "introspection server: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    publish(true, 0, start_nanos);
    std::printf("INTROSPECT_PORT=%d\n", server->port());
    std::fflush(stdout);
  }

  const std::vector<double>& values = stream.values();
  const int64_t chunk = std::max<int64_t>(1, batch_chunk);
  for (int64_t at = 0; at < stream.size(); at += chunk) {
    const int64_t n = std::min(chunk, stream.size() - at);
    const util::StatusOr<int64_t> pushed =
        batch_chunk > 0
            ? engine.PushBatch(stream_id,
                               std::span<const double>(
                                   values.data() + at,
                                   static_cast<size_t>(n)))
            : engine.Push(stream_id, values[static_cast<size_t>(at)]);
    if (!pushed.ok()) {
      std::fprintf(stderr, "%s\n", pushed.status().ToString().c_str());
      return 1;
    }
    if (server != nullptr) {
      const uint64_t now =
          static_cast<uint64_t>(util::Stopwatch::NowNanos());
      if (now - last_publish_nanos >= publish_interval_nanos) {
        publish(true, at + n, now);
      }
    }
  }
  engine.FlushAll();
  std::printf("# %lld matches\n", static_cast<long long>(count));
  if (server != nullptr) {
    publish(false, stream.size(),
            static_cast<uint64_t>(util::Stopwatch::NowNanos()));
    LingerForScrapers(introspect);
  }

  if (want_obs) engine.RefreshObservabilityGauges();
  if (!metrics_format.empty()) {
    if (!WriteMetrics(observability.registry().Snapshot(), metrics_format,
                      metrics_out)) {
      return 1;
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   trace_out.c_str());
      return 1;
    }
    observability.trace().DumpJsonl(out);
  }
  return 0;
}

// Threshold-mode matching through the ShardedMonitor shell (--threads=N).
// Matches are delivered deterministically at the FlushAll barrier; metrics,
// when requested, are the fleet-wide merged snapshot.
int RunSharded(const ts::Series& stream, const ts::Series& query,
               const core::SpringOptions& options, int64_t threads,
               int64_t batch_chunk, const std::string& metrics_format,
               const std::string& metrics_out,
               const IntrospectOptions& introspect) {
  monitor::ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = threads;
  monitor_options.collect_metrics = !metrics_format.empty();
  monitor_options.introspect_port = introspect.port;
  monitor_options.staleness_budget_ms = introspect.staleness_ms;
  monitor_options.publish_interval_ms = introspect.publish_ms;
  monitor::ShardedMonitor monitor(monitor_options);
  if (introspect.port >= 0) {
    if (monitor.introspection_port() < 0) {
      std::fprintf(stderr, "introspection server failed to start\n");
      return 1;
    }
    std::printf("INTROSPECT_PORT=%d\n", monitor.introspection_port());
    std::fflush(stdout);
  }
  // The stream is already repaired here; keep router-side repair off.
  const int64_t stream_id = monitor.AddStream("stream", false);
  const auto query_id =
      monitor.AddQuery(stream_id, "query", query.values(), options);
  if (!query_id.ok()) {
    std::fprintf(stderr, "%s\n", query_id.status().ToString().c_str());
    return 1;
  }
  int64_t count = 0;
  monitor::CallbackSink printer(
      [&count](const monitor::MatchOrigin&, const core::Match& match) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      });
  monitor.AddSink(&printer);

  monitor.Start();
  const std::vector<double>& values = stream.values();
  const int64_t chunk = std::max<int64_t>(1, batch_chunk);
  for (int64_t at = 0; at < stream.size(); at += chunk) {
    const int64_t n = std::min(chunk, stream.size() - at);
    const util::Status pushed = monitor.PushBatch(
        stream_id, std::span<const double>(values.data() + at,
                                           static_cast<size_t>(n)));
    if (!pushed.ok()) {
      std::fprintf(stderr, "%s\n", pushed.ToString().c_str());
      return 1;
    }
  }
  monitor.FlushAll();
  std::printf("# %lld matches\n", static_cast<long long>(count));
  std::fflush(stdout);
  // Linger with the workers still up so scrapers see live /healthz and
  // /statusz; pick a staleness budget longer than the linger window if the
  // post-run "stale" verdict is unwanted.
  LingerForScrapers(introspect);

  if (!metrics_format.empty()) {
    if (!WriteMetrics(monitor.MergedMetricsSnapshot(), metrics_format,
                      metrics_out)) {
      return 1;
    }
  }
  monitor.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const std::string stream_path = flags.GetString("stream", "");
  const std::string query_path = flags.GetString("query", "");
  if (stream_path.empty() || query_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --stream=FILE --query=FILE --epsilon=E "
                 "[--topk=K] [--distance=squared|absolute] "
                 "[--max_length=N] [--min_length=N] [--paths] "
                 "[--batch=CHUNK] [--threads=N]\n",
                 flags.program_name().c_str());
    return 2;
  }

  auto stream = LoadSeries(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto query = LoadSeries(query_path);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  if (query->CountMissing() > 0) {
    std::fprintf(stderr, "query has missing values; repair it first\n");
    return 1;
  }
  const int64_t missing = stream->CountMissing();
  const ts::Series repaired =
      missing > 0 ? RepairMissing(*stream, ts::RepairPolicy::kHoldLast)
                  : std::move(*stream);
  if (missing > 0) {
    std::fprintf(stderr, "note: repaired %lld missing readings hold-last\n",
                 static_cast<long long>(missing));
  }

  const dtw::LocalDistance distance =
      flags.GetString("distance", "squared") == "absolute"
          ? dtw::LocalDistance::kAbsolute
          : dtw::LocalDistance::kSquared;
  const int64_t topk = flags.GetInt64("topk", 0);
  const int64_t threads = flags.GetInt64("threads", 0);
  const int64_t batch = flags.GetInt64("batch", 0);
  IntrospectOptions introspect;
  introspect.port = flags.GetInt64("introspect_port", -1);
  introspect.linger_ms = flags.GetInt64("introspect_linger_ms", 0);
  introspect.staleness_ms = flags.GetDouble("introspect_staleness_ms", 1000.0);
  introspect.publish_ms = flags.GetDouble("introspect_publish_ms", 50.0);

  if (topk > 0) {
    if (!flags.GetString("metrics", "").empty() ||
        !flags.GetString("trace_out", "").empty() || introspect.port >= 0) {
      std::fprintf(stderr, "--metrics/--trace_out/--introspect_port do not "
                           "combine with --topk\n");
      return 2;
    }
    if (threads > 0 || batch > 0) {
      std::fprintf(stderr, "--threads/--batch do not combine with "
                           "--topk\n");
      return 2;
    }
    const auto matches =
        core::TopKDisjointMatches(repaired, *query, topk, distance);
    for (const core::Match& m : matches) {
      std::printf("%s\n", m.ToString().c_str());
    }
    return 0;
  }

  const double epsilon = flags.GetDouble("epsilon", -1.0);
  if (epsilon < 0.0) {
    std::fprintf(stderr, "need --epsilon>=0 (or --topk=K)\n");
    return 2;
  }

  const std::string metrics_format = flags.GetString("metrics", "");
  const std::string trace_out = flags.GetString("trace_out", "");
  if (!metrics_format.empty() && metrics_format != "prom" &&
      metrics_format != "json") {
    std::fprintf(stderr, "--metrics must be 'prom' or 'json'\n");
    return 2;
  }
  if ((threads > 0 || batch > 0) && flags.GetBool("paths", false)) {
    std::fprintf(stderr, "--threads/--batch do not combine with --paths\n");
    return 2;
  }
  if (threads > 0 && !trace_out.empty()) {
    std::fprintf(stderr, "--trace_out needs a single engine; it does not "
                         "combine with --threads\n");
    return 2;
  }
  if (!metrics_format.empty() || !trace_out.empty() || threads > 0 ||
      batch > 0 || introspect.port >= 0) {
    if (flags.GetBool("paths", false)) {
      std::fprintf(stderr, "--metrics/--trace_out/--introspect_port do not "
                           "combine with --paths\n");
      return 2;
    }
    core::SpringOptions options;
    options.epsilon = epsilon;
    options.local_distance = distance;
    options.max_match_length = flags.GetInt64("max_length", 0);
    options.min_match_length = flags.GetInt64("min_length", 0);
    if (threads > 0) {
      return RunSharded(repaired, *query, options, threads, batch,
                        metrics_format, flags.GetString("metrics_out", ""),
                        introspect);
    }
    return RunObserved(repaired, *query, options, batch, metrics_format,
                       flags.GetString("metrics_out", ""), trace_out,
                       flags.GetInt64("trace_capacity", 4096),
                       flags.GetInt64("report_every", 0), introspect);
  }

  if (flags.GetBool("paths", false)) {
    const auto matches =
        core::DisjointPathMatches(repaired, *query, epsilon, distance);
    for (const core::PathMatch& m : matches) {
      std::printf("%s path_steps=%zu\n", m.match.ToString().c_str(),
                  m.path.size());
    }
    std::printf("# %zu matches\n", matches.size());
  } else {
    // The scan helpers do not take length constraints; run the matcher
    // directly so --max_length/--min_length work.
    core::SpringOptions options;
    options.epsilon = epsilon;
    options.local_distance = distance;
    options.max_match_length = flags.GetInt64("max_length", 0);
    options.min_match_length = flags.GetInt64("min_length", 0);
    core::SpringMatcher matcher(query->values(), options);
    core::Match match;
    int64_t count = 0;
    for (int64_t t = 0; t < repaired.size(); ++t) {
      if (matcher.Update(repaired[t], &match)) {
        std::printf("%s\n", match.ToString().c_str());
        ++count;
      }
    }
    if (matcher.Flush(&match)) {
      std::printf("%s (flushed)\n", match.ToString().c_str());
      ++count;
    }
    std::printf("# %lld matches\n", static_cast<long long>(count));
  }
  return 0;
}
