// Fuzz harness for WAL segment scanning — the crash-recovery input
// boundary. A segment read back after kill -9 is untrusted bytes: torn
// tails, bit rot, hostile lengths. ScanRecords must never crash, never
// over-allocate (oversize length prefixes are bounded by kMaxRecordLen),
// and must hand back a valid prefix whose records decode cleanly. Decoded
// records are re-encoded and re-scanned to prove the valid prefix is
// stable under a round trip — the property startup recovery rests on.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "wal/record.h"

namespace {

using springdtw::wal::AppendRecord;
using springdtw::wal::DeliveryMark;
using springdtw::wal::RecordType;
using springdtw::wal::ScanRecords;
using springdtw::wal::ScanResult;
using springdtw::wal::SegmentHeader;
using springdtw::wal::TicksRecord;

void CheckScan(std::span<const uint8_t> bytes) {
  const ScanResult scan = ScanRecords(bytes);
  if (scan.valid_bytes > bytes.size()) std::abort();
  if (!scan.torn && scan.valid_bytes != bytes.size()) std::abort();

  // Every surfaced record must decode by its own type and survive an
  // encode/decode round trip byte-identically at the field level.
  std::vector<uint8_t> reframed;
  for (const auto& record : scan.records) {
    switch (record.type) {
      case RecordType::kSegmentHeader: {
        SegmentHeader header;
        if (!header.DecodeFrom(record.body).ok()) return;
        SegmentHeader again;
        if (!again.DecodeFrom(header.Encode()).ok()) std::abort();
        if (again.shard != header.shard || again.index != header.index) {
          std::abort();
        }
        AppendRecord(record.type, header.Encode(), &reframed);
        break;
      }
      case RecordType::kTicks: {
        TicksRecord ticks;
        if (!ticks.DecodeFrom(record.body).ok()) return;
        TicksRecord again;
        if (!again.DecodeFrom(ticks.Encode()).ok()) std::abort();
        if (again.seq0 != ticks.seq0 || again.stream_id != ticks.stream_id ||
            again.values.size() != ticks.values.size()) {
          std::abort();
        }
        AppendRecord(record.type, ticks.Encode(), &reframed);
        break;
      }
      case RecordType::kDeliveryMark: {
        DeliveryMark mark;
        if (!mark.DecodeFrom(record.body).ok()) return;
        DeliveryMark again;
        if (!again.DecodeFrom(mark.Encode()).ok()) std::abort();
        if (again.seq != mark.seq || again.query_id != mark.query_id) {
          std::abort();
        }
        AppendRecord(record.type, mark.Encode(), &reframed);
        break;
      }
    }
  }

  // A buffer built purely from valid records must scan back whole: same
  // record count, no torn tail.
  const ScanResult rescan = ScanRecords(reframed);
  if (rescan.torn) std::abort();
  if (rescan.records.size() != scan.records.size()) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  CheckScan({data, size});
  return 0;
}
