// Writes valid snapshot/checkpoint seed inputs for fuzz_checkpoint into the
// directory given as argv[1]. Run as a ctest fixture so the smoke replay
// always exercises the parse-succeeds path (the committed corpus covers the
// reject paths with handcrafted corrupt files, which stay valid even if the
// snapshot format rolls its version).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/spring.h"
#include "core/vector_spring.h"
#include "monitor/engine.h"
#include "ts/vector_series.h"

namespace {

bool WriteFile(const std::filesystem::path& path,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  using springdtw::core::Match;
  using springdtw::core::SpringMatcher;
  using springdtw::core::SpringOptions;
  using springdtw::core::VectorSpringMatcher;

  bool ok = true;
  Match match;

  // Scalar matcher: fresh, mid-stream, and with a pending candidate.
  {
    SpringOptions options;
    options.epsilon = 2.0;
    SpringMatcher matcher({1.0, 2.0, 3.0}, options);
    ok = WriteFile(dir / "scalar_fresh.bin", matcher.SerializeState()) && ok;
    for (const double x : {5.0, 1.1, 2.0, 2.9, 5.0, 6.0}) {
      matcher.Update(x, &match);
    }
    ok = WriteFile(dir / "scalar_mid.bin", matcher.SerializeState()) && ok;
  }
  {
    SpringOptions options;
    options.epsilon = 0.5;
    SpringMatcher matcher({1.0, 2.0}, options);
    for (const double x : {9.0, 1.0, 2.0}) matcher.Update(x, &match);
    ok = WriteFile(dir / "scalar_candidate.bin", matcher.SerializeState()) &&
         ok;
  }

  // Vector matcher, 2-dimensional.
  {
    springdtw::ts::VectorSeries query(2, "q");
    query.AppendRow(std::vector<double>{0.0, 1.0});
    query.AppendRow(std::vector<double>{1.0, 0.0});
    SpringOptions options;
    options.epsilon = 1.0;
    VectorSpringMatcher matcher(std::move(query), options);
    for (int t = 0; t < 5; ++t) {
      const std::vector<double> row = {0.1 * t, 1.0 - 0.1 * t};
      matcher.Update(row, &match);
    }
    ok = WriteFile(dir / "vector_mid.bin", matcher.SerializeState()) && ok;
  }

  // Engine checkpoint: two scalar streams, one vector stream, mixed queries.
  {
    springdtw::monitor::MonitorEngine engine;
    const int64_t s0 = engine.AddStream("cpu");
    const int64_t s1 = engine.AddStream("temp", /*repair_missing=*/false);
    SpringOptions options;
    options.epsilon = 4.0;
    (void)engine.AddQuery(s0, "spike", {0.0, 1.0, 0.0}, options);
    (void)engine.AddQuery(s1, "ramp", {1.0, 2.0, 3.0, 4.0}, options);
    springdtw::ts::VectorSeries query(2, "diag");
    query.AppendRow(std::vector<double>{0.0, 0.0});
    query.AppendRow(std::vector<double>{1.0, 1.0});
    const int64_t v0 = engine.AddVectorStream("gyro", 2);
    (void)engine.AddVectorQuery(v0, "diag", std::move(query), options);
    for (int t = 0; t < 12; ++t) {
      (void)engine.Push(s0, 0.5 * t);
      (void)engine.Push(s1, 12.0 - t);
      const std::vector<double> row = {0.25 * t, 0.25 * t};
      (void)engine.PushRow(v0, row);
    }
    ok = WriteFile(dir / "engine_mixed.bin", engine.SerializeState()) && ok;
  }

  if (!ok) {
    std::fprintf(stderr, "failed writing seed corpus to %s\n", argv[1]);
    return 1;
  }
  std::printf("seed corpus written to %s\n", argv[1]);
  return 0;
}
