// Writes valid snapshot/checkpoint seed inputs for fuzz_checkpoint into the
// directory given as argv[1], and — when argv[2] is given — valid wire
// frames for fuzz_net_frame into that directory. Run as a ctest fixture so
// the smoke replays always exercise the parse-succeeds path (the committed
// corpora cover the reject paths with handcrafted corrupt files, which stay
// valid even if a format rolls its version).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/spring.h"
#include "core/vector_spring.h"
#include "monitor/engine.h"
#include "net/protocol.h"
#include "ts/vector_series.h"
#include "wal/record.h"

namespace {

bool WriteFile(const std::filesystem::path& path,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

namespace {

// One frame per wire payload type the server or client actually parses,
// plus a multi-frame stream, so the cut loop's happy path is always in the
// replayed corpus.
bool WriteNetFrameCorpus(const std::filesystem::path& dir) {
  namespace net = springdtw::net;
  bool ok = true;
  auto write_frame = [&](const char* name, net::FrameType type,
                         const auto& payload) {
    std::vector<uint8_t> wire;
    net::AppendPayloadFrame(type, payload, &wire);
    ok = WriteFile(dir / name, wire) && ok;
    return wire;
  };

  net::HelloPayload hello;
  hello.version = net::kProtocolVersion;
  hello.peer_name = "fuzz";
  const std::vector<uint8_t> hello_wire =
      write_frame("hello.bin", net::FrameType::kHello, hello);

  net::OpenStreamPayload open_stream;
  open_stream.request_id = 1;
  open_stream.name = "s0";
  write_frame("open_stream.bin", net::FrameType::kOpenStream, open_stream);

  net::AddQueryPayload add_query;
  add_query.request_id = 2;
  add_query.stream_id = 0;
  add_query.name = "q";
  add_query.values = {1.0, 2.0, 3.0};
  add_query.epsilon = 0.5;
  add_query.local_distance = 0;
  const std::vector<uint8_t> add_query_wire =
      write_frame("add_query.bin", net::FrameType::kAddQuery, add_query);

  net::TickBatchPayload batch;
  batch.stream_id = 0;
  batch.values = {0.0, 1.0, 2.0, 3.0, 2.0, 1.0};
  const std::vector<uint8_t> batch_wire =
      write_frame("tick_batch.bin", net::FrameType::kTickBatch, batch);

  net::MatchEventPayload event;
  event.delivery_seq = 7;
  event.stream_name = "s0";
  event.query_name = "q";
  event.match.start = 3;
  event.match.end = 7;
  event.match.report_time = 8;
  write_frame("match_event.bin", net::FrameType::kMatchEvent, event);

  net::QueryListPayload list;
  list.request_id = 3;
  net::QueryListPayload::Entry entry;
  entry.name = "q";
  entry.stream_name = "s0";
  entry.ticks = 6;
  list.entries.push_back(entry);
  write_frame("query_list.bin", net::FrameType::kQueryList, list);

  write_frame("error.bin", net::FrameType::kError,
              net::MakeErrorPayload(
                  4, springdtw::util::NotFoundError("no such query")));

  // Protocol-v2 shapes: the optional trailers only appear on the wire when
  // set, so without these seeds the replay smoke never walks the trailer
  // decode paths (send_nanos on TICK/TICK_BATCH, want_stats on
  // LIST_QUERIES, the per-entry cost-stats block on QUERY_LIST).
  net::TickPayload tick_stamped;
  tick_stamped.stream_id = 0;
  tick_stamped.value = 1.5;
  tick_stamped.send_nanos = 123456789;
  write_frame("tick_stamped.bin", net::FrameType::kTick, tick_stamped);

  net::TickBatchPayload batch_stamped;
  batch_stamped.stream_id = 0;
  batch_stamped.values = {1.0, 2.0, 3.0};
  batch_stamped.send_nanos = 987654321;
  const std::vector<uint8_t> batch_stamped_wire = write_frame(
      "tick_batch_stamped.bin", net::FrameType::kTickBatch, batch_stamped);

  net::ListQueriesPayload list_stats;
  list_stats.request_id = 5;
  list_stats.want_stats = true;
  const std::vector<uint8_t> list_stats_wire = write_frame(
      "list_queries_stats.bin", net::FrameType::kListQueries, list_stats);

  net::QueryListPayload list_with_stats = list;
  list_with_stats.has_stats = true;
  list_with_stats.entries[0].cells = 4096;
  list_with_stats.entries[0].last_match_seq = 11;
  list_with_stats.entries[0].est_cpu_nanos = 250000;
  write_frame("query_list_stats.bin", net::FrameType::kQueryList,
              list_with_stats);

  // A v2 session prefix: HELLO, ADD_QUERY, stamped TICK_BATCH, and a
  // stats-requesting LIST_QUERIES back to back through the cut loop.
  std::vector<uint8_t> session_v2 = hello_wire;
  session_v2.insert(session_v2.end(), add_query_wire.begin(),
                    add_query_wire.end());
  session_v2.insert(session_v2.end(), batch_stamped_wire.begin(),
                    batch_stamped_wire.end());
  session_v2.insert(session_v2.end(), list_stats_wire.begin(),
                    list_stats_wire.end());
  ok = WriteFile(dir / "session_v2.bin", session_v2) && ok;

  // A realistic session prefix: HELLO, ADD_QUERY, TICK_BATCH back to back.
  std::vector<uint8_t> session = hello_wire;
  session.insert(session.end(), add_query_wire.begin(), add_query_wire.end());
  session.insert(session.end(), batch_wire.begin(), batch_wire.end());
  ok = WriteFile(dir / "session.bin", session) && ok;
  return ok;
}

// Valid WAL segment shapes for fuzz_wal: what a healthy shard leaves on
// disk (header + tick runs), a marks file, and a mixed multi-record
// segment. The committed corpus/wal covers the torn/hostile shapes.
bool WriteWalCorpus(const std::filesystem::path& dir) {
  namespace wal = springdtw::wal;
  bool ok = true;

  std::vector<uint8_t> segment;
  wal::SegmentHeader header;
  header.shard = 0;
  header.index = 3;
  wal::AppendRecord(wal::RecordType::kSegmentHeader, header.Encode(),
                    &segment);
  ok = WriteFile(dir / "header_only.bin", segment) && ok;

  wal::TicksRecord ticks;
  ticks.seq0 = 0;
  ticks.stream_id = 0;
  ticks.values = {1.0, 2.5, -3.0};
  wal::AppendRecord(wal::RecordType::kTicks, ticks.Encode(), &segment);
  wal::TicksRecord more;
  more.seq0 = 3;
  more.stream_id = 1;
  more.values.assign(64, 0.25);
  wal::AppendRecord(wal::RecordType::kTicks, more.Encode(), &segment);
  ok = WriteFile(dir / "segment_ticks.bin", segment) && ok;

  std::vector<uint8_t> marks;
  wal::SegmentHeader marks_header;
  marks_header.shard = static_cast<uint64_t>(-1);
  marks_header.index = 4;
  wal::AppendRecord(wal::RecordType::kSegmentHeader, marks_header.Encode(),
                    &marks);
  wal::DeliveryMark mark;
  mark.seq = 66;
  mark.query_id = 2;
  wal::AppendRecord(wal::RecordType::kDeliveryMark, mark.Encode(), &marks);
  ok = WriteFile(dir / "marks.bin", marks) && ok;

  // A mixed segment with a mark interleaved (scanner must not assume
  // record-type ordering) and a NaN tick value.
  std::vector<uint8_t> mixed = segment;
  wal::AppendRecord(wal::RecordType::kDeliveryMark, mark.Encode(), &mixed);
  wal::TicksRecord weird;
  weird.seq0 = 67;
  weird.stream_id = 0;
  weird.values = {std::numeric_limits<double>::quiet_NaN(), 0.0};
  wal::AppendRecord(wal::RecordType::kTicks, weird.Encode(), &mixed);
  ok = WriteFile(dir / "mixed.bin", mixed) && ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 4) {
    std::fprintf(stderr,
                 "usage: %s <checkpoint-dir> [net-frame-dir] [wal-dir]\n",
                 argv[0]);
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  using springdtw::core::Match;
  using springdtw::core::SpringMatcher;
  using springdtw::core::SpringOptions;
  using springdtw::core::VectorSpringMatcher;

  bool ok = true;
  Match match;

  // Scalar matcher: fresh, mid-stream, and with a pending candidate.
  {
    SpringOptions options;
    options.epsilon = 2.0;
    SpringMatcher matcher({1.0, 2.0, 3.0}, options);
    ok = WriteFile(dir / "scalar_fresh.bin", matcher.SerializeState()) && ok;
    for (const double x : {5.0, 1.1, 2.0, 2.9, 5.0, 6.0}) {
      matcher.Update(x, &match);
    }
    ok = WriteFile(dir / "scalar_mid.bin", matcher.SerializeState()) && ok;
  }
  {
    SpringOptions options;
    options.epsilon = 0.5;
    SpringMatcher matcher({1.0, 2.0}, options);
    for (const double x : {9.0, 1.0, 2.0}) matcher.Update(x, &match);
    ok = WriteFile(dir / "scalar_candidate.bin", matcher.SerializeState()) &&
         ok;
  }

  // Vector matcher, 2-dimensional.
  {
    springdtw::ts::VectorSeries query(2, "q");
    query.AppendRow(std::vector<double>{0.0, 1.0});
    query.AppendRow(std::vector<double>{1.0, 0.0});
    SpringOptions options;
    options.epsilon = 1.0;
    VectorSpringMatcher matcher(std::move(query), options);
    for (int t = 0; t < 5; ++t) {
      const std::vector<double> row = {0.1 * t, 1.0 - 0.1 * t};
      matcher.Update(row, &match);
    }
    ok = WriteFile(dir / "vector_mid.bin", matcher.SerializeState()) && ok;
  }

  // Engine checkpoint: two scalar streams, one vector stream, mixed queries.
  {
    springdtw::monitor::MonitorEngine engine;
    const int64_t s0 = engine.AddStream("cpu");
    const int64_t s1 = engine.AddStream("temp", /*repair_missing=*/false);
    SpringOptions options;
    options.epsilon = 4.0;
    (void)engine.AddQuery(s0, "spike", {0.0, 1.0, 0.0}, options);
    (void)engine.AddQuery(s1, "ramp", {1.0, 2.0, 3.0, 4.0}, options);
    springdtw::ts::VectorSeries query(2, "diag");
    query.AppendRow(std::vector<double>{0.0, 0.0});
    query.AppendRow(std::vector<double>{1.0, 1.0});
    const int64_t v0 = engine.AddVectorStream("gyro", 2);
    (void)engine.AddVectorQuery(v0, "diag", std::move(query), options);
    for (int t = 0; t < 12; ++t) {
      (void)engine.Push(s0, 0.5 * t);
      (void)engine.Push(s1, 12.0 - t);
      const std::vector<double> row = {0.25 * t, 0.25 * t};
      (void)engine.PushRow(v0, row);
    }
    ok = WriteFile(dir / "engine_mixed.bin", engine.SerializeState()) && ok;
  }

  if (argc >= 3) {
    const std::filesystem::path net_dir(argv[2]);
    std::filesystem::create_directories(net_dir, ec);
    ok = WriteNetFrameCorpus(net_dir) && ok;
  }

  if (argc >= 4) {
    const std::filesystem::path wal_dir(argv[3]);
    std::filesystem::create_directories(wal_dir, ec);
    ok = WriteWalCorpus(wal_dir) && ok;
  }

  if (!ok) {
    std::fprintf(stderr, "failed writing seed corpus to %s\n", argv[1]);
    return 1;
  }
  std::printf("seed corpus written to %s\n", argv[1]);
  return 0;
}
