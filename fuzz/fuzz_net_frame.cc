// Fuzz harness for the net/ wire protocol — the boundary where springdtw_serve
// reads bytes from untrusted TCP peers.
//
// Two phases per input:
//  1. Server-style cut loop: run CutFrame over the raw bytes exactly like
//     StreamServer::ReadAndProcess does, asserting the framing contract —
//     a cut either errors (session-fatal), parks for more data
//     (consumed == 0), or yields a frame whose payload length matches the
//     consumed byte count. Every complete frame of a known type is fed to
//     its typed decoder; a successful decode must re-encode to a canonical
//     form that decodes again to byte-identical output (fixpoint), and the
//     option/status views (ToSpringOptions, ToStatus) must not crash.
//  2. Frame round-trip: treat the input as an opaque payload, append it
//     as a frame of every known type, and assert CutFrame hands back the
//     same type and payload with nothing left over.
//
// Property violations abort (the fuzzer treats that as a crash); under the
// replay driver an abort fails the ctest smoke.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "net/protocol.h"
#include "util/codec.h"
#include "util/status.h"

namespace {

using namespace springdtw::net;

void Require(bool condition) {
  if (!condition) std::abort();
}

template <typename Payload>
std::vector<uint8_t> Encode(const Payload& payload) {
  springdtw::util::ByteWriter writer;
  payload.EncodeTo(&writer);
  return writer.buffer();
}

// Decode, and on success require the canonical-form fixpoint: re-encoding
// the decoded value yields bytes that decode to the same re-encoding.
template <typename Payload>
void CheckTypedDecode(std::span<const uint8_t> payload_bytes) {
  Payload payload;
  if (!DecodePayload(payload_bytes, &payload).ok()) return;
  const std::vector<uint8_t> canonical = Encode(payload);
  Payload reparsed;
  Require(DecodePayload(canonical, &reparsed).ok());
  Require(Encode(reparsed) == canonical);
}

void DispatchDecode(const Frame& frame) {
  const std::span<const uint8_t> bytes(frame.payload);
  switch (frame.type) {
    case FrameType::kHello:
      CheckTypedDecode<HelloPayload>(bytes);
      break;
    case FrameType::kHelloAck:
      CheckTypedDecode<HelloAckPayload>(bytes);
      break;
    case FrameType::kOpenStream:
      CheckTypedDecode<OpenStreamPayload>(bytes);
      break;
    case FrameType::kStreamOpened:
      CheckTypedDecode<StreamOpenedPayload>(bytes);
      break;
    case FrameType::kAddQuery: {
      AddQueryPayload payload;
      if (DecodePayload(bytes, &payload).ok()) {
        CheckTypedDecode<AddQueryPayload>(bytes);
        // The option view validates hostile values; it must reject or
        // accept, never crash.
        (void)payload.ToSpringOptions();
      }
      break;
    }
    case FrameType::kQueryAdded:
      CheckTypedDecode<QueryAddedPayload>(bytes);
      break;
    case FrameType::kRemoveQuery:
      CheckTypedDecode<RemoveQueryPayload>(bytes);
      break;
    case FrameType::kQueryRemoved:
      CheckTypedDecode<QueryRemovedPayload>(bytes);
      break;
    case FrameType::kListQueries:
      CheckTypedDecode<ListQueriesPayload>(bytes);
      break;
    case FrameType::kQueryList:
      CheckTypedDecode<QueryListPayload>(bytes);
      break;
    case FrameType::kSubscribeMatches:
      CheckTypedDecode<SubscribeMatchesPayload>(bytes);
      break;
    case FrameType::kSubscribed:
      CheckTypedDecode<SubscribedPayload>(bytes);
      break;
    case FrameType::kMatchEvent:
      CheckTypedDecode<MatchEventPayload>(bytes);
      break;
    case FrameType::kTick:
      CheckTypedDecode<TickPayload>(bytes);
      break;
    case FrameType::kTickBatch:
      CheckTypedDecode<TickBatchPayload>(bytes);
      break;
    case FrameType::kCheckpoint:
      CheckTypedDecode<CheckpointPayload>(bytes);
      break;
    case FrameType::kCheckpointed:
      CheckTypedDecode<CheckpointedPayload>(bytes);
      break;
    case FrameType::kDrain:
      CheckTypedDecode<DrainPayload>(bytes);
      break;
    case FrameType::kDrainAck:
      CheckTypedDecode<DrainAckPayload>(bytes);
      break;
    case FrameType::kError: {
      ErrorPayload payload;
      if (DecodePayload(bytes, &payload).ok()) {
        CheckTypedDecode<ErrorPayload>(bytes);
        // Whatever code the peer sent, the status view is never kOk.
        Require(!payload.ToStatus().ok());
      }
      break;
    }
  }
}

void CutLoopPhase(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> buffer(data, size);
  size_t offset = 0;
  while (offset < buffer.size()) {
    Frame frame;
    size_t consumed = 0;
    const springdtw::util::Status status =
        CutFrame(buffer.subspan(offset), kDefaultMaxFrameBytes, &frame,
                 &consumed);
    if (!status.ok()) break;  // Session-fatal framing error.
    if (consumed == 0) break;  // Incomplete frame: wait for more bytes.
    Require(consumed >= kFrameHeaderBytes);
    Require(consumed <= buffer.size() - offset);
    Require(frame.payload.size() == consumed - kFrameHeaderBytes);
    if (KnownFrameType(static_cast<uint8_t>(frame.type))) {
      DispatchDecode(frame);
    }
    offset += consumed;
  }
}

void FrameRoundTripPhase(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> payload(data, size);
  for (uint8_t type = static_cast<uint8_t>(FrameType::kHello);
       type <= static_cast<uint8_t>(FrameType::kError); ++type) {
    std::vector<uint8_t> wire;
    AppendFrame(static_cast<FrameType>(type), payload, &wire);
    Frame frame;
    size_t consumed = 0;
    // The cap must admit any frame AppendFrame can produce for this input.
    const uint64_t cap = wire.size();
    Require(CutFrame(wire, cap, &frame, &consumed).ok());
    Require(consumed == wire.size());
    Require(static_cast<uint8_t>(frame.type) == type);
    Require(std::span<const uint8_t>(frame.payload).size() == payload.size());
    Require(std::equal(frame.payload.begin(), frame.payload.end(),
                       payload.begin()));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  CutLoopPhase(data, size);
  if (size <= kDefaultMaxFrameBytes / 2) FrameRoundTripPhase(data, size);
  return 0;
}
