// Corpus-replay driver for toolchains without libFuzzer (gcc, this repo's
// default). Each fuzz harness defines LLVMFuzzerTestOneInput; under clang
// the real libFuzzer runtime is linked instead and this file is omitted
// (see fuzz/CMakeLists.txt). Arguments are corpus files or directories;
// libFuzzer-style "-flag" arguments are ignored so the same ctest command
// line works for both drivers. Exits non-zero if no input could be
// replayed — a silent empty run would look green while testing nothing.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

bool ReplayFile(const fs::path& path, int* replayed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return false;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  ++*replayed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag.
    const fs::path path(arg);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) {
          ok = ReplayFile(entry.path(), &replayed) && ok;
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      ok = ReplayFile(path, &replayed) && ok;
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", arg.c_str());
      ok = false;
    }
  }
  std::fprintf(stderr, "replayed %d corpus inputs\n", replayed);
  if (replayed == 0) {
    std::fprintf(stderr, "error: empty corpus\n");
    return 1;
  }
  return ok ? 0 : 1;
}
