// Fuzz harness for the CSV readers — the project's untrusted-text input
// boundary. Any byte sequence must either parse into a series or come back
// as a non-OK Status; crashes, hangs, and sanitizer reports are bugs.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "ts/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  {
    auto series = springdtw::ts::ParseSeriesCsv(text, "fuzz");
    if (series.ok()) {
      // Touch the parsed values so a bogus size/backing-store mismatch is
      // caught by ASan rather than optimized away.
      double sum = 0.0;
      for (int64_t i = 0; i < series->size(); ++i) sum += (*series)[i];
      (void)sum;
    }
  }
  {
    auto series = springdtw::ts::ParseVectorSeriesCsv(text, "fuzz");
    if (series.ok() && series->size() > 0) {
      double sum = 0.0;
      for (const double v : series->Row(0)) sum += v;
      (void)sum;
    }
  }
  return 0;
}
