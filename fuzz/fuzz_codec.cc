// Fuzz harness for util::ByteReader / ByteWriter — the codec underneath
// every snapshot, checkpoint, and binary series file.
//
// Two phases per input:
//  1. Decode: drive a ByteReader over the raw bytes with an input-selected
//     rotation of Read* calls, asserting the reader's own contract — the
//     cursor only moves forward and stays in bounds, a failure is sticky,
//     and post-failure reads hand back zero-initialized values.
//  2. Round-trip: derive values from the input, encode them with
//     ByteWriter, and assert ByteReader reads back exactly what was
//     written (varints of every magnitude plus a length-prefixed frame).
//
// Property violations abort (the fuzzer treats that as a crash); under the
// replay driver an abort fails the ctest smoke.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/codec.h"

namespace {

using springdtw::util::ByteReader;
using springdtw::util::ByteWriter;

void Require(bool condition) {
  if (!condition) std::abort();
}

void DecodePhase(const uint8_t* data, size_t size) {
  if (size == 0) return;
  const size_t payload = size - 1;
  ByteReader reader(std::span<const uint8_t>(data + 1, payload));
  size_t last_position = 0;
  unsigned op = data[0];
  while (reader.ok() && !reader.AtEnd()) {
    switch (op++ % 11) {
      case 0: {
        uint8_t v = 0;
        reader.ReadU8(&v);
        break;
      }
      case 1: {
        uint32_t v = 0;
        reader.ReadU32(&v);
        break;
      }
      case 2: {
        uint64_t v = 0;
        reader.ReadU64(&v);
        break;
      }
      case 3: {
        int64_t v = 0;
        reader.ReadI64(&v);
        break;
      }
      case 4: {
        uint64_t v = 0;
        reader.ReadVarU64(&v);
        break;
      }
      case 5: {
        double v = 0.0;
        reader.ReadDouble(&v);
        break;
      }
      case 6: {
        bool v = false;
        reader.ReadBool(&v);
        break;
      }
      case 7: {
        std::string v;
        reader.ReadString(&v);
        Require(v.size() <= payload);
        break;
      }
      case 8: {
        std::vector<double> v;
        reader.ReadDoubleVector(&v);
        Require(v.size() * sizeof(double) <= payload);
        break;
      }
      case 9: {
        std::vector<int64_t> v;
        reader.ReadInt64Vector(&v);
        Require(v.size() * sizeof(int64_t) <= payload);
        break;
      }
      case 10: {
        std::span<const uint8_t> v;
        reader.ReadBytesSpan(&v);
        Require(v.size() <= payload);
        break;
      }
    }
    Require(reader.position() >= last_position);
    Require(reader.position() <= payload);
    Require(reader.remaining() == payload - reader.position());
    last_position = reader.position();
  }
  if (!reader.ok()) {
    // Failure is sticky and post-failure reads zero-initialize.
    uint64_t v = 99;
    Require(!reader.ReadU64(&v));
    Require(v == 0);
    Require(!reader.ok());
  }
}

void RoundTripPhase(const uint8_t* data, size_t size) {
  ByteWriter writer;
  std::vector<uint64_t> varints;
  size_t i = 0;
  while (i + 8 <= size && varints.size() < 64) {
    uint64_t v = 0;
    std::memcpy(&v, data + i, sizeof(v));
    i += sizeof(v);
    // Vary magnitude so all 1..10-byte LEB128 encodings get exercised.
    v >>= (v & 63);
    writer.WriteVarU64(v);
    varints.push_back(v);
  }
  const std::span<const uint8_t> tail(data + i, size - i);
  writer.WriteBytes(tail);

  ByteReader reader(writer.buffer());
  for (const uint64_t expect : varints) {
    uint64_t got = 0;
    Require(reader.ReadVarU64(&got));
    Require(got == expect);
  }
  std::span<const uint8_t> frame;
  Require(reader.ReadBytesSpan(&frame));
  Require(frame.size() == tail.size());
  Require(std::equal(frame.begin(), frame.end(), tail.begin()));
  Require(reader.AtEnd());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DecodePhase(data, size);
  RoundTripPhase(data, size);
  return 0;
}
