// Fuzz harness for checkpoint/snapshot restore — the untrusted-binary
// input boundary. Arbitrary bytes are fed to SpringMatcher and
// VectorSpringMatcher::DeserializeState and MonitorEngine::RestoreState;
// every outcome must be either a clean non-OK Status or a fully usable
// object. When restore succeeds, the restored object is driven for a few
// ticks and re-serialized: in sanitizer builds this must not trip ASan/
// UBSan, and in forced-invariant builds the STWM invariant checks prove
// the restored state was semantically valid, not just parseable.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "core/vector_spring.h"
#include "monitor/engine.h"

namespace {

using springdtw::core::Match;
using springdtw::core::SpringMatcher;
using springdtw::core::VectorSpringMatcher;
using springdtw::monitor::MonitorEngine;

// Deterministic, bounded stream values derived from the input bytes.
double TickValue(const uint8_t* data, size_t size, size_t i) {
  return (static_cast<double>(data[i % size]) - 128.0) / 16.0;
}

void DriveScalar(const uint8_t* data, size_t size) {
  auto matcher = SpringMatcher::DeserializeState({data, size});
  if (!matcher.ok()) return;
  Match match;
  for (size_t i = 0; i < 16; ++i) {
    matcher->Update(TickValue(data, size, i), &match);
  }
  matcher->Flush(&match);
  const std::vector<uint8_t> snapshot = matcher->SerializeState();
  // A snapshot of a live matcher must always restore.
  if (!SpringMatcher::DeserializeState(snapshot).ok()) std::abort();
}

void DriveVector(const uint8_t* data, size_t size) {
  auto matcher = VectorSpringMatcher::DeserializeState({data, size});
  if (!matcher.ok()) return;
  Match match;
  std::vector<double> row(static_cast<size_t>(matcher->dims()));
  for (size_t i = 0; i < 16; ++i) {
    for (size_t d = 0; d < row.size(); ++d) {
      row[d] = TickValue(data, size, i + d);
    }
    matcher->Update(row, &match);
  }
  matcher->Flush(&match);
  const std::vector<uint8_t> snapshot = matcher->SerializeState();
  if (!VectorSpringMatcher::DeserializeState(snapshot).ok()) std::abort();
}

void DriveEngine(const uint8_t* data, size_t size) {
  MonitorEngine engine;
  if (!engine.RestoreState({data, size}).ok()) return;
  for (int64_t stream = 0; stream < engine.num_streams(); ++stream) {
    for (size_t i = 0; i < 8; ++i) {
      const auto pushed =
          engine.Push(stream, TickValue(data, size, i));
      if (!pushed.ok()) std::abort();  // Restored streams must accept input.
    }
  }
  engine.FlushAll();
  // Re-checkpointing a restored engine must produce a restorable
  // checkpoint (forced-invariant builds verify byte-identity internally).
  MonitorEngine resumed;
  if (!resumed.RestoreState(engine.SerializeState()).ok()) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  DriveScalar(data, size);
  DriveVector(data, size);
  DriveEngine(data, size);
  return 0;
}
