file(REMOVE_RECURSE
  "libspring_util.a"
)
