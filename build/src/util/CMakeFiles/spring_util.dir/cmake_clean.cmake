file(REMOVE_RECURSE
  "CMakeFiles/spring_util.dir/codec.cc.o"
  "CMakeFiles/spring_util.dir/codec.cc.o.d"
  "CMakeFiles/spring_util.dir/flags.cc.o"
  "CMakeFiles/spring_util.dir/flags.cc.o.d"
  "CMakeFiles/spring_util.dir/logging.cc.o"
  "CMakeFiles/spring_util.dir/logging.cc.o.d"
  "CMakeFiles/spring_util.dir/memory.cc.o"
  "CMakeFiles/spring_util.dir/memory.cc.o.d"
  "CMakeFiles/spring_util.dir/random.cc.o"
  "CMakeFiles/spring_util.dir/random.cc.o.d"
  "CMakeFiles/spring_util.dir/stats.cc.o"
  "CMakeFiles/spring_util.dir/stats.cc.o.d"
  "CMakeFiles/spring_util.dir/status.cc.o"
  "CMakeFiles/spring_util.dir/status.cc.o.d"
  "CMakeFiles/spring_util.dir/stopwatch.cc.o"
  "CMakeFiles/spring_util.dir/stopwatch.cc.o.d"
  "CMakeFiles/spring_util.dir/string_util.cc.o"
  "CMakeFiles/spring_util.dir/string_util.cc.o.d"
  "libspring_util.a"
  "libspring_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
