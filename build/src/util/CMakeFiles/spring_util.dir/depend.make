# Empty dependencies file for spring_util.
# This may be replaced when dependencies are built.
