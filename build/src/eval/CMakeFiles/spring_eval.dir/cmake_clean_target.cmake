file(REMOVE_RECURSE
  "libspring_eval.a"
)
