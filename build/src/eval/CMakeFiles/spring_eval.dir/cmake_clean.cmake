file(REMOVE_RECURSE
  "CMakeFiles/spring_eval.dir/detection.cc.o"
  "CMakeFiles/spring_eval.dir/detection.cc.o.d"
  "libspring_eval.a"
  "libspring_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
