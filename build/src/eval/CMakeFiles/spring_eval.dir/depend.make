# Empty dependencies file for spring_eval.
# This may be replaced when dependencies are built.
