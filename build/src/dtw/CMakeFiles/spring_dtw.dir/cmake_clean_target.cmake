file(REMOVE_RECURSE
  "libspring_dtw.a"
)
