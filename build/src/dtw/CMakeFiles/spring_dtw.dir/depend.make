# Empty dependencies file for spring_dtw.
# This may be replaced when dependencies are built.
