file(REMOVE_RECURSE
  "CMakeFiles/spring_dtw.dir/coarse.cc.o"
  "CMakeFiles/spring_dtw.dir/coarse.cc.o.d"
  "CMakeFiles/spring_dtw.dir/dtw.cc.o"
  "CMakeFiles/spring_dtw.dir/dtw.cc.o.d"
  "CMakeFiles/spring_dtw.dir/envelope.cc.o"
  "CMakeFiles/spring_dtw.dir/envelope.cc.o.d"
  "CMakeFiles/spring_dtw.dir/ftw.cc.o"
  "CMakeFiles/spring_dtw.dir/ftw.cc.o.d"
  "CMakeFiles/spring_dtw.dir/local_distance.cc.o"
  "CMakeFiles/spring_dtw.dir/local_distance.cc.o.d"
  "CMakeFiles/spring_dtw.dir/lower_bounds.cc.o"
  "CMakeFiles/spring_dtw.dir/lower_bounds.cc.o.d"
  "CMakeFiles/spring_dtw.dir/nn_search.cc.o"
  "CMakeFiles/spring_dtw.dir/nn_search.cc.o.d"
  "libspring_dtw.a"
  "libspring_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
