
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtw/coarse.cc" "src/dtw/CMakeFiles/spring_dtw.dir/coarse.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/coarse.cc.o.d"
  "/root/repo/src/dtw/dtw.cc" "src/dtw/CMakeFiles/spring_dtw.dir/dtw.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/dtw.cc.o.d"
  "/root/repo/src/dtw/envelope.cc" "src/dtw/CMakeFiles/spring_dtw.dir/envelope.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/envelope.cc.o.d"
  "/root/repo/src/dtw/ftw.cc" "src/dtw/CMakeFiles/spring_dtw.dir/ftw.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/ftw.cc.o.d"
  "/root/repo/src/dtw/local_distance.cc" "src/dtw/CMakeFiles/spring_dtw.dir/local_distance.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/local_distance.cc.o.d"
  "/root/repo/src/dtw/lower_bounds.cc" "src/dtw/CMakeFiles/spring_dtw.dir/lower_bounds.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/lower_bounds.cc.o.d"
  "/root/repo/src/dtw/nn_search.cc" "src/dtw/CMakeFiles/spring_dtw.dir/nn_search.cc.o" "gcc" "src/dtw/CMakeFiles/spring_dtw.dir/nn_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/spring_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spring_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
