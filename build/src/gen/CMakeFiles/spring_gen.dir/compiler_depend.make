# Empty compiler generated dependencies file for spring_gen.
# This may be replaced when dependencies are built.
