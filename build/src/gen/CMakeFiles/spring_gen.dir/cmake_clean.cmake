file(REMOVE_RECURSE
  "CMakeFiles/spring_gen.dir/ecg.cc.o"
  "CMakeFiles/spring_gen.dir/ecg.cc.o.d"
  "CMakeFiles/spring_gen.dir/masked_chirp.cc.o"
  "CMakeFiles/spring_gen.dir/masked_chirp.cc.o.d"
  "CMakeFiles/spring_gen.dir/mocap.cc.o"
  "CMakeFiles/spring_gen.dir/mocap.cc.o.d"
  "CMakeFiles/spring_gen.dir/seismic.cc.o"
  "CMakeFiles/spring_gen.dir/seismic.cc.o.d"
  "CMakeFiles/spring_gen.dir/signal.cc.o"
  "CMakeFiles/spring_gen.dir/signal.cc.o.d"
  "CMakeFiles/spring_gen.dir/sunspots.cc.o"
  "CMakeFiles/spring_gen.dir/sunspots.cc.o.d"
  "CMakeFiles/spring_gen.dir/temperature.cc.o"
  "CMakeFiles/spring_gen.dir/temperature.cc.o.d"
  "CMakeFiles/spring_gen.dir/warp.cc.o"
  "CMakeFiles/spring_gen.dir/warp.cc.o.d"
  "libspring_gen.a"
  "libspring_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
