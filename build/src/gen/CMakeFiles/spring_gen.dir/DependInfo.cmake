
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/ecg.cc" "src/gen/CMakeFiles/spring_gen.dir/ecg.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/ecg.cc.o.d"
  "/root/repo/src/gen/masked_chirp.cc" "src/gen/CMakeFiles/spring_gen.dir/masked_chirp.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/masked_chirp.cc.o.d"
  "/root/repo/src/gen/mocap.cc" "src/gen/CMakeFiles/spring_gen.dir/mocap.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/mocap.cc.o.d"
  "/root/repo/src/gen/seismic.cc" "src/gen/CMakeFiles/spring_gen.dir/seismic.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/seismic.cc.o.d"
  "/root/repo/src/gen/signal.cc" "src/gen/CMakeFiles/spring_gen.dir/signal.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/signal.cc.o.d"
  "/root/repo/src/gen/sunspots.cc" "src/gen/CMakeFiles/spring_gen.dir/sunspots.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/sunspots.cc.o.d"
  "/root/repo/src/gen/temperature.cc" "src/gen/CMakeFiles/spring_gen.dir/temperature.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/temperature.cc.o.d"
  "/root/repo/src/gen/warp.cc" "src/gen/CMakeFiles/spring_gen.dir/warp.cc.o" "gcc" "src/gen/CMakeFiles/spring_gen.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/spring_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spring_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
