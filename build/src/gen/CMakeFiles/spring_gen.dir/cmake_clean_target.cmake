file(REMOVE_RECURSE
  "libspring_gen.a"
)
