file(REMOVE_RECURSE
  "CMakeFiles/spring_ts.dir/binary_io.cc.o"
  "CMakeFiles/spring_ts.dir/binary_io.cc.o.d"
  "CMakeFiles/spring_ts.dir/csv.cc.o"
  "CMakeFiles/spring_ts.dir/csv.cc.o.d"
  "CMakeFiles/spring_ts.dir/normalize.cc.o"
  "CMakeFiles/spring_ts.dir/normalize.cc.o.d"
  "CMakeFiles/spring_ts.dir/paa.cc.o"
  "CMakeFiles/spring_ts.dir/paa.cc.o.d"
  "CMakeFiles/spring_ts.dir/repair.cc.o"
  "CMakeFiles/spring_ts.dir/repair.cc.o.d"
  "CMakeFiles/spring_ts.dir/series.cc.o"
  "CMakeFiles/spring_ts.dir/series.cc.o.d"
  "CMakeFiles/spring_ts.dir/vector_series.cc.o"
  "CMakeFiles/spring_ts.dir/vector_series.cc.o.d"
  "libspring_ts.a"
  "libspring_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
