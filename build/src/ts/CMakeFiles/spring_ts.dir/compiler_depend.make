# Empty compiler generated dependencies file for spring_ts.
# This may be replaced when dependencies are built.
