file(REMOVE_RECURSE
  "libspring_ts.a"
)
