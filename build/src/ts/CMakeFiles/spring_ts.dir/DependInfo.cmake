
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/binary_io.cc" "src/ts/CMakeFiles/spring_ts.dir/binary_io.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/binary_io.cc.o.d"
  "/root/repo/src/ts/csv.cc" "src/ts/CMakeFiles/spring_ts.dir/csv.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/csv.cc.o.d"
  "/root/repo/src/ts/normalize.cc" "src/ts/CMakeFiles/spring_ts.dir/normalize.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/normalize.cc.o.d"
  "/root/repo/src/ts/paa.cc" "src/ts/CMakeFiles/spring_ts.dir/paa.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/paa.cc.o.d"
  "/root/repo/src/ts/repair.cc" "src/ts/CMakeFiles/spring_ts.dir/repair.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/repair.cc.o.d"
  "/root/repo/src/ts/series.cc" "src/ts/CMakeFiles/spring_ts.dir/series.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/series.cc.o.d"
  "/root/repo/src/ts/vector_series.cc" "src/ts/CMakeFiles/spring_ts.dir/vector_series.cc.o" "gcc" "src/ts/CMakeFiles/spring_ts.dir/vector_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spring_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
