file(REMOVE_RECURSE
  "CMakeFiles/spring_monitor.dir/engine.cc.o"
  "CMakeFiles/spring_monitor.dir/engine.cc.o.d"
  "CMakeFiles/spring_monitor.dir/replay.cc.o"
  "CMakeFiles/spring_monitor.dir/replay.cc.o.d"
  "CMakeFiles/spring_monitor.dir/sink.cc.o"
  "CMakeFiles/spring_monitor.dir/sink.cc.o.d"
  "CMakeFiles/spring_monitor.dir/stream_source.cc.o"
  "CMakeFiles/spring_monitor.dir/stream_source.cc.o.d"
  "libspring_monitor.a"
  "libspring_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
