file(REMOVE_RECURSE
  "libspring_monitor.a"
)
