# Empty compiler generated dependencies file for spring_monitor.
# This may be replaced when dependencies are built.
