
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/engine.cc" "src/monitor/CMakeFiles/spring_monitor.dir/engine.cc.o" "gcc" "src/monitor/CMakeFiles/spring_monitor.dir/engine.cc.o.d"
  "/root/repo/src/monitor/replay.cc" "src/monitor/CMakeFiles/spring_monitor.dir/replay.cc.o" "gcc" "src/monitor/CMakeFiles/spring_monitor.dir/replay.cc.o.d"
  "/root/repo/src/monitor/sink.cc" "src/monitor/CMakeFiles/spring_monitor.dir/sink.cc.o" "gcc" "src/monitor/CMakeFiles/spring_monitor.dir/sink.cc.o.d"
  "/root/repo/src/monitor/stream_source.cc" "src/monitor/CMakeFiles/spring_monitor.dir/stream_source.cc.o" "gcc" "src/monitor/CMakeFiles/spring_monitor.dir/stream_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spring_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/spring_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spring_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/spring_dtw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
