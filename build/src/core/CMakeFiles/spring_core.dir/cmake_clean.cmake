file(REMOVE_RECURSE
  "CMakeFiles/spring_core.dir/match.cc.o"
  "CMakeFiles/spring_core.dir/match.cc.o.d"
  "CMakeFiles/spring_core.dir/naive.cc.o"
  "CMakeFiles/spring_core.dir/naive.cc.o.d"
  "CMakeFiles/spring_core.dir/spring.cc.o"
  "CMakeFiles/spring_core.dir/spring.cc.o.d"
  "CMakeFiles/spring_core.dir/spring_path.cc.o"
  "CMakeFiles/spring_core.dir/spring_path.cc.o.d"
  "CMakeFiles/spring_core.dir/subsequence_scan.cc.o"
  "CMakeFiles/spring_core.dir/subsequence_scan.cc.o.d"
  "CMakeFiles/spring_core.dir/topk_tracker.cc.o"
  "CMakeFiles/spring_core.dir/topk_tracker.cc.o.d"
  "CMakeFiles/spring_core.dir/vector_spring.cc.o"
  "CMakeFiles/spring_core.dir/vector_spring.cc.o.d"
  "libspring_core.a"
  "libspring_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spring_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
