# Empty dependencies file for spring_core.
# This may be replaced when dependencies are built.
