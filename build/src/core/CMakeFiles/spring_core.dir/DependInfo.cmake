
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/match.cc" "src/core/CMakeFiles/spring_core.dir/match.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/match.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/core/CMakeFiles/spring_core.dir/naive.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/naive.cc.o.d"
  "/root/repo/src/core/spring.cc" "src/core/CMakeFiles/spring_core.dir/spring.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/spring.cc.o.d"
  "/root/repo/src/core/spring_path.cc" "src/core/CMakeFiles/spring_core.dir/spring_path.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/spring_path.cc.o.d"
  "/root/repo/src/core/subsequence_scan.cc" "src/core/CMakeFiles/spring_core.dir/subsequence_scan.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/subsequence_scan.cc.o.d"
  "/root/repo/src/core/topk_tracker.cc" "src/core/CMakeFiles/spring_core.dir/topk_tracker.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/topk_tracker.cc.o.d"
  "/root/repo/src/core/vector_spring.cc" "src/core/CMakeFiles/spring_core.dir/vector_spring.cc.o" "gcc" "src/core/CMakeFiles/spring_core.dir/vector_spring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtw/CMakeFiles/spring_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/spring_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spring_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
