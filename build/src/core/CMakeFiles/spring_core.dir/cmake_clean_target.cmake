file(REMOVE_RECURSE
  "libspring_core.a"
)
