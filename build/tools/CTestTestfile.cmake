# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_datagen "/root/repo/build/tools/springdtw_datagen" "--dataset=chirp" "--length=8000" "--out=/root/repo/build/tools/smoke_chirp")
set_tests_properties(tools_datagen PROPERTIES  FIXTURES_SETUP "chirp_files" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_match "/root/repo/build/tools/springdtw_match" "--stream=/root/repo/build/tools/smoke_chirp_stream.csv" "--query=/root/repo/build/tools/smoke_chirp_query.csv" "--epsilon=100")
set_tests_properties(tools_match PROPERTIES  FIXTURES_REQUIRED "chirp_files" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_match_topk "/root/repo/build/tools/springdtw_match" "--stream=/root/repo/build/tools/smoke_chirp_stream.csv" "--query=/root/repo/build/tools/smoke_chirp_query.csv" "--topk=2")
set_tests_properties(tools_match_topk PROPERTIES  FIXTURES_REQUIRED "chirp_files" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_match_paths "/root/repo/build/tools/springdtw_match" "--stream=/root/repo/build/tools/smoke_chirp_stream.csv" "--query=/root/repo/build/tools/smoke_chirp_query.csv" "--epsilon=100" "--paths")
set_tests_properties(tools_match_paths PROPERTIES  FIXTURES_REQUIRED "chirp_files" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
