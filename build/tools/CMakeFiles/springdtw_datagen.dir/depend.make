# Empty dependencies file for springdtw_datagen.
# This may be replaced when dependencies are built.
