file(REMOVE_RECURSE
  "CMakeFiles/springdtw_datagen.dir/springdtw_datagen.cc.o"
  "CMakeFiles/springdtw_datagen.dir/springdtw_datagen.cc.o.d"
  "springdtw_datagen"
  "springdtw_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/springdtw_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
