# Empty compiler generated dependencies file for springdtw_match.
# This may be replaced when dependencies are built.
