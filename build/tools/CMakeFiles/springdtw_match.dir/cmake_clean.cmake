file(REMOVE_RECURSE
  "CMakeFiles/springdtw_match.dir/springdtw_match.cc.o"
  "CMakeFiles/springdtw_match.dir/springdtw_match.cc.o.d"
  "springdtw_match"
  "springdtw_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/springdtw_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
