# Empty compiler generated dependencies file for seismic_monitoring.
# This may be replaced when dependencies are built.
