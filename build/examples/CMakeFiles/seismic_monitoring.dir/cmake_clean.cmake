file(REMOVE_RECURSE
  "CMakeFiles/seismic_monitoring.dir/seismic_monitoring.cpp.o"
  "CMakeFiles/seismic_monitoring.dir/seismic_monitoring.cpp.o.d"
  "seismic_monitoring"
  "seismic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seismic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
