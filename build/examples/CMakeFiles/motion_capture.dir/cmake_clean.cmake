file(REMOVE_RECURSE
  "CMakeFiles/motion_capture.dir/motion_capture.cpp.o"
  "CMakeFiles/motion_capture.dir/motion_capture.cpp.o.d"
  "motion_capture"
  "motion_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
