# Empty dependencies file for motion_capture.
# This may be replaced when dependencies are built.
