file(REMOVE_RECURSE
  "CMakeFiles/word_spotting.dir/word_spotting.cpp.o"
  "CMakeFiles/word_spotting.dir/word_spotting.cpp.o.d"
  "word_spotting"
  "word_spotting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_spotting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
