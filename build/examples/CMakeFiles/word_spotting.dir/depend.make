# Empty dependencies file for word_spotting.
# This may be replaced when dependencies are built.
