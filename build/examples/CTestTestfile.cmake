# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(examples_quickstart "/root/repo/build/examples/quickstart" "--length=6000")
set_tests_properties(examples_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples_sensor_monitoring "/root/repo/build/examples/sensor_monitoring" "--length=10000")
set_tests_properties(examples_sensor_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples_seismic_monitoring "/root/repo/build/examples/seismic_monitoring" "--length=15000")
set_tests_properties(examples_seismic_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples_motion_capture "/root/repo/build/examples/motion_capture" "--dims=12")
set_tests_properties(examples_motion_capture PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples_word_spotting "/root/repo/build/examples/word_spotting" "--utterances=20")
set_tests_properties(examples_word_spotting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples_ecg_monitoring "/root/repo/build/examples/ecg_monitoring" "--length=15000" "--anomalies=2")
set_tests_properties(examples_ecg_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples_checkpoint_resume "/root/repo/build/examples/checkpoint_resume" "--length=12000")
set_tests_properties(examples_checkpoint_resume PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
