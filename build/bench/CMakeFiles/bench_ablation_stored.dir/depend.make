# Empty dependencies file for bench_ablation_stored.
# This may be replaced when dependencies are built.
