file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stored.dir/bench_ablation_stored.cc.o"
  "CMakeFiles/bench_ablation_stored.dir/bench_ablation_stored.cc.o.d"
  "bench_ablation_stored"
  "bench_ablation_stored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
