file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_path.dir/bench_ablation_path.cc.o"
  "CMakeFiles/bench_ablation_path.dir/bench_ablation_path.cc.o.d"
  "bench_ablation_path"
  "bench_ablation_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
