file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_querylen.dir/bench_ablation_querylen.cc.o"
  "CMakeFiles/bench_ablation_querylen.dir/bench_ablation_querylen.cc.o.d"
  "bench_ablation_querylen"
  "bench_ablation_querylen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_querylen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
