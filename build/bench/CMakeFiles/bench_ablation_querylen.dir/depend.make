# Empty dependencies file for bench_ablation_querylen.
# This may be replaced when dependencies are built.
