file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_walltime.dir/bench_fig7_walltime.cc.o"
  "CMakeFiles/bench_fig7_walltime.dir/bench_fig7_walltime.cc.o.d"
  "bench_fig7_walltime"
  "bench_fig7_walltime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_walltime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
