# Empty compiler generated dependencies file for bench_fig7_walltime.
# This may be replaced when dependencies are built.
