file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mocap.dir/bench_fig9_mocap.cc.o"
  "CMakeFiles/bench_fig9_mocap.dir/bench_fig9_mocap.cc.o.d"
  "bench_fig9_mocap"
  "bench_fig9_mocap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mocap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
