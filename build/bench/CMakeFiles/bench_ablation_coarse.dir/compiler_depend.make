# Empty compiler generated dependencies file for bench_ablation_coarse.
# This may be replaced when dependencies are built.
