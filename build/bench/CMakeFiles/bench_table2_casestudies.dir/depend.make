# Empty dependencies file for bench_table2_casestudies.
# This may be replaced when dependencies are built.
