file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_casestudies.dir/bench_table2_casestudies.cc.o"
  "CMakeFiles/bench_table2_casestudies.dir/bench_table2_casestudies.cc.o.d"
  "bench_table2_casestudies"
  "bench_table2_casestudies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_casestudies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
