file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_outputdelay.dir/bench_ablation_outputdelay.cc.o"
  "CMakeFiles/bench_ablation_outputdelay.dir/bench_ablation_outputdelay.cc.o.d"
  "bench_ablation_outputdelay"
  "bench_ablation_outputdelay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_outputdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
