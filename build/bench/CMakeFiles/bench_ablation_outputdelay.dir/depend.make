# Empty dependencies file for bench_ablation_outputdelay.
# This may be replaced when dependencies are built.
