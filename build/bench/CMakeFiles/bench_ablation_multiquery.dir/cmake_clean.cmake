file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiquery.dir/bench_ablation_multiquery.cc.o"
  "CMakeFiles/bench_ablation_multiquery.dir/bench_ablation_multiquery.cc.o.d"
  "bench_ablation_multiquery"
  "bench_ablation_multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
