# Empty dependencies file for core_vector_spring_test.
# This may be replaced when dependencies are built.
