file(REMOVE_RECURSE
  "CMakeFiles/core_vector_spring_test.dir/core_vector_spring_test.cc.o"
  "CMakeFiles/core_vector_spring_test.dir/core_vector_spring_test.cc.o.d"
  "core_vector_spring_test"
  "core_vector_spring_test.pdb"
  "core_vector_spring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vector_spring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
