file(REMOVE_RECURSE
  "CMakeFiles/util_codec_test.dir/util_codec_test.cc.o"
  "CMakeFiles/util_codec_test.dir/util_codec_test.cc.o.d"
  "util_codec_test"
  "util_codec_test.pdb"
  "util_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
