file(REMOVE_RECURSE
  "CMakeFiles/ts_series_test.dir/ts_series_test.cc.o"
  "CMakeFiles/ts_series_test.dir/ts_series_test.cc.o.d"
  "ts_series_test"
  "ts_series_test.pdb"
  "ts_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
