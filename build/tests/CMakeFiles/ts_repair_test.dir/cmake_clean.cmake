file(REMOVE_RECURSE
  "CMakeFiles/ts_repair_test.dir/ts_repair_test.cc.o"
  "CMakeFiles/ts_repair_test.dir/ts_repair_test.cc.o.d"
  "ts_repair_test"
  "ts_repair_test.pdb"
  "ts_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
