# Empty dependencies file for ts_repair_test.
# This may be replaced when dependencies are built.
