# Empty dependencies file for core_spring_edge_test.
# This may be replaced when dependencies are built.
