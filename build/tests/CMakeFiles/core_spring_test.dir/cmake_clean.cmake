file(REMOVE_RECURSE
  "CMakeFiles/core_spring_test.dir/core_spring_test.cc.o"
  "CMakeFiles/core_spring_test.dir/core_spring_test.cc.o.d"
  "core_spring_test"
  "core_spring_test.pdb"
  "core_spring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_spring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
