file(REMOVE_RECURSE
  "CMakeFiles/dtw_dtw_test.dir/dtw_dtw_test.cc.o"
  "CMakeFiles/dtw_dtw_test.dir/dtw_dtw_test.cc.o.d"
  "dtw_dtw_test"
  "dtw_dtw_test.pdb"
  "dtw_dtw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_dtw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
