file(REMOVE_RECURSE
  "CMakeFiles/dtw_lower_bounds_test.dir/dtw_lower_bounds_test.cc.o"
  "CMakeFiles/dtw_lower_bounds_test.dir/dtw_lower_bounds_test.cc.o.d"
  "dtw_lower_bounds_test"
  "dtw_lower_bounds_test.pdb"
  "dtw_lower_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_lower_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
