# Empty dependencies file for dtw_lower_bounds_test.
# This may be replaced when dependencies are built.
