# Empty dependencies file for ts_csv_test.
# This may be replaced when dependencies are built.
