file(REMOVE_RECURSE
  "CMakeFiles/ts_csv_test.dir/ts_csv_test.cc.o"
  "CMakeFiles/ts_csv_test.dir/ts_csv_test.cc.o.d"
  "ts_csv_test"
  "ts_csv_test.pdb"
  "ts_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
