file(REMOVE_RECURSE
  "CMakeFiles/dtw_envelope_test.dir/dtw_envelope_test.cc.o"
  "CMakeFiles/dtw_envelope_test.dir/dtw_envelope_test.cc.o.d"
  "dtw_envelope_test"
  "dtw_envelope_test.pdb"
  "dtw_envelope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_envelope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
