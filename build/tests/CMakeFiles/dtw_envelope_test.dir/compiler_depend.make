# Empty compiler generated dependencies file for dtw_envelope_test.
# This may be replaced when dependencies are built.
