# Empty dependencies file for dtw_nn_search_test.
# This may be replaced when dependencies are built.
