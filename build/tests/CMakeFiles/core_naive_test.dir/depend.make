# Empty dependencies file for core_naive_test.
# This may be replaced when dependencies are built.
