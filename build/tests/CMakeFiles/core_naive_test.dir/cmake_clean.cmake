file(REMOVE_RECURSE
  "CMakeFiles/core_naive_test.dir/core_naive_test.cc.o"
  "CMakeFiles/core_naive_test.dir/core_naive_test.cc.o.d"
  "core_naive_test"
  "core_naive_test.pdb"
  "core_naive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
