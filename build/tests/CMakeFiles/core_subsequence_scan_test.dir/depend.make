# Empty dependencies file for core_subsequence_scan_test.
# This may be replaced when dependencies are built.
