file(REMOVE_RECURSE
  "CMakeFiles/core_subsequence_scan_test.dir/core_subsequence_scan_test.cc.o"
  "CMakeFiles/core_subsequence_scan_test.dir/core_subsequence_scan_test.cc.o.d"
  "core_subsequence_scan_test"
  "core_subsequence_scan_test.pdb"
  "core_subsequence_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_subsequence_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
