# Empty dependencies file for core_spring_path_test.
# This may be replaced when dependencies are built.
