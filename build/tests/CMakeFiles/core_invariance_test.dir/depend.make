# Empty dependencies file for core_invariance_test.
# This may be replaced when dependencies are built.
