file(REMOVE_RECURSE
  "CMakeFiles/core_invariance_test.dir/core_invariance_test.cc.o"
  "CMakeFiles/core_invariance_test.dir/core_invariance_test.cc.o.d"
  "core_invariance_test"
  "core_invariance_test.pdb"
  "core_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
