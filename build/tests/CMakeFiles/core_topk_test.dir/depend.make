# Empty dependencies file for core_topk_test.
# This may be replaced when dependencies are built.
