# Empty dependencies file for gen_ecg_test.
# This may be replaced when dependencies are built.
