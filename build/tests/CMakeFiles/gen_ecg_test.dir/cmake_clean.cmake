file(REMOVE_RECURSE
  "CMakeFiles/gen_ecg_test.dir/gen_ecg_test.cc.o"
  "CMakeFiles/gen_ecg_test.dir/gen_ecg_test.cc.o.d"
  "gen_ecg_test"
  "gen_ecg_test.pdb"
  "gen_ecg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_ecg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
