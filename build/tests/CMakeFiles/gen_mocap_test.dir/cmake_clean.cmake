file(REMOVE_RECURSE
  "CMakeFiles/gen_mocap_test.dir/gen_mocap_test.cc.o"
  "CMakeFiles/gen_mocap_test.dir/gen_mocap_test.cc.o.d"
  "gen_mocap_test"
  "gen_mocap_test.pdb"
  "gen_mocap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_mocap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
