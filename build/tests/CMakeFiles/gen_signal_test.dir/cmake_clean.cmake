file(REMOVE_RECURSE
  "CMakeFiles/gen_signal_test.dir/gen_signal_test.cc.o"
  "CMakeFiles/gen_signal_test.dir/gen_signal_test.cc.o.d"
  "gen_signal_test"
  "gen_signal_test.pdb"
  "gen_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
