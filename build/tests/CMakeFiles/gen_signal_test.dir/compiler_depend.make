# Empty compiler generated dependencies file for gen_signal_test.
# This may be replaced when dependencies are built.
