file(REMOVE_RECURSE
  "CMakeFiles/monitor_checkpoint_test.dir/monitor_checkpoint_test.cc.o"
  "CMakeFiles/monitor_checkpoint_test.dir/monitor_checkpoint_test.cc.o.d"
  "monitor_checkpoint_test"
  "monitor_checkpoint_test.pdb"
  "monitor_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
