# Empty compiler generated dependencies file for monitor_source_sink_test.
# This may be replaced when dependencies are built.
