file(REMOVE_RECURSE
  "CMakeFiles/monitor_source_sink_test.dir/monitor_source_sink_test.cc.o"
  "CMakeFiles/monitor_source_sink_test.dir/monitor_source_sink_test.cc.o.d"
  "monitor_source_sink_test"
  "monitor_source_sink_test.pdb"
  "monitor_source_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_source_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
