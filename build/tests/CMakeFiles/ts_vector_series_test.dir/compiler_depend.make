# Empty compiler generated dependencies file for ts_vector_series_test.
# This may be replaced when dependencies are built.
