file(REMOVE_RECURSE
  "CMakeFiles/ts_paa_test.dir/ts_paa_test.cc.o"
  "CMakeFiles/ts_paa_test.dir/ts_paa_test.cc.o.d"
  "ts_paa_test"
  "ts_paa_test.pdb"
  "ts_paa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_paa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
