# Empty dependencies file for ts_paa_test.
# This may be replaced when dependencies are built.
