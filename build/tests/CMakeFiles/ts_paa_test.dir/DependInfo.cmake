
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ts_paa_test.cc" "tests/CMakeFiles/ts_paa_test.dir/ts_paa_test.cc.o" "gcc" "tests/CMakeFiles/ts_paa_test.dir/ts_paa_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/spring_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/spring_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spring_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/spring_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/spring_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/spring_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spring_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
