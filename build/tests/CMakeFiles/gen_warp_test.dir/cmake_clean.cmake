file(REMOVE_RECURSE
  "CMakeFiles/gen_warp_test.dir/gen_warp_test.cc.o"
  "CMakeFiles/gen_warp_test.dir/gen_warp_test.cc.o.d"
  "gen_warp_test"
  "gen_warp_test.pdb"
  "gen_warp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_warp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
