# Empty compiler generated dependencies file for gen_warp_test.
# This may be replaced when dependencies are built.
