file(REMOVE_RECURSE
  "CMakeFiles/monitor_engine_test.dir/monitor_engine_test.cc.o"
  "CMakeFiles/monitor_engine_test.dir/monitor_engine_test.cc.o.d"
  "monitor_engine_test"
  "monitor_engine_test.pdb"
  "monitor_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
