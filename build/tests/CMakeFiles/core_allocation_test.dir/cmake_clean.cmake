file(REMOVE_RECURSE
  "CMakeFiles/core_allocation_test.dir/core_allocation_test.cc.o"
  "CMakeFiles/core_allocation_test.dir/core_allocation_test.cc.o.d"
  "core_allocation_test"
  "core_allocation_test.pdb"
  "core_allocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
