file(REMOVE_RECURSE
  "CMakeFiles/util_memory_test.dir/util_memory_test.cc.o"
  "CMakeFiles/util_memory_test.dir/util_memory_test.cc.o.d"
  "util_memory_test"
  "util_memory_test.pdb"
  "util_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
