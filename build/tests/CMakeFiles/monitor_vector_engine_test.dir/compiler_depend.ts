# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for monitor_vector_engine_test.
