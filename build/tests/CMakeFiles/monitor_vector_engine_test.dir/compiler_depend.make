# Empty compiler generated dependencies file for monitor_vector_engine_test.
# This may be replaced when dependencies are built.
