# Empty dependencies file for core_spring_property_test.
# This may be replaced when dependencies are built.
