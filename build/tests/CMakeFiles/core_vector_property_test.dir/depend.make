# Empty dependencies file for core_vector_property_test.
# This may be replaced when dependencies are built.
