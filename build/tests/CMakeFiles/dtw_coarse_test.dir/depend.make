# Empty dependencies file for dtw_coarse_test.
# This may be replaced when dependencies are built.
