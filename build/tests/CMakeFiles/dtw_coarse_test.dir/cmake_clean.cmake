file(REMOVE_RECURSE
  "CMakeFiles/dtw_coarse_test.dir/dtw_coarse_test.cc.o"
  "CMakeFiles/dtw_coarse_test.dir/dtw_coarse_test.cc.o.d"
  "dtw_coarse_test"
  "dtw_coarse_test.pdb"
  "dtw_coarse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_coarse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
