file(REMOVE_RECURSE
  "CMakeFiles/dtw_ftw_test.dir/dtw_ftw_test.cc.o"
  "CMakeFiles/dtw_ftw_test.dir/dtw_ftw_test.cc.o.d"
  "dtw_ftw_test"
  "dtw_ftw_test.pdb"
  "dtw_ftw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_ftw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
