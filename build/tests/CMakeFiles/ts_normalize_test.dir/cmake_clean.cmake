file(REMOVE_RECURSE
  "CMakeFiles/ts_normalize_test.dir/ts_normalize_test.cc.o"
  "CMakeFiles/ts_normalize_test.dir/ts_normalize_test.cc.o.d"
  "ts_normalize_test"
  "ts_normalize_test.pdb"
  "ts_normalize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
