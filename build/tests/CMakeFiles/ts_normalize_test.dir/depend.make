# Empty dependencies file for ts_normalize_test.
# This may be replaced when dependencies are built.
