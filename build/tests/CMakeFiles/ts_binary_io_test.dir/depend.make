# Empty dependencies file for ts_binary_io_test.
# This may be replaced when dependencies are built.
