file(REMOVE_RECURSE
  "CMakeFiles/ts_binary_io_test.dir/ts_binary_io_test.cc.o"
  "CMakeFiles/ts_binary_io_test.dir/ts_binary_io_test.cc.o.d"
  "ts_binary_io_test"
  "ts_binary_io_test.pdb"
  "ts_binary_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_binary_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
