file(REMOVE_RECURSE
  "CMakeFiles/monitor_replay_test.dir/monitor_replay_test.cc.o"
  "CMakeFiles/monitor_replay_test.dir/monitor_replay_test.cc.o.d"
  "monitor_replay_test"
  "monitor_replay_test.pdb"
  "monitor_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
