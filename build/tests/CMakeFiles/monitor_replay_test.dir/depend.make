# Empty dependencies file for monitor_replay_test.
# This may be replaced when dependencies are built.
