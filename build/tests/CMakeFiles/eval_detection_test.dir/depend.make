# Empty dependencies file for eval_detection_test.
# This may be replaced when dependencies are built.
