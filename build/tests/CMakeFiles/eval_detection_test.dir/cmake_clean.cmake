file(REMOVE_RECURSE
  "CMakeFiles/eval_detection_test.dir/eval_detection_test.cc.o"
  "CMakeFiles/eval_detection_test.dir/eval_detection_test.cc.o.d"
  "eval_detection_test"
  "eval_detection_test.pdb"
  "eval_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
