# Empty dependencies file for core_topk_tracker_test.
# This may be replaced when dependencies are built.
