add_test([=[SoakTest.MultiStreamEngineStaysHealthyOverLongRun]=]  /root/repo/build/tests/integration_soak_test [==[--gtest_filter=SoakTest.MultiStreamEngineStaysHealthyOverLongRun]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SoakTest.MultiStreamEngineStaysHealthyOverLongRun]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_soak_test_TESTS SoakTest.MultiStreamEngineStaysHealthyOverLongRun)
