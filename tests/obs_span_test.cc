// SpanRing: the bounded end-to-end tick-span buffer behind /spanz —
// disabled-by-default, wrap-around overwrite with drop accounting, and the
// JSON renderings shared with the introspection server.
#include "obs/span.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace springdtw {
namespace obs {
namespace {

TickSpan MakeSpan(uint64_t seq) {
  TickSpan span;
  span.seq = seq;
  span.stream_id = 3;
  span.server_recv_nanos = 100 + seq;
  span.router_enqueue_nanos = 200 + seq;
  span.worker_pop_nanos = 300 + seq;
  span.worker_done_nanos = 400 + seq;
  span.delivered_nanos = 500 + seq;
  span.matches = static_cast<int64_t>(seq % 2);
  return span;
}

TEST(SpanRingTest, DefaultConstructedIsDisabled) {
  SpanRing ring;
  EXPECT_FALSE(ring.enabled());
  EXPECT_EQ(ring.capacity(), 0);
  // Recording into a disabled ring is a silent no-op, not a drop.
  ring.Record(MakeSpan(1));
  EXPECT_EQ(ring.size(), 0);
  EXPECT_EQ(ring.total_recorded(), 0);
  EXPECT_EQ(ring.dropped(), 0);
  EXPECT_TRUE(ring.Spans().empty());
}

TEST(SpanRingTest, FillsWithoutDropsBelowCapacity) {
  SpanRing ring(4);
  EXPECT_TRUE(ring.enabled());
  for (uint64_t s = 0; s < 3; ++s) ring.Record(MakeSpan(s));
  EXPECT_EQ(ring.size(), 3);
  EXPECT_EQ(ring.total_recorded(), 3);
  EXPECT_EQ(ring.dropped(), 0);
  const std::vector<TickSpan> spans = ring.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_EQ(spans[2].seq, 2u);
}

TEST(SpanRingTest, WrapAroundOverwritesOldestAndCountsDrops) {
  SpanRing ring(4);
  for (uint64_t s = 0; s < 10; ++s) ring.Record(MakeSpan(s));
  EXPECT_EQ(ring.size(), 4);
  EXPECT_EQ(ring.total_recorded(), 10);
  EXPECT_EQ(ring.dropped(), 6);
  const std::vector<TickSpan> spans = ring.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: the survivors are the last four recorded.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 6 + i);
  }
}

TEST(SpanRingTest, ClearResetsEverything) {
  SpanRing ring(2);
  ring.Record(MakeSpan(0));
  ring.Record(MakeSpan(1));
  ring.Record(MakeSpan(2));
  ring.Clear();
  EXPECT_TRUE(ring.enabled()) << "Clear drops contents, not capacity";
  EXPECT_EQ(ring.size(), 0);
  EXPECT_EQ(ring.total_recorded(), 0);
  EXPECT_EQ(ring.dropped(), 0);
  ring.Record(MakeSpan(9));
  ASSERT_EQ(ring.Spans().size(), 1u);
  EXPECT_EQ(ring.Spans()[0].seq, 9u);
}

TEST(SpanRingTest, TickSpanJsonCarriesEveryStage) {
  TickSpan span = MakeSpan(42);
  span.client_send_nanos = 50;
  span.subscriber_write_nanos = 600;
  const std::string json = TickSpanJson(span);
  EXPECT_NE(json.find("\"seq\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stream\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"client_send\":50"), std::string::npos) << json;
  EXPECT_NE(json.find("\"server_recv\":142"), std::string::npos) << json;
  EXPECT_NE(json.find("\"router_enqueue\":242"), std::string::npos) << json;
  EXPECT_NE(json.find("\"worker_pop\":342"), std::string::npos) << json;
  EXPECT_NE(json.find("\"worker_done\":442"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delivered\":542"), std::string::npos) << json;
  EXPECT_NE(json.find("\"subscriber_write\":600"), std::string::npos) << json;
  EXPECT_NE(json.find("\"matches\":0"), std::string::npos) << json;
}

TEST(SpanRingTest, DumpJsonlOneLinePerSpanOldestFirst) {
  SpanRing ring(3);
  for (uint64_t s = 0; s < 5; ++s) ring.Record(MakeSpan(s));
  std::ostringstream out;
  ring.DumpJsonl(out);
  const std::string text = out.str();
  int lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3);
  EXPECT_LT(text.find("\"seq\":2"), text.find("\"seq\":3"));
  EXPECT_LT(text.find("\"seq\":3"), text.find("\"seq\":4"));
}

TEST(SpanRingTest, RenderSpanzJsonShape) {
  SpanzReport report;
  report.spans.push_back(MakeSpan(7));
  report.dropped = 5;
  const std::string json = RenderSpanzJson(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"dropped\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos) << json;

  // Empty report still renders a complete document.
  const std::string empty = RenderSpanzJson(SpanzReport{});
  EXPECT_NE(empty.find("\"spans\":[]"), std::string::npos) << empty;
  EXPECT_NE(empty.find("\"dropped\":0"), std::string::npos) << empty;
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
