#include <gtest/gtest.h>

#include "gen/masked_chirp.h"
#include "gen/seismic.h"
#include "gen/sunspots.h"
#include "gen/temperature.h"
#include "ts/series.h"

namespace springdtw {
namespace gen {
namespace {

TEST(MaskedChirpTest, ShapeAndDeterminism) {
  MaskedChirpOptions options;
  options.length = 5000;
  options.num_episodes = 3;
  options.min_episode_length = 500;
  options.max_episode_length = 900;
  const MaskedChirpData a = GenerateMaskedChirp(options, 512);
  EXPECT_EQ(a.stream.size(), 5000);
  EXPECT_EQ(a.query.size(), 512);
  EXPECT_EQ(a.events.size(), 3u);
  const MaskedChirpData b = GenerateMaskedChirp(options, 512);
  EXPECT_TRUE(a.stream == b.stream);
  EXPECT_TRUE(a.query == b.query);
}

TEST(MaskedChirpTest, EpisodesAreDisjointAndInBounds) {
  MaskedChirpOptions options;
  options.length = 20000;
  const MaskedChirpData data = GenerateMaskedChirp(options);
  for (size_t i = 0; i < data.events.size(); ++i) {
    const PlantedEvent& e = data.events[i];
    EXPECT_GE(e.start, 0);
    EXPECT_LT(e.end(), options.length);
    EXPECT_GE(e.length, options.min_episode_length);
    for (size_t j = i + 1; j < data.events.size(); ++j) {
      EXPECT_FALSE(IntervalsOverlap(e.start, e.end(), data.events[j].start,
                                    data.events[j].end()));
    }
  }
}

TEST(MaskedChirpTest, EpisodesCarrySignalAboveNoiseFloor) {
  MaskedChirpOptions options;
  options.length = 20000;
  const MaskedChirpData data = GenerateMaskedChirp(options);
  for (const PlantedEvent& e : data.events) {
    const ts::Series episode = data.stream.Slice(e.start, e.length);
    // The enveloped sine has stddev well above the noise sigma.
    EXPECT_GT(episode.Stddev(), 4.0 * options.noise_sigma);
  }
  // A gap between episodes is mostly noise.
  const ts::Series gap = data.stream.Slice(
      data.events[0].end() + 100,
      data.events[1].start - data.events[0].end() - 200);
  EXPECT_LT(gap.Stddev(), 3.0 * options.noise_sigma);
}

TEST(MaskedChirpTest, SeedsChangeData) {
  MaskedChirpOptions a;
  a.length = 4000;
  MaskedChirpOptions b = a;
  b.seed = 999;
  EXPECT_FALSE(GenerateMaskedChirp(a).stream ==
               GenerateMaskedChirp(b).stream);
}

TEST(TemperatureTest, ShapeAndRange) {
  TemperatureOptions options;
  options.length = 20000;
  const TemperatureData data = GenerateTemperature(options);
  EXPECT_EQ(data.stream.size(), 20000);
  EXPECT_EQ(data.events.size(), static_cast<size_t>(options.num_episodes));
  // Values stay within a plausible Celsius window (paper: 20 to 32).
  EXPECT_GT(data.stream.Min(), 10.0);
  EXPECT_LT(data.stream.Max(), 40.0);
}

TEST(TemperatureTest, HasManyMissingValuesInBursts) {
  TemperatureOptions options;
  options.length = 30000;
  const TemperatureData data = GenerateTemperature(options);
  const int64_t missing = data.stream.CountMissing();
  const double fraction =
      static_cast<double>(missing) / static_cast<double>(data.stream.size());
  EXPECT_GT(fraction, 0.005);
  EXPECT_LT(fraction, 0.08);
  // The query must be clean.
  EXPECT_EQ(data.query.CountMissing(), 0);
}

TEST(TemperatureTest, EpisodesAreWarmerThanBaseline) {
  TemperatureOptions options;
  options.length = 30000;
  const TemperatureData data = GenerateTemperature(options);
  for (const PlantedEvent& e : data.events) {
    const ts::Series episode = data.stream.Slice(e.start, e.length);
    // The warm-up ramps from the local baseline (the Hann bump is ~0 at the
    // episode edge) to a peak several degrees hotter, regardless of where
    // the slow weather drift happens to sit.
    const ts::Series edge = data.stream.Slice(e.start, 200);
    EXPECT_GT(episode.Max(), edge.Mean() + 3.5);
  }
}

TEST(SeismicTest, ShapeAndBurstiness) {
  SeismicOptions options;
  options.length = 30000;
  options.event_length = 3000;
  const SeismicData data = GenerateSeismic(options);
  EXPECT_EQ(data.stream.size(), 30000);
  ASSERT_EQ(data.events.size(), 1u);
  const PlantedEvent& e = data.events[0];
  const ts::Series event = data.stream.Slice(e.start, e.length);
  // The spike train towers over the background.
  EXPECT_GT(event.Max(), 5.0 * 3.0 * options.background_sigma);
  EXPECT_GT(event.Max(), 0.5 * options.peak_amplitude);
}

TEST(SeismicTest, QueryContainsSameNumberOfSpikes) {
  SeismicOptions options;
  const SeismicData data = GenerateSeismic(options);
  EXPECT_EQ(data.query.size(), options.event_length);
  // Query peak is the nominal first-spike amplitude (within noise).
  EXPECT_GT(data.query.Max(), 0.7 * options.peak_amplitude);
}

TEST(SeismicTest, Determinism) {
  SeismicOptions options;
  options.length = 10000;
  options.event_length = 1500;
  EXPECT_TRUE(GenerateSeismic(options).stream ==
              GenerateSeismic(options).stream);
}

TEST(SunspotsTest, ShapeAndNonNegativity) {
  SunspotOptions options;
  options.length = 12000;
  const SunspotData data = GenerateSunspots(options);
  EXPECT_EQ(data.stream.size(), 12000);
  EXPECT_GE(data.stream.Min(), 0.0);
  EXPECT_GE(data.query.Min(), 0.0);
  EXPECT_GT(data.events.size(), 1u);
}

TEST(SunspotsTest, CyclesVaryInLength) {
  SunspotOptions options;
  options.length = 15000;
  const SunspotData data = GenerateSunspots(options);
  // At least two active phases with different lengths (varying periodicity).
  ASSERT_GE(data.events.size(), 2u);
  bool lengths_differ = false;
  for (size_t i = 1; i < data.events.size(); ++i) {
    if (data.events[i].length != data.events[0].length) {
      lengths_differ = true;
    }
  }
  EXPECT_TRUE(lengths_differ);
}

TEST(SunspotsTest, ActivePhasesAreBursty) {
  SunspotOptions options;
  options.length = 15000;
  const SunspotData data = GenerateSunspots(options);
  for (const PlantedEvent& e : data.events) {
    const ts::Series active = data.stream.Slice(e.start, e.length);
    EXPECT_GT(active.Max(), options.min_peak * 0.5);
  }
}

}  // namespace
}  // namespace gen
}  // namespace springdtw
