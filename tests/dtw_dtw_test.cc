#include "dtw/dtw.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace springdtw {
namespace dtw {
namespace {

std::vector<double> RandomSeq(util::Rng& rng, int64_t n) {
  std::vector<double> out(static_cast<size_t>(n));
  for (double& x : out) x = rng.Uniform(-1.0, 1.0);
  return out;
}

TEST(DtwDistanceTest, IdenticalSequencesHaveZeroDistance) {
  const std::vector<double> x{1.0, 2.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, x), 0.0);
}

TEST(DtwDistanceTest, SingleElementPair) {
  EXPECT_DOUBLE_EQ(DtwDistance(std::vector<double>{3.0},
                               std::vector<double>{5.0}),
                   4.0);  // Squared difference.
}

TEST(DtwDistanceTest, KnownSmallExample) {
  // X = (1, 2), Y = (1, 2, 2): the warp repeats X's 2 -> distance 0.
  EXPECT_DOUBLE_EQ(DtwDistance(std::vector<double>{1.0, 2.0},
                               std::vector<double>{1.0, 2.0, 2.0}),
                   0.0);
}

TEST(DtwDistanceTest, HandComputedMatrix) {
  // X = (0, 1), Y = (2, 3) with squared distance.
  // f(1,1)=4; f(1,2)=4+9=13; f(2,1)=4+1=5; f(2,2)=min(13,5,4)+4=8.
  EXPECT_DOUBLE_EQ(DtwDistance(std::vector<double>{0.0, 1.0},
                               std::vector<double>{2.0, 3.0}),
                   8.0);
}

TEST(DtwDistanceTest, AbsoluteDistanceOption) {
  DtwOptions options;
  options.local_distance = LocalDistance::kAbsolute;
  // Same matrix with |.|: f(1,1)=2, f(2,2)=min(5,3,2)+2=4.
  EXPECT_DOUBLE_EQ(DtwDistance(std::vector<double>{0.0, 1.0},
                               std::vector<double>{2.0, 3.0}, options),
                   4.0);
}

TEST(DtwDistanceTest, SymmetricForEqualLengths) {
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> x = RandomSeq(rng, 12);
    const std::vector<double> y = RandomSeq(rng, 12);
    EXPECT_DOUBLE_EQ(DtwDistance(x, y), DtwDistance(y, x));
  }
}

TEST(DtwDistanceTest, TimeStretchInvariance) {
  // DTW of a pattern vs its step-doubled version is zero.
  const std::vector<double> x{0.0, 1.0, 4.0, 2.0};
  const std::vector<double> stretched{0.0, 0.0, 1.0, 1.0, 4.0, 4.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, stretched), 0.0);
}

TEST(DtwDistanceTest, UpperBoundedByEuclideanForEqualLengths) {
  util::Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> x = RandomSeq(rng, 16);
    const std::vector<double> y = RandomSeq(rng, 16);
    double euclidean = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      euclidean += (x[i] - y[i]) * (x[i] - y[i]);
    }
    EXPECT_LE(DtwDistance(x, y), euclidean + 1e-12);
  }
}

TEST(DtwDistanceTest, BandEqualsUnconstrainedWhenWide) {
  util::Rng rng(23);
  const std::vector<double> x = RandomSeq(rng, 20);
  const std::vector<double> y = RandomSeq(rng, 15);
  DtwOptions banded;
  banded.constraint = GlobalConstraint::kSakoeChiba;
  banded.band_radius = 100;  // Wider than the matrix.
  EXPECT_DOUBLE_EQ(DtwDistance(x, y, banded), DtwDistance(x, y));
}

TEST(DtwDistanceTest, NarrowBandIsLowerBoundedByUnconstrained) {
  util::Rng rng(24);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<double> x = RandomSeq(rng, 24);
    const std::vector<double> y = RandomSeq(rng, 24);
    DtwOptions banded;
    banded.constraint = GlobalConstraint::kSakoeChiba;
    banded.band_radius = 3;
    EXPECT_GE(DtwDistance(x, y, banded), DtwDistance(x, y) - 1e-12);
  }
}

TEST(DtwDistanceTest, ZeroBandIsEuclideanForEqualLengths) {
  util::Rng rng(25);
  const std::vector<double> x = RandomSeq(rng, 10);
  const std::vector<double> y = RandomSeq(rng, 10);
  DtwOptions banded;
  banded.constraint = GlobalConstraint::kSakoeChiba;
  banded.band_radius = 0;
  double euclidean = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    euclidean += (x[i] - y[i]) * (x[i] - y[i]);
  }
  EXPECT_NEAR(DtwDistance(x, y, banded), euclidean, 1e-9);
}

TEST(DtwDistanceTest, ItakuraInfeasibleForExtremeLengthRatio) {
  // 3:1 ratio exceeds the slope-2 limit, so no path exists.
  DtwOptions options;
  options.constraint = GlobalConstraint::kItakura;
  const double d = DtwDistance(std::vector<double>(30, 0.0),
                               std::vector<double>(5, 0.0), options);
  EXPECT_TRUE(std::isinf(d));
}

TEST(DtwDistanceTest, ItakuraMatchesUnconstrainedOnDiagonalFriendlyData) {
  util::Rng rng(26);
  const std::vector<double> x = RandomSeq(rng, 16);
  DtwOptions options;
  options.constraint = GlobalConstraint::kItakura;
  // Same sequence: the diagonal path is inside the parallelogram.
  EXPECT_DOUBLE_EQ(DtwDistance(x, x, options), 0.0);
  EXPECT_GE(DtwDistance(x, RandomSeq(rng, 16), options), 0.0);
}

TEST(DtwAlignTest, DistanceMatchesDtwDistance) {
  util::Rng rng(27);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> x = RandomSeq(rng, 14);
    const std::vector<double> y = RandomSeq(rng, 9);
    const auto alignment = DtwAlign(x, y);
    ASSERT_TRUE(alignment.ok());
    EXPECT_NEAR(alignment->distance, DtwDistance(x, y), 1e-9);
  }
}

TEST(DtwAlignTest, PathIsValidWarpingPath) {
  util::Rng rng(28);
  const std::vector<double> x = RandomSeq(rng, 12);
  const std::vector<double> y = RandomSeq(rng, 7);
  const auto alignment = DtwAlign(x, y);
  ASSERT_TRUE(alignment.ok());
  const auto& path = alignment->path;
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), PathStep(0, 0));
  EXPECT_EQ(path.back(), PathStep(11, 6));
  for (size_t k = 1; k < path.size(); ++k) {
    const int64_t dt = path[k].first - path[k - 1].first;
    const int64_t di = path[k].second - path[k - 1].second;
    EXPECT_TRUE((dt == 0 || dt == 1) && (di == 0 || di == 1));
    EXPECT_TRUE(dt + di >= 1);  // The path always advances.
  }
}

TEST(DtwAlignTest, PathCostsSumToDistance) {
  util::Rng rng(29);
  const std::vector<double> x = RandomSeq(rng, 10);
  const std::vector<double> y = RandomSeq(rng, 10);
  const auto alignment = DtwAlign(x, y);
  ASSERT_TRUE(alignment.ok());
  double total = 0.0;
  for (const auto& [t, i] : alignment->path) {
    const double d = x[static_cast<size_t>(t)] - y[static_cast<size_t>(i)];
    total += d * d;
  }
  EXPECT_NEAR(total, alignment->distance, 1e-9);
}

TEST(DtwAlignTest, EmptyInputIsError) {
  EXPECT_FALSE(DtwAlign(std::vector<double>{}, std::vector<double>{1.0}).ok());
}

TEST(DtwAlignTest, InfeasibleConstraintIsError) {
  DtwOptions options;
  options.constraint = GlobalConstraint::kItakura;
  EXPECT_FALSE(DtwAlign(std::vector<double>(30, 0.0),
                        std::vector<double>(5, 0.0), options)
                   .ok());
}

TEST(DtwMultivariateTest, ReducesToScalarForOneDim) {
  util::Rng rng(30);
  const std::vector<double> x = RandomSeq(rng, 15);
  const std::vector<double> y = RandomSeq(rng, 11);
  ts::VectorSeries vx(1);
  for (double v : x) vx.AppendRow(std::vector<double>{v});
  ts::VectorSeries vy(1);
  for (double v : y) vy.AppendRow(std::vector<double>{v});
  EXPECT_NEAR(DtwDistanceMultivariate(vx, vy), DtwDistance(x, y), 1e-9);
}

TEST(DtwMultivariateTest, IdenticalZero) {
  ts::VectorSeries v(3);
  util::Rng rng(31);
  for (int t = 0; t < 10; ++t) {
    v.AppendRow(std::vector<double>{rng.NextDouble(), rng.NextDouble(),
                                    rng.NextDouble()});
  }
  EXPECT_DOUBLE_EQ(DtwDistanceMultivariate(v, v), 0.0);
}

TEST(DtwAlignTest, BandedAlignmentStaysInsideTheBand) {
  util::Rng rng(35);
  const std::vector<double> x = RandomSeq(rng, 24);
  const std::vector<double> y = RandomSeq(rng, 24);
  DtwOptions options;
  options.constraint = GlobalConstraint::kSakoeChiba;
  options.band_radius = 3;
  const auto alignment = DtwAlign(x, y, options);
  ASSERT_TRUE(alignment.ok());
  for (const auto& [t, i] : alignment->path) {
    EXPECT_TRUE(CellAllowed(options, t, i, 24, 24))
        << "cell (" << t << ", " << i << ") outside the band";
  }
  EXPECT_NEAR(alignment->distance, DtwDistance(x, y, options), 1e-9);
}

TEST(CellAllowedTest, SakoeChibaBandGeometry) {
  DtwOptions options;
  options.constraint = GlobalConstraint::kSakoeChiba;
  options.band_radius = 2;
  // Square matrix: |i - t| <= 2.
  EXPECT_TRUE(CellAllowed(options, 5, 5, 20, 20));
  EXPECT_TRUE(CellAllowed(options, 5, 7, 20, 20));
  EXPECT_FALSE(CellAllowed(options, 5, 8, 20, 20));
}

TEST(CellAllowedTest, NoneAllowsEverything) {
  DtwOptions options;
  EXPECT_TRUE(CellAllowed(options, 0, 99, 100, 100));
}

TEST(GlobalConstraintNameTest, Stable) {
  EXPECT_STREQ(GlobalConstraintName(GlobalConstraint::kNone), "none");
  EXPECT_STREQ(GlobalConstraintName(GlobalConstraint::kSakoeChiba),
               "sakoe-chiba");
  EXPECT_STREQ(GlobalConstraintName(GlobalConstraint::kItakura), "itakura");
}

TEST(LocalDistanceTest, NamesAndValues) {
  EXPECT_STREQ(LocalDistanceName(LocalDistance::kSquared), "squared");
  EXPECT_STREQ(LocalDistanceName(LocalDistance::kAbsolute), "absolute");
  EXPECT_DOUBLE_EQ(PointDistance(LocalDistance::kSquared, 1.0, 4.0), 9.0);
  EXPECT_DOUBLE_EQ(PointDistance(LocalDistance::kAbsolute, 1.0, 4.0), 3.0);
}

TEST(LocalDistanceTest, VectorPointDistance) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(VectorPointDistance(LocalDistance::kSquared, a, b), 25.0);
  EXPECT_DOUBLE_EQ(VectorPointDistance(LocalDistance::kAbsolute, a, b), 7.0);
}

}  // namespace
}  // namespace dtw
}  // namespace springdtw
