#include "obs/timeline.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/json.h"

namespace springdtw {
namespace obs {
namespace {

constexpr uint64_t kNanos = 1000000000ull;

uint64_t Seconds(double t) { return static_cast<uint64_t>(t * 1e9); }

/// Records one snapshot of `registry` at t seconds.
void RecordAt(MetricsTimeline* timeline, MetricsRegistry* registry,
              double t) {
  timeline->Record(Seconds(t), registry->Snapshot());
}

double SumPoints(const TimelineWindow& window) {
  double sum = 0.0;
  for (const TimelineSeries& series : window.series) {
    for (const TimelinePoint& point : series.points) sum += point.value;
  }
  return sum;
}

// The downsampling fold is exact for counters: the total increase seen by
// any tier over the whole run equals the counter's final value, because a
// coarse bucket is the sum of its nested fine buckets, never a resample.
TEST(MetricsTimelineTest, TierFoldCounterSumExact) {
  MetricsTimeline timeline;  // Defaults: 1s x 120, 10s x 90, 60s x 120.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c", "");
  int64_t total = 0;
  RecordAt(&timeline, &registry, 0.0);  // Baseline: delta starts here.
  for (int t = 1; t <= 90; ++t) {
    const int64_t inc = t % 7 + 1;
    c->Increment(inc);
    total += inc;
    RecordAt(&timeline, &registry, static_cast<double>(t));
  }

  // 90s of data fits inside every tier's span, so each tier must account
  // for every increment exactly.
  const TimelineWindow fine = timeline.Query("c", "", 120.0);
  ASSERT_EQ(fine.series.size(), 1u);
  EXPECT_EQ(fine.tier.width_seconds, 1.0);
  EXPECT_EQ(SumPoints(fine), static_cast<double>(total));

  const TimelineWindow mid = timeline.Query("c", "", 900.0);
  EXPECT_EQ(mid.tier.width_seconds, 10.0);
  EXPECT_EQ(SumPoints(mid), static_cast<double>(total));

  const TimelineWindow coarse = timeline.Query("c", "", 7200.0);
  EXPECT_EQ(coarse.tier.width_seconds, 60.0);
  EXPECT_EQ(SumPoints(coarse), static_cast<double>(total));

  // rate is value per bucket-width second.
  for (const TimelinePoint& point : mid.series[0].points) {
    EXPECT_DOUBLE_EQ(point.rate, point.value / 10.0);
  }
}

TEST(MetricsTimelineTest, GaugeMinMaxEnvelopeNestsAcrossTiers) {
  MetricsTimeline timeline;
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("g", "");
  std::vector<double> samples;
  for (int t = 0; t < 60; ++t) {
    const double v = (t * 37) % 23 - 11.0;  // Deterministic zig-zag.
    g->Set(v);
    samples.push_back(v);
    RecordAt(&timeline, &registry, static_cast<double>(t));
  }

  const TimelineWindow fine = timeline.Query("g", "", 120.0);
  ASSERT_EQ(fine.series.size(), 1u);
  EXPECT_EQ(fine.series[0].agg, ChannelAgg::kGauge);
  ASSERT_EQ(fine.series[0].points.size(), 60u);
  for (size_t i = 0; i < 60; ++i) {
    const TimelinePoint& point = fine.series[0].points[i];
    EXPECT_DOUBLE_EQ(point.value, samples[i]);
    EXPECT_DOUBLE_EQ(point.min, samples[i]);
    EXPECT_DOUBLE_EQ(point.max, samples[i]);
  }

  // Each 10s bucket keeps last/min/max of its ten 1s samples exactly.
  const TimelineWindow mid = timeline.Query("g", "", 900.0);
  ASSERT_EQ(mid.series.size(), 1u);
  ASSERT_EQ(mid.series[0].points.size(), 6u);
  for (size_t b = 0; b < 6; ++b) {
    const TimelinePoint& point = mid.series[0].points[b];
    double lo = samples[b * 10];
    double hi = samples[b * 10];
    for (size_t i = b * 10; i < b * 10 + 10; ++i) {
      lo = std::min(lo, samples[i]);
      hi = std::max(hi, samples[i]);
    }
    EXPECT_DOUBLE_EQ(point.value, samples[b * 10 + 9]);  // Last in bucket.
    EXPECT_DOUBLE_EQ(point.min, lo);
    EXPECT_DOUBLE_EQ(point.max, hi);
  }

  double latest = 0.0;
  ASSERT_TRUE(timeline.LatestGauge("g", "", &latest));
  EXPECT_DOUBLE_EQ(latest, samples.back());
  EXPECT_FALSE(timeline.LatestGauge("nope", "", &latest));
}

TEST(MetricsTimelineTest, FinestTierWrapsCoarserTierRemembers) {
  MetricsTimeline timeline;
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c", "");
  RecordAt(&timeline, &registry, 0.0);
  for (int t = 1; t <= 299; ++t) {
    c->Increment();
    RecordAt(&timeline, &registry, static_cast<double>(t));
  }

  // 299 one-per-second deltas: the 1s ring (120 slots) only retains the
  // trailing 120, the 10s ring (900s span) still holds all of them.
  const TimelineWindow fine = timeline.Query("c", "", 120.0);
  ASSERT_EQ(fine.series.size(), 1u);
  EXPECT_LE(fine.series[0].points.size(), 120u);
  EXPECT_EQ(SumPoints(fine), 120.0);
  double prev = -1.0;
  for (const TimelinePoint& point : fine.series[0].points) {
    EXPECT_GT(point.start_seconds, prev);  // Oldest first, strictly rising.
    EXPECT_GE(point.start_seconds, 180.0);
    prev = point.start_seconds;
  }
  EXPECT_EQ(SumPoints(timeline.Query("c", "", 900.0)), 299.0);
}

TEST(MetricsTimelineTest, ChannelCapDropsNotGrows) {
  TimelineOptions options;
  options.max_channels = 2;
  MetricsTimeline timeline(options);
  MetricsRegistry registry;
  for (int i = 0; i < 5; ++i) {
    registry.GetGauge("g" + std::to_string(i), "")->Set(1.0);
  }
  RecordAt(&timeline, &registry, 0.0);
  RecordAt(&timeline, &registry, 1.0);
  EXPECT_EQ(timeline.num_channels(), 2);
  EXPECT_GT(timeline.dropped_channels(), 0);
  EXPECT_EQ(timeline.records(), 2);
}

TEST(MetricsTimelineTest, NonNestingTierIsDropped) {
  TimelineOptions options;
  options.tiers = {TimelineTier{2.0, 10}, TimelineTier{5.0, 10},
                   TimelineTier{6.0, 10}};
  MetricsTimeline timeline(options);
  // 5s is not an integer multiple of the 2s finest width: buckets would
  // straddle, the fold could not be exact, so the tier must be dropped.
  ASSERT_EQ(timeline.tiers().size(), 2u);
  EXPECT_EQ(timeline.tiers()[0].width_seconds, 2.0);
  EXPECT_EQ(timeline.tiers()[1].width_seconds, 6.0);
}

TEST(MetricsTimelineTest, HistogramDecomposesIntoDeltaAndQuantileChannels) {
  MetricsTimeline timeline;
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", "");
  RecordAt(&timeline, &registry, 0.0);
  for (int t = 1; t <= 5; ++t) {
    for (int i = 0; i < 10; ++i) h->Observe(100.0 * t);
    RecordAt(&timeline, &registry, static_cast<double>(t));
  }

  bool saw_count = false;
  bool saw_p99 = false;
  for (const auto& entry : timeline.Catalog()) {
    if (entry.metric != "lat") continue;
    if (entry.field == "count") {
      saw_count = true;
      EXPECT_EQ(entry.agg, ChannelAgg::kDelta);
    }
    if (entry.field == "p99") {
      saw_p99 = true;
      EXPECT_EQ(entry.agg, ChannelAgg::kGauge);
    }
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_p99);

  // count is a delta channel: 10 observations per second.
  EXPECT_EQ(timeline.DeltaOver("lat", "count", 120.0), 50.0);
  // p99 rides as a gauge; the fraction of buckets whose p99 exceeds a
  // threshold is the burn-rate input.
  EXPECT_GT(timeline.BadBucketFraction("lat", "p99", 120.0, 150.0), 0.0);
  EXPECT_EQ(timeline.BadBucketFraction("lat", "p99", 120.0, 1e12), 0.0);
  EXPECT_EQ(timeline.BadBucketFraction("never", "", 120.0, 0.0), -1.0);
}

TEST(MetricsTimelineTest, ParseQueryParamsSplitsInOrder) {
  const auto params = ParseQueryParams("metric=a&window=30&field=p99&flag");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].first, "metric");
  EXPECT_EQ(params[0].second, "a");
  EXPECT_EQ(params[2].second, "p99");
  EXPECT_EQ(params[3].first, "flag");
  EXPECT_EQ(params[3].second, "");
}

TEST(MetricsTimelineTest, RenderTimezJsonCatalogAndSeriesShapes) {
  MetricsTimeline timeline;
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c", "");
  RecordAt(&timeline, &registry, 0.0);
  for (int t = 1; t <= 30; ++t) {
    c->Increment(3);
    RecordAt(&timeline, &registry, static_cast<double>(t));
  }

  auto catalog = util::ParseJson(RenderTimezJson(timeline, ""));
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  const util::JsonValue* tiers = catalog->Find("tiers");
  ASSERT_NE(tiers, nullptr);
  EXPECT_EQ(tiers->array().size(), 3u);
  EXPECT_EQ(catalog->NumberOr("records", 0), 31.0);
  bool listed = false;
  for (const util::JsonValue& channel : catalog->Find("channels")->array()) {
    if (channel.StringOr("metric", "") == "c") listed = true;
  }
  EXPECT_TRUE(listed);

  auto doc = util::ParseJson(RenderTimezJson(timeline, "metric=c&window=60"));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->StringOr("metric", ""), "c");
  const util::JsonValue* series = doc->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array().size(), 1u);
  double prev_t = -1.0;
  double sum = 0.0;
  for (const util::JsonValue& point :
       series->array()[0].Find("points")->array()) {
    const double t = point.NumberOr("t", -1);
    EXPECT_GT(t, prev_t);
    prev_t = t;
    sum += point.NumberOr("value", 0);
    EXPECT_GE(point.NumberOr("samples", 0), 1.0);
  }
  EXPECT_EQ(sum, 90.0);
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
