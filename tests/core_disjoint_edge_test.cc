// Edge cases of the disjoint-query reporting semantics (the paper's
// Problem 2 / Figure 4): ties in d_min, back-to-back adjacent matches,
// epsilon = 0 exact matching, and a match whose group spans a checkpoint
// save/restore. Complements core_spring_test (happy paths) and
// core_spring_property_test (randomized properties).
#include <cstdint>
#include <string>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "gtest/gtest.h"

namespace springdtw {
namespace core {
namespace {

struct Report {
  int64_t start = 0;
  int64_t end = 0;
  double distance = 0.0;
  int64_t report_time = 0;
};

std::vector<Report> RunStream(SpringMatcher& matcher,
                              const std::vector<double>& stream,
                              bool flush = true) {
  std::vector<Report> reports;
  Match match;
  for (const double x : stream) {
    if (matcher.Update(x, &match)) {
      reports.push_back(
          {match.start, match.end, match.distance, match.report_time});
    }
  }
  if (flush && matcher.Flush(&match)) {
    reports.push_back(
        {match.start, match.end, match.distance, match.report_time});
  }
  return reports;
}

void ExpectDisjoint(const std::vector<Report>& reports) {
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_GT(reports[i].start, reports[i - 1].end)
        << "reports " << i - 1 << " and " << i << " overlap";
  }
}

TEST(DisjointEdgeTest, TieInDminKeepsFirstCapturedCandidate) {
  // Query {0} against a stream of two identical values: both one-tick
  // subsequences have the same distance 0.01. The tie must not churn the
  // candidate — the first capture wins and is reported as its own match,
  // then the second becomes a fresh candidate.
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher({0.0}, options);
  const auto reports = RunStream(matcher, {0.1, 0.1});

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].start, 0);
  EXPECT_EQ(reports[0].end, 0);
  EXPECT_DOUBLE_EQ(reports[0].distance, 0.01);
  EXPECT_EQ(reports[1].start, 1);
  EXPECT_EQ(reports[1].end, 1);
  EXPECT_DOUBLE_EQ(reports[1].distance, 0.01);
  ExpectDisjoint(reports);
}

TEST(DisjointEdgeTest, BackToBackAdjacentMatches) {
  // Two perfect occurrences of {1, 2} with no gap: [0,1] and [2,3]. Both
  // must be reported, disjoint, with the second starting exactly one tick
  // after the first ends.
  SpringOptions options;
  options.epsilon = 0.25;
  SpringMatcher matcher({1.0, 2.0}, options);
  const auto reports = RunStream(matcher, {1.0, 2.0, 1.0, 2.0});

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].start, 0);
  EXPECT_EQ(reports[0].end, 1);
  EXPECT_DOUBLE_EQ(reports[0].distance, 0.0);
  EXPECT_EQ(reports[1].start, 2);
  EXPECT_EQ(reports[1].end, 3);
  EXPECT_DOUBLE_EQ(reports[1].distance, 0.0);
  EXPECT_EQ(reports[1].start, reports[0].end + 1);
}

TEST(DisjointEdgeTest, EpsilonZeroReportsOnlyExactMatches) {
  // With epsilon = 0 only distance-0 subsequences qualify. Every STWM cell
  // is >= 0 = d_min, so the report condition holds at the very next tick:
  // an exact match is reported with delay 1.
  SpringOptions options;
  options.epsilon = 0.0;
  SpringMatcher matcher({1.0, 2.0}, options);
  const auto reports =
      RunStream(matcher, {5.0, 1.0, 2.0, 5.0, 1.0, 2.0, 1.5, 5.0});

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].start, 1);
  EXPECT_EQ(reports[0].end, 2);
  EXPECT_DOUBLE_EQ(reports[0].distance, 0.0);
  EXPECT_EQ(reports[0].report_time, 3);
  EXPECT_EQ(reports[1].start, 4);
  EXPECT_EQ(reports[1].end, 5);
  EXPECT_DOUBLE_EQ(reports[1].distance, 0.0);
  ExpectDisjoint(reports);
}

TEST(DisjointEdgeTest, EpsilonZeroNearMissesNeverReport) {
  SpringOptions options;
  options.epsilon = 0.0;
  SpringMatcher matcher({1.0, 2.0}, options);
  const auto reports =
      RunStream(matcher, {1.0 + 1e-9, 2.0, 1.0, 2.0 - 1e-9, 5.0});
  EXPECT_TRUE(reports.empty());
}

TEST(DisjointEdgeTest, MatchSpanningCheckpointSaveRestore) {
  // Checkpoint in the middle of a qualifying group — after the candidate
  // is captured but before it can be reported — and restore into a fresh
  // matcher. The restored matcher must finish the group and report exactly
  // what the uninterrupted matcher reports.
  SpringOptions options;
  options.epsilon = 0.5;
  const std::vector<double> query = {1.0, 2.0, 3.0};
  const std::vector<double> stream = {9.0, 1.0, 2.0, 3.1, 2.9,
                                      9.0, 9.0, 1.1, 9.0};

  SpringMatcher uninterrupted(query, options);
  const auto expected = RunStream(uninterrupted, stream);
  ASSERT_FALSE(expected.empty());

  // Checkpoint after tick 3 (value 3.1): the candidate [1,3] is pending
  // inside a still-open group.
  for (size_t split = 1; split + 1 < stream.size(); ++split) {
    SpringMatcher first(query, options);
    std::vector<Report> reports;
    Match match;
    for (size_t i = 0; i < split; ++i) {
      if (first.Update(stream[i], &match)) {
        reports.push_back(
            {match.start, match.end, match.distance, match.report_time});
      }
    }
    auto restored = SpringMatcher::DeserializeState(first.SerializeState());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    for (size_t i = split; i < stream.size(); ++i) {
      if (restored->Update(stream[i], &match)) {
        reports.push_back(
            {match.start, match.end, match.distance, match.report_time});
      }
    }
    if (restored->Flush(&match)) {
      reports.push_back(
          {match.start, match.end, match.distance, match.report_time});
    }

    ASSERT_EQ(reports.size(), expected.size()) << "split=" << split;
    for (size_t i = 0; i < reports.size(); ++i) {
      EXPECT_EQ(reports[i].start, expected[i].start) << "split=" << split;
      EXPECT_EQ(reports[i].end, expected[i].end) << "split=" << split;
      EXPECT_DOUBLE_EQ(reports[i].distance, expected[i].distance)
          << "split=" << split;
      EXPECT_EQ(reports[i].report_time, expected[i].report_time)
          << "split=" << split;
    }
  }
}

TEST(DisjointEdgeTest, TieAcrossGroupBoundaryStaysDisjoint) {
  // A W-shaped stream where two overlapping alignments tie, followed by a
  // separator and a second identical group: reports must stay disjoint and
  // deterministic.
  SpringOptions options;
  options.epsilon = 0.1;
  SpringMatcher matcher({0.0, 1.0, 0.0}, options);
  const auto reports = RunStream(
      matcher, {0.0, 1.0, 0.0, 1.0, 0.0, 9.0, 0.0, 1.0, 0.0, 9.0});

  ASSERT_GE(reports.size(), 2u);
  ExpectDisjoint(reports);
  for (const Report& r : reports) {
    EXPECT_LE(r.distance, options.epsilon);
    EXPECT_GE(r.distance, 0.0);
  }
}

}  // namespace
}  // namespace core
}  // namespace springdtw
