#include "gen/mocap.h"

#include <gtest/gtest.h>

#include "dtw/dtw.h"

namespace springdtw {
namespace gen {
namespace {

TEST(MocapTest, DefaultScriptHasSevenMotions) {
  const std::vector<Motion> script = DefaultMotionScript();
  ASSERT_EQ(script.size(), 7u);
  EXPECT_EQ(script[0], Motion::kWalking);
  EXPECT_EQ(script[1], Motion::kJumping);
  EXPECT_EQ(script[3], Motion::kPunching);
  EXPECT_EQ(script[5], Motion::kKicking);
  EXPECT_EQ(script[6], Motion::kPunching);
}

TEST(MocapTest, MotionNames) {
  EXPECT_STREQ(MotionName(Motion::kWalking), "walking");
  EXPECT_STREQ(MotionName(Motion::kJumping), "jumping");
  EXPECT_STREQ(MotionName(Motion::kPunching), "punching");
  EXPECT_STREQ(MotionName(Motion::kKicking), "kicking");
}

TEST(MocapTest, StreamCoversAllSegmentsBackToBack) {
  MocapOptions options;
  options.dims = 8;  // Small for test speed.
  options.canonical_length = 60;
  const MocapData data = GenerateMocap(options);
  ASSERT_EQ(data.events.size(), 7u);
  int64_t expected_start = 0;
  for (const PlantedEvent& e : data.events) {
    EXPECT_EQ(e.start, expected_start);
    expected_start += e.length;
  }
  EXPECT_EQ(data.stream.size(), expected_start);
  EXPECT_EQ(data.stream.dims(), 8);
}

TEST(MocapTest, OneQueryPerArchetype) {
  MocapOptions options;
  options.dims = 4;
  options.canonical_length = 40;
  const MocapData data = GenerateMocap(options);
  ASSERT_EQ(data.queries.size(), 4u);  // walk, jump, punch, kick.
  EXPECT_EQ(data.queries[0].first, "walking");
  for (const auto& [name, query] : data.queries) {
    EXPECT_EQ(query.dims(), 4);
    EXPECT_GT(query.size(), 10);
  }
}

TEST(MocapTest, SegmentLengthsVaryWithSpeed) {
  MocapOptions options;
  options.dims = 2;
  options.canonical_length = 100;
  options.min_speed = 0.5;
  options.max_speed = 2.0;
  const MocapData data = GenerateMocap(options);
  bool lengths_differ = false;
  for (size_t i = 1; i < data.events.size(); ++i) {
    if (data.events[i].length != data.events[0].length) lengths_differ = true;
  }
  EXPECT_TRUE(lengths_differ);
}

TEST(MocapTest, SameArchetypeIsCloserThanDifferentUnderDtw) {
  // The core property the experiment relies on: an instance of "walking" is
  // much closer (multivariate DTW) to another walking instance than to any
  // other archetype's instance.
  MocapOptions options;
  options.dims = 6;
  options.canonical_length = 80;
  const MocapData data = GenerateMocap(options);

  // events[0] and events[2] are both walking; events[1] is jumping.
  const ts::VectorSeries walk_a =
      data.stream.Slice(data.events[0].start, data.events[0].length);
  const ts::VectorSeries walk_b =
      data.stream.Slice(data.events[2].start, data.events[2].length);
  const ts::VectorSeries jump =
      data.stream.Slice(data.events[1].start, data.events[1].length);

  const double same = dtw::DtwDistanceMultivariate(walk_a, walk_b);
  const double diff = dtw::DtwDistanceMultivariate(walk_a, jump);
  EXPECT_LT(same * 2.0, diff);
}

TEST(MocapTest, Determinism) {
  MocapOptions options;
  options.dims = 3;
  options.canonical_length = 30;
  const MocapData a = GenerateMocap(options);
  const MocapData b = GenerateMocap(options);
  EXPECT_EQ(a.stream.data(), b.stream.data());
}

TEST(MocapTest, CustomScript) {
  MocapOptions options;
  options.dims = 2;
  options.canonical_length = 30;
  const MocapData data =
      GenerateMocap(options, {Motion::kKicking, Motion::kKicking});
  ASSERT_EQ(data.events.size(), 2u);
  EXPECT_EQ(data.events[0].label, "kicking");
  EXPECT_EQ(data.queries.size(), 1u);
}

}  // namespace
}  // namespace gen
}  // namespace springdtw
