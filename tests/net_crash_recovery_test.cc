// Crash-injection suite for durable ingest (docs/DURABILITY.md): fork/exec
// the real springdtw_serve binary with a write-ahead log, kill -9 it at
// randomized points mid-ingest, restart it on the same WAL directory, and
// assert that the match stream delivered across the crash — after client-
// side dedup by the (global seq, query) identity — is byte-identical to an
// uninterrupted run: zero duplicates, zero losses, same order. The matrix
// covers {1, 2, 8} workers x all three fsync policies; SIGKILL (never
// SIGTERM) so the daemon gets no chance to flush anything.
//
// Why kill -9 is recoverable even under --fsync=os: the page cache belongs
// to the kernel, not the process, so every WAL byte the daemon wrote
// before dying is still readable afterwards. Only power loss can eat it,
// which is what the stronger policies are for.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "net/client.h"
#include "net/protocol.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "wal/env.h"

namespace springdtw {
namespace net {
namespace {

using monitor::CollectSink;
using monitor::ShardedMonitor;
using monitor::ShardedMonitorOptions;

// (stream name, query name, match fields) — ids are not compared because
// restored monitors compact query ids.
using MatchKey =
    std::tuple<std::string, std::string, int64_t, int64_t, double, int64_t>;

MatchKey KeyOf(const std::string& stream_name, const std::string& query_name,
               const core::Match& match) {
  return {stream_name, query_name, match.start, match.end, match.distance,
          match.report_time};
}

core::SpringOptions Eps(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

struct QuerySpec {
  std::string stream;
  std::string name;
  std::vector<double> values;
  double epsilon;
};

std::vector<QuerySpec> Topology() {
  return {
      {"s0", "q-ramp", {1.0, 2.0, 3.0}, 0.5},
      {"s1", "q-flat", {2.0, 2.0, 2.0}, 1.0},
      {"s0", "q-bump", {1.0, 2.0, 3.0, 2.0, 1.0}, 2.0},
  };
}

struct Chunk {
  std::string stream;
  std::vector<double> values;
};

std::vector<Chunk> Workload(uint64_t seed, int64_t chunks,
                            int64_t chunk_size) {
  util::Rng rng(seed);
  std::vector<Chunk> out;
  for (int64_t c = 0; c < chunks; ++c) {
    Chunk chunk;
    chunk.stream = (c % 2 == 0) ? "s0" : "s1";
    for (int64_t i = 0; i < chunk_size; ++i) {
      chunk.values.push_back(static_cast<double>(rng.UniformInt(0, 4)));
    }
    out.push_back(std::move(chunk));
  }
  return out;
}

// The uninterrupted run, executed in-process. Match fields depend only on
// each stream's tick sequence, which the wire runs reproduce exactly, so
// this is the byte-level ground truth for any worker count.
std::vector<MatchKey> DirectReference(int64_t workers,
                                      const std::vector<Chunk>& chunks) {
  ShardedMonitorOptions options;
  options.num_workers = workers;
  ShardedMonitor ref(options);
  CollectSink sink;
  ref.AddSink(&sink);
  const int64_t s0 = ref.AddStream("s0");
  const int64_t s1 = ref.AddStream("s1");
  for (const auto& spec : Topology()) {
    auto added = ref.AddQuery(spec.stream == "s0" ? s0 : s1, spec.name,
                              spec.values, Eps(spec.epsilon));
    SPRINGDTW_CHECK(added.ok());
  }
  ref.Start();
  for (const auto& chunk : chunks) {
    SPRINGDTW_CHECK(
        ref.PushBatch(chunk.stream == "s0" ? s0 : s1, chunk.values).ok());
  }
  ref.Drain();
  ref.Stop();
  std::vector<MatchKey> keys;
  for (const auto& entry : sink.entries()) {
    keys.push_back(
        KeyOf(entry.origin.stream_name, entry.origin.query_name, entry.match));
  }
  return keys;
}

/// fork/execs the serve daemon and scrapes SERVE_PORT from its stdout.
class ServeProcess {
 public:
  ServeProcess(int64_t workers, const std::string& fsync,
               const std::string& wal_dir) {
    int fds[2];
    SPRINGDTW_CHECK(pipe(fds) == 0);
    pid_ = fork();
    SPRINGDTW_CHECK(pid_ >= 0);
    if (pid_ == 0) {
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      const std::string workers_arg = "--workers=" + std::to_string(workers);
      const std::string fsync_arg = "--fsync=" + fsync;
      const std::string wal_arg = "--wal_dir=" + wal_dir;
      execl(SPRINGDTW_SERVE_BIN, SPRINGDTW_SERVE_BIN, "--port=0",
            workers_arg.c_str(), fsync_arg.c_str(), wal_arg.c_str(),
            "--fsync_interval_ms=5", static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    close(fds[1]);
    // Read the child's stdout until the port line is complete; the child
    // keeps the pipe open for its lifetime.
    std::string out;
    char ch = 0;
    while (port_ < 0 && read(fds[0], &ch, 1) == 1) {
      out.push_back(ch);
      if (ch == '\n') {
        int parsed = -1;
        if (std::sscanf(out.c_str(), "SERVE_PORT=%d", &parsed) == 1) {
          port_ = parsed;
        }
        out.clear();
      }
    }
    close(fds[0]);
  }

  ~ServeProcess() {
    if (pid_ > 0) Kill();
  }

  int port() const { return port_; }

  /// SIGKILL — the crash under test. Never SIGTERM: the daemon must get
  /// no opportunity to checkpoint or flush.
  void Kill() {
    if (pid_ <= 0) return;
    kill(pid_, SIGKILL);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
  }

 private:
  pid_t pid_ = -1;
  int port_ = -1;
};

StreamClientOptions ClientOptionsFor(int port) {
  StreamClientOptions options;
  options.port = port;
  options.io_timeout_ms = 10000.0;
  // Flush each TickBatch immediately so the kill point lands mid-stream on
  // the server, not in this process's pipeline buffer.
  options.tick_flush_bytes = 1;
  return options;
}

std::string FreshWalDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/crash_" + name;
  wal::Env* env = wal::Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    SPRINGDTW_CHECK(names.ok());
    for (const std::string& file : *names) {
      SPRINGDTW_CHECK(env->RemoveFile(dir + "/" + file).ok());
    }
  }
  return dir;
}

struct CrashCase {
  int64_t workers;
  std::string fsync;
  uint64_t kill_seed;
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashCase> {};

std::string CaseName(const ::testing::TestParamInfo<CrashCase>& info) {
  return "w" + std::to_string(info.param.workers) + "_" + info.param.fsync +
         "_k" + std::to_string(info.param.kill_seed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashRecoveryTest,
    ::testing::Values(CrashCase{1, "os", 1}, CrashCase{1, "every_record", 2},
                      CrashCase{1, "interval", 3}, CrashCase{2, "os", 4},
                      CrashCase{2, "every_record", 5},
                      CrashCase{2, "interval", 6}, CrashCase{8, "os", 7},
                      CrashCase{8, "every_record", 8},
                      CrashCase{8, "interval", 9},
                      // Second kill point per policy at one worker count.
                      CrashCase{2, "os", 10}, CrashCase{2, "every_record", 11},
                      CrashCase{2, "interval", 12}),
    CaseName);

TEST_P(CrashRecoveryTest, ExactlyOnceAcrossSigkill) {
  const CrashCase& param = GetParam();
  const int64_t kChunks = 40;
  const int64_t kChunkSize = 25;
  const std::vector<Chunk> chunks =
      Workload(/*seed=*/20260808, kChunks, kChunkSize);
  const std::vector<MatchKey> expected =
      DirectReference(param.workers, chunks);
  ASSERT_FALSE(expected.empty()) << "workload must exercise match fan-out";

  const std::string wal_dir =
      FreshWalDir("w" + std::to_string(param.workers) + "_" + param.fsync +
                  "_k" + std::to_string(param.kill_seed));

  // Randomized mid-ingest kill point: somewhere in the middle half.
  util::Rng rng(param.kill_seed);
  const int64_t kill_after =
      kChunks / 4 +
      static_cast<int64_t>(rng.UniformInt(0, static_cast<int>(kChunks / 2)));

  // --- Session 1: ingest until the crash. ------------------------------
  std::vector<MatchEventPayload> session1_events;
  {
    ServeProcess serve(param.workers, param.fsync, wal_dir);
    ASSERT_GT(serve.port(), 0);
    StreamClient client(ClientOptionsFor(serve.port()));
    client.SetMatchCallback([&session1_events](const MatchEventPayload& e) {
      session1_events.push_back(e);
    });
    ASSERT_TRUE(client.Connect().ok());
    auto s0 = client.OpenStream("s0");
    ASSERT_TRUE(s0.ok());
    auto s1 = client.OpenStream("s1");
    ASSERT_TRUE(s1.ok());
    for (const auto& spec : Topology()) {
      auto added = client.AddQuery(spec.stream == "s0" ? *s0 : *s1, spec.name,
                                   spec.values, Eps(spec.epsilon));
      ASSERT_TRUE(added.ok());
    }
    ASSERT_TRUE(client.SubscribeMatches().ok());
    for (int64_t c = 0; c < kill_after; ++c) {
      const util::Status sent = client.TickBatch(
          chunks[static_cast<size_t>(c)].stream == "s0" ? *s0 : *s1,
          chunks[static_cast<size_t>(c)].values);
      ASSERT_TRUE(sent.ok()) << sent.ToString();
    }
    // No drain: the daemon dies with frames still in flight.
    serve.Kill();
    // Everything the server flushed before dying is still in our socket's
    // receive buffer; pump it (dispatching MATCH_EVENTs) until EOF. The
    // call itself fails — the server is gone — and that is expected.
    (void)client.Drain();
    client.Close();
  }

  // --- Session 2: restart on the same WAL, resume, finish. -------------
  std::vector<MatchEventPayload> session2_events;
  {
    ServeProcess serve(param.workers, param.fsync, wal_dir);
    ASSERT_GT(serve.port(), 0);
    StreamClient client(ClientOptionsFor(serve.port()));
    client.SetMatchCallback([&session2_events](const MatchEventPayload& e) {
      session2_events.push_back(e);
    });
    ASSERT_TRUE(client.Connect().ok());
    auto s0 = client.OpenStream("s0");
    ASSERT_TRUE(s0.ok());
    const int64_t held_s0 = client.last_stream_ticks();
    auto s1 = client.OpenStream("s1");
    ASSERT_TRUE(s1.ok());
    const int64_t held_s1 = client.last_stream_ticks();
    ASSERT_GE(held_s0, 0);
    ASSERT_GE(held_s1, 0);

    // The queries were acked (and checkpointed) before the crash, so they
    // must have survived it — exactly-once admin.
    auto queries = client.ListQueries();
    ASSERT_TRUE(queries.ok());
    EXPECT_EQ(queries->size(), Topology().size());

    // TICK_BATCH frames are applied atomically (logged before ack, whole
    // frame or nothing), so the accepted ticks are a whole-chunk prefix of
    // the feed order. Find it to know where to resume.
    int64_t resume_at = -1;
    int64_t seen_s0 = 0;
    int64_t seen_s1 = 0;
    for (int64_t c = 0; c <= kChunks; ++c) {
      if (seen_s0 == held_s0 && seen_s1 == held_s1) {
        resume_at = c;
        break;
      }
      if (c == kChunks) break;
      (chunks[static_cast<size_t>(c)].stream == "s0" ? seen_s0 : seen_s1) +=
          static_cast<int64_t>(chunks[static_cast<size_t>(c)].values.size());
    }
    ASSERT_GE(resume_at, 0)
        << "accepted ticks are not a chunk prefix: s0=" << held_s0
        << " s1=" << held_s1;
    ASSERT_LE(resume_at, kill_after);

    ASSERT_TRUE(client.SubscribeMatches().ok());
    for (int64_t c = resume_at; c < kChunks; ++c) {
      const util::Status sent = client.TickBatch(
          chunks[static_cast<size_t>(c)].stream == "s0" ? *s0 : *s1,
          chunks[static_cast<size_t>(c)].values);
      ASSERT_TRUE(sent.ok()) << sent.ToString();
    }
    auto drained = client.Drain();
    ASSERT_TRUE(drained.ok()) << drained.status().ToString();
    client.Close();
    serve.Kill();
  }

  // --- Exactly-once: dedup by (global seq, query), then byte-compare. ---
  // Within one WAL generation the global sequence numbering is stable
  // across restarts (replay reconstructs the router's order), so (seq,
  // query name) identifies a match across both sessions.
  std::set<std::pair<int64_t, std::string>> seen;
  std::vector<MatchKey> delivered;
  int64_t duplicates = 0;
  for (const auto* events : {&session1_events, &session2_events}) {
    for (const auto& event : *events) {
      ASSERT_GE(event.match_seq, 0) << "v3 events must carry match_seq";
      if (!seen.insert({event.match_seq, event.query_name}).second) {
        ++duplicates;
        continue;
      }
      delivered.push_back(
          KeyOf(event.stream_name, event.query_name, event.match));
    }
  }
  // Session 1's deliveries must never repeat within themselves; duplicates
  // can only arise from crash-window re-delivery in session 2.
  std::set<std::pair<int64_t, std::string>> session1_keys;
  for (const auto& event : session1_events) {
    EXPECT_TRUE(
        session1_keys.insert({event.match_seq, event.query_name}).second);
  }

  EXPECT_EQ(delivered, expected)
      << "delivered stream diverges from the uninterrupted run"
      << " (session1=" << session1_events.size()
      << " session2=" << session2_events.size()
      << " duplicates=" << duplicates << ")";
}

}  // namespace
}  // namespace net
}  // namespace springdtw
