#include "wal/wal.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wal/crc32c.h"
#include "wal/env.h"
#include "wal/fault_env.h"
#include "wal/record.h"

namespace springdtw {
namespace wal {
namespace {

std::span<const uint8_t> Bytes(const char* text) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text),
                                  std::char_traits<char>::length(text));
}

class WalTest : public ::testing::Test {
 protected:
  /// A per-test directory, emptied of any leftovers from previous runs so
  /// recovery scans see only what the test wrote.
  std::string FreshDir(const std::string& name) {
    const std::string dir = testing::TempDir() + "/wal_" + name;
    Env* env = Env::Default();
    if (env->FileExists(dir)) {
      auto names = env->ListDir(dir);
      if (names.ok()) {
        for (const std::string& file : *names) {
          EXPECT_TRUE(env->RemoveFile(dir + "/" + file).ok());
        }
      }
    } else {
      EXPECT_TRUE(env->CreateDir(dir).ok());
    }
    return dir;
  }

  WalOptions Options(const std::string& dir, int64_t shards = 1) {
    WalOptions options;
    options.dir = dir;
    options.num_shards = shards;
    options.fsync = FsyncPolicy::kOs;
    return options;
  }
};

// ---------------------------------------------------------------------------
// CRC and record framing.

TEST_F(WalTest, Crc32cKnownAnswer) {
  // RFC 3720 test vector for CRC-32C.
  EXPECT_EQ(Crc32c(Bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c({}), 0u);
  // Extending in two steps equals one pass.
  EXPECT_EQ(Crc32cExtend(Crc32cExtend(0, Bytes("12345")), Bytes("6789")),
            Crc32c(Bytes("123456789")));
}

TEST_F(WalTest, RecordRoundTrip) {
  std::vector<uint8_t> buffer;
  TicksRecord ticks;
  ticks.seq0 = 41;
  ticks.stream_id = 7;
  ticks.values = {1.5, -2.25, 0.0};
  AppendRecord(RecordType::kTicks, ticks.Encode(), &buffer);
  DeliveryMark mark;
  mark.seq = 43;
  mark.query_id = 2;
  AppendRecord(RecordType::kDeliveryMark, mark.Encode(), &buffer);

  const ScanResult scan = ScanRecords(buffer);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, buffer.size());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].type, RecordType::kTicks);
  TicksRecord decoded;
  ASSERT_TRUE(decoded.DecodeFrom(scan.records[0].body).ok());
  EXPECT_EQ(decoded.seq0, 41u);
  EXPECT_EQ(decoded.stream_id, 7);
  EXPECT_EQ(decoded.values, ticks.values);
  DeliveryMark decoded_mark;
  ASSERT_TRUE(decoded_mark.DecodeFrom(scan.records[1].body).ok());
  EXPECT_EQ(decoded_mark.seq, 43u);
  EXPECT_EQ(decoded_mark.query_id, 2);
}

TEST_F(WalTest, ScanStopsAtHostileFrames) {
  std::vector<uint8_t> good;
  TicksRecord ticks;
  ticks.seq0 = 0;
  ticks.values = {1.0};
  AppendRecord(RecordType::kTicks, ticks.Encode(), &good);

  // Truncated header.
  {
    std::vector<uint8_t> buffer(good.begin(), good.begin() + 4);
    const ScanResult scan = ScanRecords(buffer);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.records.size(), 0u);
    EXPECT_EQ(scan.valid_bytes, 0u);
  }
  // Flipped CRC byte.
  {
    std::vector<uint8_t> buffer = good;
    buffer[5] ^= 0xFF;
    const ScanResult scan = ScanRecords(buffer);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.records.size(), 0u);
  }
  // Oversize length prefix: must not attempt a giant allocation.
  {
    std::vector<uint8_t> buffer = good;
    buffer[0] = 0xFF;
    buffer[1] = 0xFF;
    buffer[2] = 0xFF;
    buffer[3] = 0x7F;
    const ScanResult scan = ScanRecords(buffer);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.records.size(), 0u);
  }
  // Valid record followed by trailing junk keeps the valid prefix.
  {
    std::vector<uint8_t> buffer = good;
    buffer.push_back(0xAB);
    buffer.push_back(0xCD);
    const ScanResult scan = ScanRecords(buffer);
    EXPECT_TRUE(scan.torn);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.valid_bytes, good.size());
  }
}

TEST_F(WalTest, FileNameRoundTrip) {
  int64_t shard = 0;
  uint64_t index = 0;
  EXPECT_TRUE(ParseWalFileName(SegmentFileName(3, 17), &shard, &index));
  EXPECT_EQ(shard, 3);
  EXPECT_EQ(index, 17u);
  EXPECT_TRUE(ParseWalFileName(MarksFileName(9), &shard, &index));
  EXPECT_EQ(shard, -1);
  EXPECT_EQ(index, 9u);
  EXPECT_FALSE(ParseWalFileName("checkpoint.ckpt", &shard, &index));
  EXPECT_FALSE(ParseWalFileName("wal-1-2.log.tmp", &shard, &index));
  EXPECT_FALSE(ParseWalFileName("wal-1-.log", &shard, &index));
}

// ---------------------------------------------------------------------------
// Writer + recovery.

TEST_F(WalTest, AppendAndRecover) {
  const std::string dir = FreshDir("append_recover");
  auto writer = WalWriter::Open(Options(dir));
  ASSERT_TRUE(writer.ok());
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0};
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, a).ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 3, 1, b).ok());
  ASSERT_TRUE((*writer)->SyncAll().ok());
  EXPECT_EQ((*writer)->appended_records(), 2);

  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->torn_tail);
  EXPECT_EQ(recovered->values, 5);
  ASSERT_EQ(recovered->chunks.size(), 2u);
  EXPECT_EQ(recovered->chunks[0].seq0, 0u);
  EXPECT_EQ(recovered->chunks[0].stream_id, 0);
  EXPECT_EQ(recovered->chunks[0].values, a);
  EXPECT_EQ(recovered->chunks[1].seq0, 3u);
  EXPECT_EQ(recovered->chunks[1].stream_id, 1);
  EXPECT_EQ(recovered->chunks[1].values, b);
  EXPECT_FALSE(recovered->has_watermark);
}

TEST_F(WalTest, RecoverFromMissingDirIsEmpty) {
  const std::string dir = testing::TempDir() + "/wal_never_created";
  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->chunks.empty());
  EXPECT_EQ(recovered->segments, 0);
}

TEST_F(WalTest, SegmentRotationPreservesOrder) {
  const std::string dir = FreshDir("rotation");
  WalOptions options = Options(dir);
  options.segment_bytes = 128;  // Forces a rotation every few records.
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  uint64_t seq = 0;
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> values = {static_cast<double>(i)};
    ASSERT_TRUE((*writer)->AppendTicks(0, seq, 0, values).ok());
    seq += values.size();
  }
  ASSERT_TRUE((*writer)->SyncAll().ok());

  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(recovered->segments, 1);
  ASSERT_EQ(recovered->chunks.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(recovered->chunks[static_cast<size_t>(i)].seq0,
              static_cast<uint64_t>(i));
    EXPECT_EQ(recovered->chunks[static_cast<size_t>(i)].values[0],
              static_cast<double>(i));
  }
}

TEST_F(WalTest, MultiShardMergeIsGlobalSequenceOrder) {
  const std::string dir = FreshDir("multishard");
  auto writer = WalWriter::Open(Options(dir, /*shards=*/3));
  ASSERT_TRUE(writer.ok());
  // Interleave appends across shards exactly as a router would: global
  // sequence increases monotonically while shard choice hops around.
  uint64_t seq = 0;
  for (int i = 0; i < 30; ++i) {
    const int64_t shard = i % 3;
    const std::vector<double> values = {static_cast<double>(i),
                                        static_cast<double>(i) + 0.5};
    ASSERT_TRUE((*writer)->AppendTicks(shard, seq, shard, values).ok());
    seq += values.size();
  }
  ASSERT_TRUE((*writer)->SyncAll().ok());

  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->chunks.size(), 30u);
  uint64_t expected = 0;
  for (const auto& chunk : recovered->chunks) {
    EXPECT_EQ(chunk.seq0, expected);
    expected += chunk.values.size();
  }
  EXPECT_EQ(recovered->values, 60);
}

TEST_F(WalTest, RecoveryStartSeqSkipsAndTrims) {
  const std::string dir = FreshDir("start_seq");
  auto writer = WalWriter::Open(Options(dir));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0, 2.0, 3.0}}).ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 3, 0, {{4.0, 5.0, 6.0}}).ok());
  ASSERT_TRUE((*writer)->SyncAll().ok());

  // start_seq inside the second record: the first is skipped entirely, the
  // second is trimmed to its covered suffix.
  auto recovered = RecoverWal(Env::Default(), dir, 4);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->chunks.size(), 1u);
  EXPECT_EQ(recovered->chunks[0].seq0, 4u);
  EXPECT_EQ(recovered->chunks[0].values, (std::vector<double>{5.0, 6.0}));

  // start_seq past everything: nothing to replay.
  auto past = RecoverWal(Env::Default(), dir, 100);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->chunks.empty());
}

TEST_F(WalTest, RecoveryStopsAtSequenceGap) {
  const std::string dir = FreshDir("gap");
  auto writer = WalWriter::Open(Options(dir));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0, 2.0}}).ok());
  // Simulates a shard whose covering record was lost: sequence jumps.
  ASSERT_TRUE((*writer)->AppendTicks(0, 5, 0, {{9.0}}).ok());
  ASSERT_TRUE((*writer)->SyncAll().ok());

  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  // Replaying past the gap would reorder history; only the gap-free run
  // survives.
  ASSERT_EQ(recovered->chunks.size(), 1u);
  EXPECT_EQ(recovered->chunks[0].values, (std::vector<double>{1.0, 2.0}));
}

TEST_F(WalTest, TruncateDropsHistoryAndNeverReusesNames) {
  const std::string dir = FreshDir("truncate");
  auto writer = WalWriter::Open(Options(dir, /*shards=*/2));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0}}).ok());
  ASSERT_TRUE((*writer)->AppendDeliveryMark(0, 0).ok());
  ASSERT_TRUE((*writer)->Truncate().ok());
  ASSERT_TRUE((*writer)->AppendTicks(1, 1, 1, {{2.0}}).ok());
  ASSERT_TRUE((*writer)->SyncAll().ok());

  auto recovered = RecoverWal(Env::Default(), dir, 1);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->chunks.size(), 1u);
  EXPECT_EQ(recovered->chunks[0].seq0, 1u);
  EXPECT_FALSE(recovered->has_watermark);

  // Post-truncation file names must be fresh: a lingering pre-truncation
  // name could resurrect stale bytes after a crashed truncation.
  auto names = Env::Default()->ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    int64_t shard = 0;
    uint64_t index = 0;
    ASSERT_TRUE(ParseWalFileName(name, &shard, &index)) << name;
    EXPECT_GE(index, 3u) << name;  // Indexes 0-2 belonged to generation 1.
  }
}

TEST_F(WalTest, ReopenResumesIndexesPastExistingFiles) {
  const std::string dir = FreshDir("reopen");
  {
    auto writer = WalWriter::Open(Options(dir));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0}}).ok());
    ASSERT_TRUE((*writer)->SyncAll().ok());
  }
  auto names_before = Env::Default()->ListDir(dir);
  ASSERT_TRUE(names_before.ok());

  auto reopened = WalWriter::Open(Options(dir));
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->AppendTicks(0, 1, 0, {{2.0}}).ok());
  ASSERT_TRUE((*reopened)->SyncAll().ok());

  // Both generations' ticks recover, in order: reopening never clobbers
  // the previous incarnation's segments.
  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->chunks.size(), 2u);
  EXPECT_EQ(recovered->chunks[0].values, (std::vector<double>{1.0}));
  EXPECT_EQ(recovered->chunks[1].values, (std::vector<double>{2.0}));
}

TEST_F(WalTest, DeliveryWatermarkIsMaxAcrossMarks) {
  const std::string dir = FreshDir("watermark");
  auto writer = WalWriter::Open(Options(dir));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendDeliveryMark(5, 1).ok());
  ASSERT_TRUE((*writer)->AppendDeliveryMark(9, 0).ok());
  ASSERT_TRUE((*writer)->AppendDeliveryMark(9, 2).ok());
  ASSERT_TRUE((*writer)->AppendDeliveryMark(7, 3).ok());
  ASSERT_TRUE((*writer)->SyncAll().ok());

  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->has_watermark);
  EXPECT_EQ(recovered->watermark_seq, 9u);
  EXPECT_EQ(recovered->watermark_query_id, 2);
}

// ---------------------------------------------------------------------------
// Fsync policies, observed through the fault-injecting env.

TEST_F(WalTest, EveryRecordPolicySyncsEachAppend) {
  const std::string dir = FreshDir("fsync_every");
  FaultInjectingEnv fault(Env::Default());
  WalOptions options = Options(dir);
  options.fsync = FsyncPolicy::kEveryRecord;
  options.env = &fault;
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  const int64_t baseline = fault.syncs();
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0}}).ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 1, 0, {{2.0}}).ok());
  ASSERT_TRUE((*writer)->AppendDeliveryMark(1, 0).ok());
  EXPECT_EQ(fault.syncs() - baseline, 3);
  // At least one sync per payload record (segment-header appends at open
  // also sync under this policy, so >=, not ==).
  EXPECT_GE((*writer)->fsyncs(), (*writer)->appended_records());
}

TEST_F(WalTest, OsPolicyNeverSyncsOnAppend) {
  const std::string dir = FreshDir("fsync_os");
  FaultInjectingEnv fault(Env::Default());
  WalOptions options = Options(dir);
  options.env = &fault;
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  const int64_t baseline = fault.syncs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*writer)->AppendTicks(0, static_cast<uint64_t>(i), 0, {{1.0}}).ok());
  }
  ASSERT_TRUE((*writer)->MaybeSync(1'000'000'000ull).ok());
  EXPECT_EQ(fault.syncs(), baseline);
}

TEST_F(WalTest, IntervalPolicySyncsOncePerInterval) {
  const std::string dir = FreshDir("fsync_interval");
  FaultInjectingEnv fault(Env::Default());
  WalOptions options = Options(dir);
  options.fsync = FsyncPolicy::kInterval;
  options.fsync_interval_ms = 10;
  options.env = &fault;
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  const int64_t baseline = fault.syncs();
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0}}).ok());
  // Within the interval: no sync yet.
  ASSERT_TRUE((*writer)->MaybeSync(1'000'000ull).ok());
  EXPECT_EQ(fault.syncs(), baseline);
  // Past the interval: exactly the dirty segment syncs.
  ASSERT_TRUE((*writer)->MaybeSync(20'000'000ull).ok());
  EXPECT_GT(fault.syncs(), baseline);
  const int64_t after_first = fault.syncs();
  // Nothing dirty: another elapsed interval syncs nothing.
  ASSERT_TRUE((*writer)->MaybeSync(40'000'000ull).ok());
  EXPECT_EQ(fault.syncs(), after_first);
}

TEST_F(WalTest, FailedSyncSurfacesAsError) {
  const std::string dir = FreshDir("fsync_fail");
  FaultInjectingEnv fault(Env::Default());
  WalOptions options = Options(dir);
  options.fsync = FsyncPolicy::kEveryRecord;
  options.env = &fault;
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  fault.fail_syncs_after(0);
  const util::Status status = (*writer)->AppendTicks(0, 0, 0, {{1.0}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Torn-write property: a crash at ANY byte of the last record leaves a log
// that recovers to exactly the records before it.

TEST_F(WalTest, TornWriteAtEveryByteOffsetRecoversExactPrefix) {
  const std::string dir = FreshDir("torn_template");
  // Template log: 8 records on one shard.
  std::vector<std::vector<double>> payloads;
  {
    auto writer = WalWriter::Open(Options(dir));
    ASSERT_TRUE(writer.ok());
    uint64_t seq = 0;
    for (int i = 0; i < 8; ++i) {
      std::vector<double> values;
      for (int j = 0; j <= i; ++j) {
        values.push_back(i * 100.0 + j);
      }
      ASSERT_TRUE((*writer)->AppendTicks(0, seq, 0, values).ok());
      seq += values.size();
      payloads.push_back(std::move(values));
    }
    ASSERT_TRUE((*writer)->SyncAll().ok());
  }
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::string segment_name;
  for (const std::string& name : *names) {
    int64_t shard = 0;
    uint64_t index = 0;
    if (ParseWalFileName(name, &shard, &index) && shard == 0) {
      segment_name = name;
    }
  }
  ASSERT_FALSE(segment_name.empty());
  auto full = env->ReadFile(dir + "/" + segment_name);
  ASSERT_TRUE(full.ok());

  // Last record's frame span within the file.
  std::vector<uint8_t> last_frame;
  AppendRecord(RecordType::kTicks,
               TicksRecord{28, 0, payloads.back()}.Encode(), &last_frame);
  ASSERT_GE(full->size(), last_frame.size());
  const size_t last_begin = full->size() - last_frame.size();

  const std::string torn_dir = FreshDir("torn_run");
  for (size_t cut = 0; cut <= last_frame.size(); ++cut) {
    // The log as a crash at byte `last_begin + cut` would leave it.
    {
      auto names_torn = env->ListDir(torn_dir);
      ASSERT_TRUE(names_torn.ok());
      for (const std::string& name : *names_torn) {
        ASSERT_TRUE(env->RemoveFile(torn_dir + "/" + name).ok());
      }
      auto file = env->NewWritableFile(torn_dir + "/" + segment_name,
                                       /*truncate=*/true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)
                      ->Append(std::span<const uint8_t>(full->data(),
                                                        last_begin + cut))
                      .ok());
      ASSERT_TRUE((*file)->Close().ok());
    }
    auto recovered = RecoverWal(env, torn_dir, 0);
    ASSERT_TRUE(recovered.ok()) << "cut=" << cut;
    const bool complete = cut == last_frame.size();
    // A cut exactly on a record boundary (cut == 0) looks like a clean
    // shutdown — no stray bytes — so only mid-frame cuts read as torn.
    EXPECT_EQ(recovered->torn_tail, !complete && cut != 0) << "cut=" << cut;
    const size_t want = complete ? payloads.size() : payloads.size() - 1;
    ASSERT_EQ(recovered->chunks.size(), want) << "cut=" << cut;
    for (size_t i = 0; i < want; ++i) {
      EXPECT_EQ(recovered->chunks[i].values, payloads[i]) << "cut=" << cut;
    }
  }
}

TEST_F(WalTest, CorruptByteInLastRecordDropsOnlyThatRecord) {
  const std::string dir = FreshDir("corrupt_template");
  std::vector<std::vector<double>> payloads;
  {
    auto writer = WalWriter::Open(Options(dir));
    ASSERT_TRUE(writer.ok());
    uint64_t seq = 0;
    for (int i = 0; i < 4; ++i) {
      std::vector<double> values = {static_cast<double>(i), 0.5};
      ASSERT_TRUE((*writer)->AppendTicks(0, seq, 0, values).ok());
      seq += values.size();
      payloads.push_back(std::move(values));
    }
    ASSERT_TRUE((*writer)->SyncAll().ok());
  }
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::string segment_name;
  for (const std::string& name : *names) {
    int64_t shard = 0;
    uint64_t index = 0;
    if (ParseWalFileName(name, &shard, &index) && shard == 0) {
      segment_name = name;
    }
  }
  auto full = env->ReadFile(dir + "/" + segment_name);
  ASSERT_TRUE(full.ok());
  std::vector<uint8_t> last_frame;
  AppendRecord(RecordType::kTicks, TicksRecord{6, 0, payloads.back()}.Encode(),
               &last_frame);
  const size_t last_begin = full->size() - last_frame.size();

  const std::string corrupt_dir = FreshDir("corrupt_run");
  for (size_t offset = last_begin; offset < full->size(); ++offset) {
    {
      auto names_prev = env->ListDir(corrupt_dir);
      ASSERT_TRUE(names_prev.ok());
      for (const std::string& name : *names_prev) {
        ASSERT_TRUE(env->RemoveFile(corrupt_dir + "/" + name).ok());
      }
      std::vector<uint8_t> bytes = *full;
      bytes[offset] ^= 0x40;
      auto file = env->NewWritableFile(corrupt_dir + "/" + segment_name,
                                       /*truncate=*/true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(bytes).ok());
      ASSERT_TRUE((*file)->Close().ok());
    }
    auto recovered = RecoverWal(env, corrupt_dir, 0);
    ASSERT_TRUE(recovered.ok()) << "offset=" << offset;
    // A flip anywhere in the last frame invalidates it (CRC or length),
    // leaving exactly the earlier records; a flipped length byte may also
    // swallow the tail, but never a prior record.
    ASSERT_GE(recovered->chunks.size(), payloads.size() - 1)
        << "offset=" << offset;
    for (size_t i = 0; i + 1 < payloads.size(); ++i) {
      EXPECT_EQ(recovered->chunks[i].values, payloads[i])
          << "offset=" << offset;
    }
  }
}

// ---------------------------------------------------------------------------
// Torn writes through the fault env: the writer reports the failure and the
// bytes that did land recover cleanly.

TEST_F(WalTest, TornWriteViaFaultBudgetRecoversPrefix) {
  const std::string dir = FreshDir("fault_torn");
  FaultInjectingEnv fault(Env::Default());
  WalOptions options = Options(dir);
  options.env = &fault;
  auto writer = WalWriter::Open(options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0, 2.0}}).ok());
  // Allow 5 more bytes, then tear: the next record is cut mid-frame.
  fault.set_write_budget(5);
  const util::Status torn = (*writer)->AppendTicks(0, 2, 0, {{3.0, 4.0}});
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), util::StatusCode::kIoError);

  auto recovered = RecoverWal(Env::Default(), dir, 0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->torn_tail);
  ASSERT_EQ(recovered->chunks.size(), 1u);
  EXPECT_EQ(recovered->chunks[0].values, (std::vector<double>{1.0, 2.0}));
}

TEST_F(WalTest, MetricsSnapshotCarriesAllFamilies) {
  const std::string dir = FreshDir("metrics");
  auto writer = WalWriter::Open(Options(dir));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTicks(0, 0, 0, {{1.0}}).ok());
  ASSERT_TRUE((*writer)->SyncAll().ok());
  ASSERT_TRUE((*writer)->Truncate().ok());
  (*writer)->RecordReplayedRecords(7);

  const obs::MetricsSnapshot snapshot = (*writer)->MetricsSnapshot();
  std::vector<std::string> names;
  for (const auto& family : snapshot.families) {
    names.push_back(family.name);
  }
  for (const char* want :
       {"spring_wal_appended_records_total", "spring_wal_fsyncs_total",
        "spring_wal_bytes_total", "spring_wal_replayed_records_total",
        "spring_wal_truncations_total"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
}

}  // namespace
}  // namespace wal
}  // namespace springdtw
