#include "gen/warp.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "core/subsequence_scan.h"
#include "dtw/dtw.h"
#include "gen/signal.h"
#include "util/random.h"

namespace springdtw {
namespace gen {
namespace {

TEST(TimeWarpTest, KnotsAreMonotone) {
  util::Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const TimeWarp warp = RandomTimeWarp(rng, 200, 5, 0.3);
    ASSERT_GE(warp.source.size(), 2u);
    ASSERT_EQ(warp.source.size(), warp.target.size());
    EXPECT_DOUBLE_EQ(warp.source.front(), 0.0);
    EXPECT_DOUBLE_EQ(warp.target.front(), 0.0);
    EXPECT_DOUBLE_EQ(warp.source.back(), 199.0);
    for (size_t k = 1; k < warp.source.size(); ++k) {
      EXPECT_GT(warp.source[k], warp.source[k - 1]);
      EXPECT_GT(warp.target[k], warp.target[k - 1]);
    }
  }
}

TEST(TimeWarpTest, OutputLengthTracksStretch) {
  util::Rng rng(22);
  // With max_stretch 0.3, the warped length stays within ~[0.7, 1.3]x.
  for (int trial = 0; trial < 50; ++trial) {
    const TimeWarp warp = RandomTimeWarp(rng, 500, 8, 0.3);
    EXPECT_GE(warp.target_length(), 300);
    EXPECT_LE(warp.target_length(), 700);
  }
}

TEST(ApplyTimeWarpTest, IdentityWarpIsIdentity) {
  const std::vector<double> v{1.0, 4.0, 2.0, 8.0, 5.0};
  TimeWarp identity;
  identity.source = {0.0, 4.0};
  identity.target = {0.0, 4.0};
  const std::vector<double> out = ApplyTimeWarp(v, identity);
  ASSERT_EQ(out.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

TEST(ApplyTimeWarpTest, EndpointsPreserved) {
  util::Rng rng(23);
  const std::vector<double> v = GaussianNoise(rng, 100, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> warped = RandomlyWarp(rng, v, 4, 0.4);
    ASSERT_GE(warped.size(), 2u);
    EXPECT_NEAR(warped.front(), v.front(), 1e-9);
    EXPECT_NEAR(warped.back(), v.back(), 1e-9);
  }
}

TEST(ApplyTimeWarpTest, ValueRangeIsPreserved) {
  // Interpolation cannot overshoot the source's range.
  util::Rng rng(24);
  const std::vector<double> v = GaussianNoise(rng, 150, 2.0);
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());
  for (int trial = 0; trial < 20; ++trial) {
    for (const double x : RandomlyWarp(rng, v, 6, 0.3)) {
      EXPECT_GE(x, lo - 1e-9);
      EXPECT_LE(x, hi + 1e-9);
    }
  }
}

// The property that justifies the whole paper: DTW absorbs time warps that
// wreck lock-step (Euclidean) comparison.
TEST(WarpInvarianceTest, DtwIsSmallUnderWarpWhereEuclideanIsLarge) {
  util::Rng rng(25);
  const std::vector<double> base = Sine(400, 80.0, 1.0);
  int dtw_wins = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> warped = RandomlyWarp(rng, base, 6, 0.25);
    warped.resize(base.size(),
                  warped.back());  // Pad/crop for the Euclidean compare.
    double euclidean = 0.0;
    for (size_t i = 0; i < base.size(); ++i) {
      const double d = base[i] - warped[i];
      euclidean += d * d;
    }
    const double dtw = dtw::DtwDistance(base, warped);
    if (dtw * 10.0 < euclidean) ++dtw_wins;
  }
  EXPECT_GE(dtw_wins, 15);  // DTW is >=10x closer on most draws.
}

TEST(MultivariateWarpTest, AllChannelsWarpTogether) {
  util::Rng rng(27);
  ts::VectorSeries series(3);
  for (int t = 0; t < 60; ++t) {
    series.AppendRow(std::vector<double>{
        static_cast<double>(t), 2.0 * static_cast<double>(t),
        -static_cast<double>(t)});
  }
  const TimeWarp warp = RandomTimeWarp(rng, 60, 4, 0.3);
  const ts::VectorSeries warped = ApplyTimeWarpMultivariate(series, warp);
  EXPECT_EQ(warped.dims(), 3);
  EXPECT_EQ(warped.size(), warp.target_length());
  // The inter-channel relationships survive (same time map everywhere):
  // channel1 = 2 * channel0, channel2 = -channel0 at every output tick.
  for (int64_t t = 0; t < warped.size(); ++t) {
    const auto row = warped.Row(t);
    EXPECT_NEAR(row[1], 2.0 * row[0], 1e-9);
    EXPECT_NEAR(row[2], -row[0], 1e-9);
  }
}

TEST(MultivariateWarpTest, WarpedMotionStaysCloseUnderMultivariateDtw) {
  util::Rng rng(28);
  // A smooth multivariate trajectory; its warped self is DTW-close while
  // a different trajectory is DTW-far.
  ts::VectorSeries base(4);
  for (int t = 0; t < 120; ++t) {
    const double phase = 0.1 * static_cast<double>(t);
    base.AppendRow(std::vector<double>{std::sin(phase), std::cos(phase),
                                       std::sin(2.0 * phase),
                                       std::cos(3.0 * phase)});
  }
  const TimeWarp warp = RandomTimeWarp(rng, 120, 5, 0.25);
  const ts::VectorSeries warped = ApplyTimeWarpMultivariate(base, warp);

  ts::VectorSeries other(4);
  for (int t = 0; t < 120; ++t) {
    const double phase = 0.1 * static_cast<double>(t);
    other.AppendRow(std::vector<double>{std::cos(2.0 * phase),
                                        std::sin(3.0 * phase),
                                        std::cos(phase), std::sin(phase)});
  }
  const double self = dtw::DtwDistanceMultivariate(base, warped);
  const double cross = dtw::DtwDistanceMultivariate(base, other);
  EXPECT_LT(self * 5.0, cross);
}

TEST(WarpInvarianceTest, SpringFindsWarpedPatternInStream) {
  // Plant a warped copy of the query inside noise: SPRING must find it
  // with a small distance at the planted location.
  util::Rng rng(26);
  const std::vector<double> pattern = Sine(300, 60.0, 1.0);
  std::vector<double> warped = RandomlyWarp(rng, pattern, 5, 0.25);

  std::vector<double> stream = GaussianNoise(rng, 1000, 0.05);
  const int64_t plant_at = 400;
  for (size_t i = 0; i < warped.size(); ++i) {
    stream[static_cast<size_t>(plant_at) + i] += warped[i];
  }

  const core::Match best =
      core::BestSubsequence(ts::Series(stream), ts::Series(pattern));
  EXPECT_NEAR(static_cast<double>(best.start),
              static_cast<double>(plant_at), 30.0);
  EXPECT_NEAR(static_cast<double>(best.end),
              static_cast<double>(plant_at +
                                  static_cast<int64_t>(warped.size())),
              30.0);
  // Tiny compared to the pattern's own energy (~150 for a 300-tick sine).
  EXPECT_LT(best.distance, 20.0);
}

}  // namespace
}  // namespace gen
}  // namespace springdtw
