#include "ts/paa.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace springdtw {
namespace ts {
namespace {

TEST(PaaTest, ReducesWithExactDivision) {
  const std::vector<double> v{1.0, 3.0, 2.0, 4.0, 0.0, 6.0};
  const std::vector<PaaSegment> segments = PaaReduce(v, 2);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_DOUBLE_EQ(segments[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(segments[0].min, 1.0);
  EXPECT_DOUBLE_EQ(segments[0].max, 3.0);
  EXPECT_EQ(segments[0].length, 2);
  EXPECT_DOUBLE_EQ(segments[2].mean, 3.0);
}

TEST(PaaTest, LastSegmentMayBeShorter) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<PaaSegment> segments = PaaReduce(v, 2);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[2].length, 1);
  EXPECT_DOUBLE_EQ(segments[2].mean, 5.0);
}

TEST(PaaTest, SegmentSizeOneIsIdentity) {
  const std::vector<double> v{1.5, -2.0, 0.25};
  const std::vector<PaaSegment> segments = PaaReduce(v, 1);
  ASSERT_EQ(segments.size(), 3u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(segments[i].mean, v[i]);
    EXPECT_DOUBLE_EQ(segments[i].min, v[i]);
    EXPECT_DOUBLE_EQ(segments[i].max, v[i]);
  }
}

TEST(PaaTest, RangesBracketTheData) {
  util::Rng rng(81);
  std::vector<double> v(301);
  for (double& x : v) x = rng.Gaussian();
  const std::vector<PaaSegment> segments = PaaReduce(v, 7);
  size_t idx = 0;
  for (const PaaSegment& s : segments) {
    for (int64_t k = 0; k < s.length; ++k, ++idx) {
      EXPECT_LE(s.min, v[idx]);
      EXPECT_GE(s.max, v[idx]);
      EXPECT_LE(s.min, s.mean);
      EXPECT_GE(s.max, s.mean);
    }
  }
  EXPECT_EQ(idx, v.size());
}

TEST(PaaTest, ReconstructPreservesLength) {
  util::Rng rng(82);
  std::vector<double> v(100);
  for (double& x : v) x = rng.Gaussian();
  for (const int64_t seg : {1, 3, 7, 100, 1000}) {
    EXPECT_EQ(PaaReconstruct(PaaReduce(v, seg)).size(), v.size());
  }
}

TEST(PaaTest, ErrorIsZeroAtSegmentSizeOneAndGrows) {
  util::Rng rng(83);
  std::vector<double> v(256);
  for (double& x : v) x = rng.Gaussian();
  EXPECT_DOUBLE_EQ(PaaError(v, 1), 0.0);
  const double e4 = PaaError(v, 4);
  const double e64 = PaaError(v, 64);
  EXPECT_GT(e4, 0.0);
  EXPECT_GE(e64, e4);  // Coarser granularity cannot fit better on noise.
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
