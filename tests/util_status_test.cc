#include "util/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad epsilon");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, OkStatusIsConvertedToInternalError) {
  StatusOr<int> v = Status();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailingStep() { return OutOfRangeError("step failed"); }

Status Pipeline() {
  SPRINGDTW_RETURN_IF_ERROR(Status::Ok());
  SPRINGDTW_RETURN_IF_ERROR(FailingStep());
  return InternalError("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(Pipeline().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace util
}  // namespace springdtw
