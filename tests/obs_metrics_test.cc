#include "obs/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace springdtw {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterIncrementsAndSnapshots) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total", "total requests");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const FamilySnapshot* family = snapshot.Find("requests_total");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->kind, MetricKind::kCounter);
  EXPECT_EQ(family->help, "total requests");
  ASSERT_EQ(family->series.size(), 1u);
  EXPECT_EQ(family->series[0].counter_value, 42);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  const Labels labels = {Label{"stream", "s0"}, Label{"query", "q0"}};
  Counter* a = registry.GetCounter("ticks_total", "ticks", labels);
  Counter* b = registry.GetCounter("ticks_total", "ignored later", labels);
  EXPECT_EQ(a, b);

  // Different labels -> a different series in the same family.
  Counter* c = registry.GetCounter("ticks_total", "ticks",
                                   {Label{"stream", "s1"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.num_families(), 1);
  EXPECT_EQ(registry.Snapshot().Find("ticks_total")->series.size(), 2u);
}

TEST(MetricsRegistryTest, HelpIsRecordedOnFirstUseOnly) {
  MetricsRegistry registry;
  registry.GetGauge("depth", "first help");
  registry.GetGauge("depth", "second help");
  EXPECT_EQ(registry.Snapshot().Find("depth")->help, "first help");
}

TEST(MetricsRegistryTest, InstrumentPointersStableAcrossGrowth) {
  MetricsRegistry registry;
  std::vector<Counter*> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(registry.GetCounter(
        "c", "", {Label{"i", std::to_string(i)}}));
  }
  // Adding 100 series forced vector growth; earlier handles must still
  // point at live instruments.
  for (int i = 0; i < 100; ++i) handles[i]->Increment(i);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const FamilySnapshot* family = snapshot.Find("c");
  ASSERT_NE(family, nullptr);
  ASSERT_EQ(family->series.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(family->series[i].counter_value, i);
  }
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("temperature", "");
  g->Set(20.5);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->value(), 20.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("temperature")
                       ->series[0].gauge_value,
                   20.0);
}

TEST(MetricsRegistryTest, HistogramExactQuantilesWhileSmall) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", "");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  EXPECT_TRUE(h->exact());
  EXPECT_EQ(h->count(), 100);
  EXPECT_DOUBLE_EQ(h->sum(), 5050.0);
  EXPECT_NEAR(h->Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h->Quantile(0.99), 99.0, 1.0);

  const HistogramSnapshot snap =
      registry.Snapshot().Find("latency")->series[0].histogram;
  EXPECT_EQ(snap.count, 100);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean, 50.5);
  EXPECT_TRUE(snap.exact);
  EXPECT_NEAR(snap.p99, 99.0, 1.0);
}

TEST(MetricsRegistryTest, HistogramResetClears) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", "");
  h->Observe(5.0);
  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_TRUE(h->exact());
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsAPointInTimeCopy) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("n", "");
  c->Increment(7);
  const MetricsSnapshot before = registry.Snapshot();
  c->Increment(100);
  // The earlier snapshot must not see later increments.
  EXPECT_EQ(before.Find("n")->series[0].counter_value, 7);
  EXPECT_EQ(registry.Snapshot().Find("n")->series[0].counter_value, 107);
}

TEST(MetricsRegistryTest, FamiliesKeepRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("zebra", "");
  registry.GetGauge("alpha", "");
  registry.GetHistogram("mid", "");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.families.size(), 3u);
  EXPECT_EQ(snapshot.families[0].name, "zebra");
  EXPECT_EQ(snapshot.families[1].name, "alpha");
  EXPECT_EQ(snapshot.families[2].name, "mid");
}

TEST(MetricsSnapshotTest, FindReturnsNullForUnknownName) {
  MetricsRegistry registry;
  registry.GetCounter("known", "");
  EXPECT_EQ(registry.Snapshot().Find("unknown"), nullptr);
}

TEST(MergeSnapshotsTest, EmptyInputsProduceEmptyMerge) {
  EXPECT_TRUE(MergeSnapshots({}).families.empty());
  // A vector of empty snapshots is just as empty.
  std::vector<MetricsSnapshot> shards(3);
  EXPECT_TRUE(MergeSnapshots(shards).families.empty());
  // Empty shards mixed with a real one contribute nothing.
  MetricsRegistry registry;
  registry.GetCounter("n", "")->Increment(7);
  shards[1] = registry.Snapshot();
  const MetricsSnapshot merged = MergeSnapshots(shards);
  ASSERT_EQ(merged.families.size(), 1u);
  EXPECT_EQ(merged.Find("n")->series[0].counter_value, 7);
}

TEST(MergeSnapshotsTest, DisjointLabelSetsUnionWithoutCrossTalk) {
  MetricsRegistry a;
  a.GetCounter("ticks", "", {Label{"worker", "0"}})->Increment(10);
  a.GetCounter("ticks", "", {Label{"worker", "1"}})->Increment(20);
  MetricsRegistry b;
  b.GetCounter("ticks", "", {Label{"worker", "2"}})->Increment(30);
  // Same key, different value — and a series with extra label cardinality.
  b.GetCounter("ticks", "", {Label{"worker", "0"}, Label{"shard", "x"}})
      ->Increment(40);

  const MetricsSnapshot merged = MergeSnapshots({a.Snapshot(), b.Snapshot()});
  const FamilySnapshot* family = merged.Find("ticks");
  ASSERT_NE(family, nullptr);
  ASSERT_EQ(family->series.size(), 4u) << "disjoint label sets must not fold";
  int64_t total = 0;
  for (const auto& series : family->series) total += series.counter_value;
  EXPECT_EQ(total, 100);
}

TEST(MergeSnapshotsTest, SharedSeriesSumCountersAndGauges) {
  MetricsRegistry a;
  a.GetCounter("c", "", {Label{"k", "v"}})->Increment(1);
  a.GetGauge("g", "")->Set(2.5);
  MetricsRegistry b;
  b.GetCounter("c", "", {Label{"k", "v"}})->Increment(2);
  b.GetGauge("g", "")->Set(0.5);
  const MetricsSnapshot merged = MergeSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(merged.Find("c")->series[0].counter_value, 3);
  EXPECT_DOUBLE_EQ(merged.Find("g")->series[0].gauge_value, 3.0);
}

TEST(MergeSnapshotsTest, HistogramMergeWithMismatchedLayouts) {
  // Shard A stays small enough to be exact; shard B overflows into the
  // sketch — the merged summary must blend them (count-weighted), keep the
  // true extremes and totals, and drop the `exact` claim.
  MetricsRegistry a;
  Histogram* ha = a.GetHistogram("lat", "");
  for (int i = 1; i <= 10; ++i) ha->Observe(static_cast<double>(i));
  MetricsRegistry b;
  Histogram* hb = b.GetHistogram("lat", "");
  const int64_t n = Histogram::kMaxExactSamples + 10;
  for (int64_t i = 0; i < n; ++i) hb->Observe(1000.0);
  const HistogramSnapshot b_snap =
      b.Snapshot().Find("lat")->series[0].histogram;
  ASSERT_FALSE(b_snap.exact) << "shard B must overflow the exact window";

  const MetricsSnapshot merged = MergeSnapshots({a.Snapshot(), b.Snapshot()});
  const HistogramSnapshot& h = merged.Find("lat")->series[0].histogram;
  EXPECT_EQ(h.count, n + 10);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.sum, 55.0 + static_cast<double>(n) * 1000.0);
  EXPECT_FALSE(h.exact);
  // Quantile blend is approximate: sketch quantiles report log-bucket upper
  // edges, so allow one bucket (~7%) of slack past the true max.
  EXPECT_GE(h.p50, 1.0);
  EXPECT_LE(h.p99, 1100.0);
}

TEST(MergeSnapshotsTest, ZeroCountHistogramShardIsANoOp) {
  MetricsRegistry a;
  a.GetHistogram("lat", "")->Observe(5.0);
  MetricsRegistry b;
  b.GetHistogram("lat", "");  // registered, never observed
  const MetricsSnapshot merged = MergeSnapshots({a.Snapshot(), b.Snapshot()});
  const HistogramSnapshot& h = merged.Find("lat")->series[0].histogram;
  EXPECT_EQ(h.count, 1);
  EXPECT_DOUBLE_EQ(h.sum, 5.0);
  EXPECT_TRUE(h.exact) << "merging an empty shard must not poison exactness";

  // Order independence for the empty shard.
  const MetricsSnapshot reversed =
      MergeSnapshots({b.Snapshot(), a.Snapshot()});
  EXPECT_EQ(reversed.Find("lat")->series[0].histogram.count, 1);
  EXPECT_TRUE(reversed.Find("lat")->series[0].histogram.exact);
}

TEST(MetricKindTest, Names) {
  EXPECT_EQ(MetricKindName(MetricKind::kCounter), "counter");
  EXPECT_EQ(MetricKindName(MetricKind::kGauge), "gauge");
  EXPECT_EQ(MetricKindName(MetricKind::kHistogram), "histogram");
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
