#include "obs/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace springdtw {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterIncrementsAndSnapshots) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total", "total requests");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const FamilySnapshot* family = snapshot.Find("requests_total");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->kind, MetricKind::kCounter);
  EXPECT_EQ(family->help, "total requests");
  ASSERT_EQ(family->series.size(), 1u);
  EXPECT_EQ(family->series[0].counter_value, 42);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  const Labels labels = {Label{"stream", "s0"}, Label{"query", "q0"}};
  Counter* a = registry.GetCounter("ticks_total", "ticks", labels);
  Counter* b = registry.GetCounter("ticks_total", "ignored later", labels);
  EXPECT_EQ(a, b);

  // Different labels -> a different series in the same family.
  Counter* c = registry.GetCounter("ticks_total", "ticks",
                                   {Label{"stream", "s1"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.num_families(), 1);
  EXPECT_EQ(registry.Snapshot().Find("ticks_total")->series.size(), 2u);
}

TEST(MetricsRegistryTest, HelpIsRecordedOnFirstUseOnly) {
  MetricsRegistry registry;
  registry.GetGauge("depth", "first help");
  registry.GetGauge("depth", "second help");
  EXPECT_EQ(registry.Snapshot().Find("depth")->help, "first help");
}

TEST(MetricsRegistryTest, InstrumentPointersStableAcrossGrowth) {
  MetricsRegistry registry;
  std::vector<Counter*> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(registry.GetCounter(
        "c", "", {Label{"i", std::to_string(i)}}));
  }
  // Adding 100 series forced vector growth; earlier handles must still
  // point at live instruments.
  for (int i = 0; i < 100; ++i) handles[i]->Increment(i);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const FamilySnapshot* family = snapshot.Find("c");
  ASSERT_NE(family, nullptr);
  ASSERT_EQ(family->series.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(family->series[i].counter_value, i);
  }
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("temperature", "");
  g->Set(20.5);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->value(), 20.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("temperature")
                       ->series[0].gauge_value,
                   20.0);
}

TEST(MetricsRegistryTest, HistogramExactQuantilesWhileSmall) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", "");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  EXPECT_TRUE(h->exact());
  EXPECT_EQ(h->count(), 100);
  EXPECT_DOUBLE_EQ(h->sum(), 5050.0);
  EXPECT_NEAR(h->Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h->Quantile(0.99), 99.0, 1.0);

  const HistogramSnapshot snap =
      registry.Snapshot().Find("latency")->series[0].histogram;
  EXPECT_EQ(snap.count, 100);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean, 50.5);
  EXPECT_TRUE(snap.exact);
  EXPECT_NEAR(snap.p99, 99.0, 1.0);
}

TEST(MetricsRegistryTest, HistogramResetClears) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", "");
  h->Observe(5.0);
  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_TRUE(h->exact());
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsAPointInTimeCopy) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("n", "");
  c->Increment(7);
  const MetricsSnapshot before = registry.Snapshot();
  c->Increment(100);
  // The earlier snapshot must not see later increments.
  EXPECT_EQ(before.Find("n")->series[0].counter_value, 7);
  EXPECT_EQ(registry.Snapshot().Find("n")->series[0].counter_value, 107);
}

TEST(MetricsRegistryTest, FamiliesKeepRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("zebra", "");
  registry.GetGauge("alpha", "");
  registry.GetHistogram("mid", "");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.families.size(), 3u);
  EXPECT_EQ(snapshot.families[0].name, "zebra");
  EXPECT_EQ(snapshot.families[1].name, "alpha");
  EXPECT_EQ(snapshot.families[2].name, "mid");
}

TEST(MetricsSnapshotTest, FindReturnsNullForUnknownName) {
  MetricsRegistry registry;
  registry.GetCounter("known", "");
  EXPECT_EQ(registry.Snapshot().Find("unknown"), nullptr);
}

TEST(MetricKindTest, Names) {
  EXPECT_EQ(MetricKindName(MetricKind::kCounter), "counter");
  EXPECT_EQ(MetricKindName(MetricKind::kGauge), "gauge");
  EXPECT_EQ(MetricKindName(MetricKind::kHistogram), "histogram");
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
