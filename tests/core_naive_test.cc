// The Naive baseline must be *functionally identical* to SPRING (same
// matches, same report times, same best-match) while paying O(n*m) per tick.

#include "core/naive.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "ts/series.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

ts::Series RandomStream(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  double x = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.3);
    v[static_cast<size_t>(t)] = x;
  }
  return ts::Series(std::move(v));
}

class NaiveEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NaiveEquivalenceTest, TickForTickAgreementWithSpring) {
  util::Rng rng(GetParam());
  const int64_t n = 120;
  const int64_t m = rng.UniformInt(2, 8);
  const ts::Series stream = RandomStream(rng, n);
  std::vector<double> query(static_cast<size_t>(m));
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);

  SpringOptions options;
  options.epsilon = rng.Uniform(0.5, 5.0);
  SpringMatcher spring(query, options);
  NaiveMatcher naive(query, options);

  Match spring_match;
  Match naive_match;
  for (int64_t t = 0; t < n; ++t) {
    const bool spring_reported = spring.Update(stream[t], &spring_match);
    const bool naive_reported = naive.Update(stream[t], &naive_match);
    ASSERT_EQ(spring_reported, naive_reported) << "tick " << t;
    if (spring_reported) {
      EXPECT_EQ(spring_match.start, naive_match.start);
      EXPECT_EQ(spring_match.end, naive_match.end);
      EXPECT_NEAR(spring_match.distance, naive_match.distance, 1e-9);
      EXPECT_EQ(spring_match.report_time, naive_match.report_time);
    }
  }
  const bool spring_flushed = spring.Flush(&spring_match);
  const bool naive_flushed = naive.Flush(&naive_match);
  ASSERT_EQ(spring_flushed, naive_flushed);
  if (spring_flushed) {
    EXPECT_EQ(spring_match.start, naive_match.start);
    EXPECT_EQ(spring_match.end, naive_match.end);
    EXPECT_NEAR(spring_match.distance, naive_match.distance, 1e-9);
  }

  ASSERT_EQ(spring.has_best(), naive.has_best());
  if (spring.has_best()) {
    EXPECT_EQ(spring.best().start, naive.best().start);
    EXPECT_EQ(spring.best().end, naive.best().end);
    EXPECT_NEAR(spring.best().distance, naive.best().distance, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(NaiveMatcherTest, ReproducesThePapersWorkedExample) {
  // Figure 5 / Example 1 again, via the O(n*m)-per-tick baseline.
  SpringOptions options;
  options.epsilon = 15.0;
  NaiveMatcher naive({11.0, 6.0, 9.0, 4.0}, options);
  std::vector<Match> reports;
  Match match;
  for (const double x : {5.0, 12.0, 6.0, 10.0, 6.0, 5.0, 13.0}) {
    if (naive.Update(x, &match)) reports.push_back(match);
  }
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].start, 1);
  EXPECT_EQ(reports[0].end, 4);
  EXPECT_DOUBLE_EQ(reports[0].distance, 6.0);
  EXPECT_EQ(reports[0].report_time, 6);
}

TEST(NaiveMatcherTest, FootprintGrowsLinearlyWithStream) {
  SpringOptions options;
  options.epsilon = -1.0;
  NaiveMatcher naive(std::vector<double>(16, 0.0), options);
  for (int t = 0; t < 100; ++t) naive.Update(0.0, nullptr);
  const int64_t bytes_100 = naive.Footprint().TotalBytes();
  for (int t = 0; t < 900; ++t) naive.Update(0.0, nullptr);
  const int64_t bytes_1000 = naive.Footprint().TotalBytes();
  // Roughly 10x the matrices (within allocator slack).
  EXPECT_GT(bytes_1000, 6 * bytes_100);
}

TEST(NaiveMatcherTest, ModelBytesMatchesLemma3) {
  // n matrices of two (m+1)-value arrays of doubles.
  EXPECT_EQ(NaiveMatcher::ModelBytes(1000, 255), 1000 * 2 * 256 * 8);
}

TEST(SuperNaiveTest, AllSubsequenceDistancesDiagonal) {
  // D(X[a:a], Y) for a singleton and m=1 is just the squared difference.
  const ts::Series stream({1.0, 2.0, 3.0});
  const ts::Series query({2.0});
  const auto all = AllSubsequenceDistances(stream, query);
  EXPECT_DOUBLE_EQ(all[0][0], 1.0);
  EXPECT_DOUBLE_EQ(all[1][0], 0.0);
  EXPECT_DOUBLE_EQ(all[2][0], 1.0);
  // Longer subsequences accumulate.
  EXPECT_DOUBLE_EQ(all[0][1], 1.0);  // (1,2) vs (2): 1 + 0.
  EXPECT_DOUBLE_EQ(all[0][2], 2.0);  // (1,2,3) vs (2): 1 + 0 + 1.
}

TEST(SuperNaiveTest, BestMatchPrefersEarliestEndOnTies) {
  const ts::Series stream({5.0, 1.0, 9.0, 1.0});
  const ts::Series query({1.0});
  const Match best = SuperNaiveBestMatch(stream, query);
  EXPECT_EQ(best.start, 1);
  EXPECT_EQ(best.end, 1);
  EXPECT_DOUBLE_EQ(best.distance, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
