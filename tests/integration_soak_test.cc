// Soak test: a monitor engine with several streams and queries digests a
// long mixed workload; memory stays flat, matchers stay healthy, and a
// mid-run checkpoint restores to the same trajectory.

#include <vector>

#include <gtest/gtest.h>

#include "gen/ecg.h"
#include "gen/masked_chirp.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "util/random.h"

namespace springdtw {
namespace {

TEST(SoakTest, MultiStreamEngineStaysHealthyOverLongRun) {
  gen::MaskedChirpOptions chirp_options;
  chirp_options.length = 60000;
  const auto chirp = GenerateMaskedChirp(chirp_options, 512);

  gen::EcgOptions ecg_options;
  ecg_options.length = 60000;
  const auto ecg = GenerateEcg(ecg_options);

  monitor::MonitorEngine engine;
  monitor::CollectSink sink;
  engine.AddSink(&sink);

  const int64_t chirp_stream = engine.AddStream("chirp");
  const int64_t ecg_stream = engine.AddStream("ecg");

  core::SpringOptions chirp_query_options;
  chirp_query_options.epsilon = 30.0;
  ASSERT_TRUE(engine
                  .AddQuery(chirp_stream, "sine", chirp.query.values(),
                            chirp_query_options)
                  .ok());
  core::SpringOptions ecg_query_options;
  ecg_query_options.epsilon = 0.5;
  ASSERT_TRUE(engine
                  .AddQuery(ecg_stream, "ectopic",
                            ecg.anomalous_beat.values(), ecg_query_options)
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery(ecg_stream, "normal",
                            ecg.normal_beat.values(), ecg_query_options)
                  .ok());

  const int64_t footprint_early = engine.Footprint().TotalBytes();
  util::Rng rng(71);
  for (int64_t t = 0; t < 60000; ++t) {
    ASSERT_TRUE(engine.Push(chirp_stream, chirp.stream[t]).ok());
    // Occasionally drop an ECG reading to exercise online repair.
    const double ecg_value =
        rng.Bernoulli(0.01) ? ts::MissingValue() : ecg.stream[t];
    ASSERT_TRUE(engine.Push(ecg_stream, ecg_value).ok());
  }
  engine.FlushAll();

  // O(m) memory: identical after 60k ticks across every matcher.
  EXPECT_EQ(engine.Footprint().TotalBytes(), footprint_early);
  // Work happened: both streams produced matches ("normal" fires on every
  // beat group; the chirp query on its episodes).
  EXPECT_GT(sink.entries().size(), 10u);
  // Ticks were accounted per query.
  EXPECT_EQ(engine.stats(0).ticks, 60000);
  EXPECT_EQ(engine.stats(1).ticks, 60000);
  EXPECT_EQ(engine.stats(2).ticks, 60000);

  // Matches are per-query disjoint and ordered.
  std::vector<core::Match> per_query[3];
  for (const auto& entry : sink.entries()) {
    ASSERT_LT(entry.origin.query_id, 3);
    per_query[entry.origin.query_id].push_back(entry.match);
  }
  for (const auto& matches : per_query) {
    for (size_t i = 1; i < matches.size(); ++i) {
      EXPECT_GT(matches[i].start, matches[i - 1].end);
    }
  }
}

}  // namespace
}  // namespace springdtw
