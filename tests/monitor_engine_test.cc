#include "monitor/engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "monitor/sink.h"
#include "util/random.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions Options(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

TEST(MonitorEngineTest, SingleStreamSingleQuery) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s0");
  const auto query =
      engine.AddQuery(stream, "pattern", {1.0, 2.0, 3.0}, Options(0.5));
  ASSERT_TRUE(query.ok());

  for (const double x : {9.0, 1.0, 2.0, 3.0, 9.0, 9.0}) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }
  engine.FlushAll();

  ASSERT_EQ(sink.entries().size(), 1u);
  const auto& entry = sink.entries()[0];
  EXPECT_EQ(entry.origin.stream_name, "s0");
  EXPECT_EQ(entry.origin.query_name, "pattern");
  EXPECT_EQ(entry.match.start, 1);
  EXPECT_EQ(entry.match.end, 3);
  EXPECT_DOUBLE_EQ(entry.match.distance, 0.0);

  const QueryStats& stats = engine.stats(*query);
  EXPECT_EQ(stats.ticks, 6);
  EXPECT_EQ(stats.matches, 1);
  EXPECT_GE(stats.output_delay.mean(), 0.0);
}

TEST(MonitorEngineTest, MultipleQueriesPerStream) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s0");
  ASSERT_TRUE(
      engine.AddQuery(stream, "rise", {1.0, 2.0}, Options(0.25)).ok());
  ASSERT_TRUE(
      engine.AddQuery(stream, "fall", {2.0, 1.0}, Options(0.25)).ok());

  for (const double x : {9.0, 1.0, 2.0, 1.0, 9.0, 9.0}) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }
  engine.FlushAll();

  int rises = 0;
  int falls = 0;
  for (const auto& entry : sink.entries()) {
    if (entry.origin.query_name == "rise") ++rises;
    if (entry.origin.query_name == "fall") ++falls;
  }
  EXPECT_EQ(rises, 1);
  EXPECT_EQ(falls, 1);
}

TEST(MonitorEngineTest, StreamsAreIndependent) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t s0 = engine.AddStream("s0");
  const int64_t s1 = engine.AddStream("s1");
  ASSERT_TRUE(engine.AddQuery(s0, "q", {1.0, 2.0}, Options(0.25)).ok());
  ASSERT_TRUE(engine.AddQuery(s1, "q", {1.0, 2.0}, Options(0.25)).ok());

  // Only stream 0 carries the pattern.
  for (const double x : {1.0, 2.0, 9.0}) {
    ASSERT_TRUE(engine.Push(s0, x).ok());
  }
  for (const double x : {5.0, 5.0, 5.0}) {
    ASSERT_TRUE(engine.Push(s1, x).ok());
  }
  engine.FlushAll();
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].origin.stream_name, "s0");
}

TEST(MonitorEngineTest, MissingValuesAreRepairedOnline) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("sensor", /*repair_missing=*/true);
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0, 2.0}, Options(0.25)).ok());
  // 1, NaN (held as 1 -> harmless), 2 -> matches [start..end] around it.
  ASSERT_TRUE(engine.Push(stream, 1.0).ok());
  ASSERT_TRUE(engine.Push(stream, ts::MissingValue()).ok());
  ASSERT_TRUE(engine.Push(stream, 2.0).ok());
  ASSERT_TRUE(engine.Push(stream, 9.0).ok());
  engine.FlushAll();
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.entries()[0].match.distance, 0.0);
}

TEST(MonitorEngineTest, MissingValueWithRepairDisabledIsAnError) {
  MonitorEngine engine;
  const int64_t stream = engine.AddStream("raw", /*repair_missing=*/false);
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0}, Options(0.25)).ok());
  EXPECT_FALSE(engine.Push(stream, ts::MissingValue()).ok());
  EXPECT_TRUE(engine.Push(stream, 1.0).ok());
}

TEST(MonitorEngineTest, UnknownStreamIsError) {
  MonitorEngine engine;
  EXPECT_FALSE(engine.Push(3, 1.0).ok());
  EXPECT_FALSE(engine.AddQuery(3, "q", {1.0}, Options(1.0)).ok());
}

TEST(MonitorEngineTest, EmptyOrMissingQueryRejected) {
  MonitorEngine engine;
  const int64_t stream = engine.AddStream("s");
  EXPECT_FALSE(engine.AddQuery(stream, "q", {}, Options(1.0)).ok());
  EXPECT_FALSE(
      engine.AddQuery(stream, "q", {1.0, ts::MissingValue()}, Options(1.0))
          .ok());
}

TEST(MonitorEngineTest, PushCountsMatchesReturned) {
  MonitorEngine engine;
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(engine.AddQuery(stream, "a", {1.0}, Options(0.1)).ok());
  ASSERT_TRUE(engine.AddQuery(stream, "b", {1.0}, Options(0.1)).ok());
  ASSERT_TRUE(engine.Push(stream, 1.0).ok());
  // Both single-value queries report their first match once the next tick
  // proves it cannot be improved.
  const auto reported = engine.Push(stream, 50.0);
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(*reported, 2);
}

TEST(MonitorEngineTest, LatencyTrackingRecords) {
  MonitorEngine engine;
  engine.EnableLatencyTracking(true);
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(
      engine.AddQuery(stream, "q", std::vector<double>(64, 0.0), Options(1.0))
          .ok());
  util::Rng rng(5);
  for (int t = 0; t < 1000; ++t) {
    ASSERT_TRUE(engine.Push(stream, rng.Gaussian()).ok());
  }
  EXPECT_EQ(engine.push_latency_nanos().count(), 1000);
  EXPECT_GT(engine.push_latency_nanos().Quantile(0.5), 0.0);
}

TEST(MonitorEngineTest, FootprintAggregatesAllQueries) {
  MonitorEngine engine;
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(
      engine.AddQuery(stream, "a", std::vector<double>(100, 0.0), Options(1.0))
          .ok());
  const int64_t one = engine.Footprint().TotalBytes();
  ASSERT_TRUE(
      engine.AddQuery(stream, "b", std::vector<double>(100, 0.0), Options(1.0))
          .ok());
  EXPECT_GE(engine.Footprint().TotalBytes(), 2 * one - 64);
}

TEST(MonitorEngineTest, OutputDelayMeasuredAgainstMatchEnd) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s");
  const auto query =
      engine.AddQuery(stream, "q", {1.0, 2.0}, Options(0.25));
  ASSERT_TRUE(query.ok());
  for (const double x : {1.0, 2.0, 9.0}) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }
  ASSERT_EQ(sink.entries().size(), 1u);
  // Match ends at tick 1, reported at tick 2: delay 1.
  EXPECT_DOUBLE_EQ(engine.stats(*query).output_delay.mean(), 1.0);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
