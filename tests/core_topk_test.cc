#include <vector>

#include <gtest/gtest.h>

#include "core/subsequence_scan.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

TEST(TopKDisjointMatchesTest, ReturnsKBestSortedByDistance) {
  // Three planted occurrences with increasing distortion.
  std::vector<double> x(60, 9.0);
  const std::vector<double> pattern{1.0, 2.0, 3.0};
  for (size_t i = 0; i < 3; ++i) x[5 + i] = pattern[i];          // Exact.
  for (size_t i = 0; i < 3; ++i) x[25 + i] = pattern[i] + 0.1;   // Off by 0.1.
  for (size_t i = 0; i < 3; ++i) x[45 + i] = pattern[i] + 0.3;   // Off by 0.3.
  const ts::Series stream(x);
  const ts::Series query(pattern);

  const std::vector<Match> top2 = TopKDisjointMatches(stream, query, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].start, 5);
  EXPECT_NEAR(top2[0].distance, 0.0, 1e-12);
  EXPECT_EQ(top2[1].start, 25);
  EXPECT_LE(top2[0].distance, top2[1].distance);

  const std::vector<Match> top3 = TopKDisjointMatches(stream, query, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[2].start, 45);
}

TEST(TopKDisjointMatchesTest, MatchesAreDisjoint) {
  util::Rng rng(44);
  std::vector<double> x(300);
  for (double& v : x) v = rng.Gaussian();
  const ts::Series stream(x);
  const ts::Series query({0.0, 1.0, 0.0});
  const std::vector<Match> top = TopKDisjointMatches(stream, query, 10);
  for (size_t i = 0; i < top.size(); ++i) {
    for (size_t j = i + 1; j < top.size(); ++j) {
      EXPECT_FALSE(top[i].Overlaps(top[j]));
    }
    if (i > 0) {
      EXPECT_GE(top[i].distance, top[i - 1].distance);
    }
  }
}

TEST(TopKDisjointMatchesTest, TopOneIncludesTheGlobalBest) {
  util::Rng rng(45);
  std::vector<double> x(150);
  for (double& v : x) v = rng.Gaussian();
  const ts::Series stream(x);
  const ts::Series query({0.5, -0.5});
  const Match best = BestSubsequence(stream, query);
  const std::vector<Match> top1 = TopKDisjointMatches(stream, query, 1);
  ASSERT_EQ(top1.size(), 1u);
  // The global best is always the optimum of its own group, so top-1 finds
  // exactly it.
  EXPECT_EQ(top1[0].start, best.start);
  EXPECT_EQ(top1[0].end, best.end);
  EXPECT_NEAR(top1[0].distance, best.distance, 1e-12);
}

TEST(TopKDisjointMatchesTest, FewerGroupsThanKReturnsAll) {
  const ts::Series stream({9.0, 1.0, 2.0, 9.0});
  const ts::Series query({1.0, 2.0});
  const std::vector<Match> top = TopKDisjointMatches(stream, query, 50);
  EXPECT_LT(top.size(), 50u);
  EXPECT_GE(top.size(), 1u);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
