// Property tests for VectorSpringMatcher disjoint queries against a
// brute-force multivariate oracle (DtwDistanceMultivariate on every
// subsequence), mirroring the scalar Lemma 2 sweep.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/match.h"
#include "core/vector_spring.h"
#include "dtw/dtw.h"
#include "ts/vector_series.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

ts::VectorSeries RandomVectorStream(util::Rng& rng, int64_t n, int64_t k) {
  ts::VectorSeries out(k);
  std::vector<double> row(static_cast<size_t>(k), 0.0);
  for (int64_t t = 0; t < n; ++t) {
    for (double& v : row) {
      if (rng.Bernoulli(0.1)) v = rng.Uniform(-2.0, 2.0);
      v += rng.Gaussian(0.0, 0.3);
    }
    out.AppendRow(row);
  }
  return out;
}

// oracle[a][b - a] = multivariate DTW distance of stream[a : b] vs query.
std::vector<std::vector<double>> VectorOracle(const ts::VectorSeries& stream,
                                              const ts::VectorSeries& query) {
  const int64_t n = stream.size();
  std::vector<std::vector<double>> out(static_cast<size_t>(n));
  for (int64_t a = 0; a < n; ++a) {
    out[static_cast<size_t>(a)].resize(static_cast<size_t>(n - a));
    for (int64_t b = a; b < n; ++b) {
      out[static_cast<size_t>(a)][static_cast<size_t>(b - a)] =
          dtw::DtwDistanceMultivariate(stream.Slice(a, b - a + 1), query);
    }
  }
  return out;
}

class VectorPropertySeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorPropertySeedTest, DisjointQueriesAreSoundAndComplete) {
  util::Rng rng(GetParam());
  const int64_t n = 22;
  const int64_t k = 2;
  const int64_t m = 3;
  const ts::VectorSeries stream = RandomVectorStream(rng, n, k);
  const ts::VectorSeries query = RandomVectorStream(rng, m, k);
  const auto oracle = VectorOracle(stream, query);

  std::vector<double> all;
  for (const auto& row : oracle) {
    all.insert(all.end(), row.begin(), row.end());
  }
  std::sort(all.begin(), all.end());
  const double epsilon = all[all.size() / 4];

  SpringOptions options;
  options.epsilon = epsilon;
  VectorSpringMatcher matcher(query, options);
  std::vector<Match> reports;
  Match match;
  for (int64_t t = 0; t < n; ++t) {
    if (matcher.Update(stream.Row(t), &match)) reports.push_back(match);
  }
  if (matcher.Flush(&match)) reports.push_back(match);

  // Soundness (see the scalar property test for the rationale of the
  // inequalities).
  for (size_t r = 0; r < reports.size(); ++r) {
    const Match& rep = reports[r];
    const double true_distance =
        oracle[static_cast<size_t>(rep.start)]
              [static_cast<size_t>(rep.end - rep.start)];
    EXPECT_GE(rep.distance, true_distance - 1e-9);
    EXPECT_LE(rep.distance, epsilon);
    EXPECT_GE(rep.report_time, rep.end);
    if (r > 0) {
      EXPECT_GT(rep.start, reports[r - 1].end);
    }
  }

  // Completeness: every qualifying subsequence overlaps some report's
  // extended group interval.
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = a; b < n; ++b) {
      const double d =
          oracle[static_cast<size_t>(a)][static_cast<size_t>(b - a)];
      if (d > epsilon) continue;
      bool covered = false;
      for (const Match& rep : reports) {
        const int64_t hi = std::max(rep.group_end, rep.report_time);
        if (a <= hi && rep.group_start <= b) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "qualifying X[" << a << ":" << b << "] d="
                           << d << " missed";
    }
  }

  // The global minimum qualifying subsequence is reported exactly.
  double best_d = std::numeric_limits<double>::infinity();
  int64_t best_a = -1;
  int64_t best_b = -1;
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t a = 0; a <= b; ++a) {
      const double d =
          oracle[static_cast<size_t>(a)][static_cast<size_t>(b - a)];
      if (d < best_d) {
        best_d = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  if (best_d <= epsilon) {
    bool found = false;
    for (const Match& rep : reports) {
      if (rep.start == best_a && rep.end == best_b &&
          std::fabs(rep.distance - best_d) < 1e-9) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "global minimum X[" << best_a << ":" << best_b
                       << "] not reported";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorPropertySeedTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005,
                                           1006));

}  // namespace
}  // namespace core
}  // namespace springdtw
