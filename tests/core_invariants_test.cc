// Tests for the STWM invariant checkers (core/invariants.h). The checkers
// are compiled in every build mode; only the matcher call sites are gated,
// so these tests run identically in Release and debug. Each negative test
// seeds a deliberate violation and expects the checker to name it — that is
// the proof the checker would have caught a real bug at the wired call
// sites.
#include "core/invariants.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/match.h"
#include "core/spring.h"
#include "core/vector_spring.h"
#include "gtest/gtest.h"
#include "ts/vector_series.h"

namespace springdtw {
namespace core {
namespace invariants {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// A consistent two-query-row column at t = 5: every start position is
/// inherited from a legal predecessor and all distances are finite.
struct ColumnFixture {
  std::vector<double> d = {0.0, 1.0, 2.5};
  std::vector<int64_t> s = {5, 2, 1};
  std::vector<double> d_prev = {0.0, 0.5, 3.0};
  std::vector<int64_t> s_prev = {4, 2, 1};

  StwmColumn Column() const {
    return StwmColumn{std::span<const double>(d),
                      std::span<const int64_t>(s),
                      std::span<const double>(d_prev),
                      std::span<const int64_t>(s_prev), 5};
  }
};

TEST(CheckColumnTest, AcceptsConsistentColumn) {
  ColumnFixture fix;
  EXPECT_EQ(CheckColumn(fix.Column()), "");
}

TEST(CheckColumnTest, AcceptsKilledCellsWithStaleStarts) {
  ColumnFixture fix;
  fix.d[2] = kInf;
  fix.s[2] = -77;  // Stale start under an infinite distance is legal.
  EXPECT_EQ(CheckColumn(fix.Column()), "");
}

TEST(CheckColumnTest, CatchesCorruptStarRow) {
  ColumnFixture fix;
  fix.d[0] = 0.25;
  EXPECT_NE(CheckColumn(fix.Column()).find("star-row"), std::string::npos);
  fix.d[0] = 0.0;
  fix.s[0] = 4;  // Star row must carry the current tick.
  EXPECT_NE(CheckColumn(fix.Column()).find("star-row"), std::string::npos);
}

TEST(CheckColumnTest, CatchesNegativeAndNaNDistances) {
  ColumnFixture fix;
  fix.d[1] = -0.001;
  EXPECT_NE(CheckColumn(fix.Column()).find("distance-non-negative"),
            std::string::npos);
  fix.d[1] = kNaN;
  EXPECT_NE(CheckColumn(fix.Column()).find("distance-non-negative"),
            std::string::npos);
}

TEST(CheckColumnTest, CatchesStartOutOfRange) {
  ColumnFixture fix;
  fix.s[1] = 6;  // Beyond the current tick t = 5.
  fix.s_prev[1] = 6;
  EXPECT_NE(CheckColumn(fix.Column()).find("start-in-range"),
            std::string::npos);
}

TEST(CheckColumnTest, CatchesBrokenStartInheritance) {
  ColumnFixture fix;
  fix.s[2] = 3;  // None of s[1]=2, s_prev[2]=1, s_prev[1]=2.
  EXPECT_NE(CheckColumn(fix.Column()).find("start-inheritance"),
            std::string::npos);
}

TEST(CheckColumnTest, CatchesRowShapeMismatch) {
  ColumnFixture fix;
  fix.s_prev.pop_back();
  EXPECT_NE(CheckColumn(fix.Column()).find("row-shape"), std::string::npos);
}

TEST(CheckCandidateTest, AcceptsQualifyingCandidate) {
  ColumnFixture fix;
  EXPECT_EQ(CheckCandidate(fix.Column(), /*dmin=*/1.0, /*ts=*/2, /*te=*/4,
                           /*group_start=*/1, /*group_end=*/5,
                           /*epsilon=*/2.0),
            "");
}

TEST(CheckCandidateTest, CatchesDistanceAboveEpsilon) {
  ColumnFixture fix;
  EXPECT_NE(CheckCandidate(fix.Column(), 3.0, 2, 4, 1, 5, 2.0)
                .find("candidate-qualifies"),
            std::string::npos);
}

TEST(CheckCandidateTest, CatchesInvertedExtent) {
  ColumnFixture fix;
  EXPECT_NE(CheckCandidate(fix.Column(), 1.0, 4, 2, 1, 5, 2.0)
                .find("candidate-extent"),
            std::string::npos);
}

TEST(CheckCandidateTest, CatchesCandidateOutsideGroup) {
  ColumnFixture fix;
  EXPECT_NE(CheckCandidate(fix.Column(), 1.0, 2, 4, 3, 5, 2.0)
                .find("candidate-in-group"),
            std::string::npos);
}

Match MakeMatch(int64_t start, int64_t end, double distance,
                int64_t report_time) {
  Match match;
  match.start = start;
  match.end = end;
  match.distance = distance;
  match.report_time = report_time;
  return match;
}

TEST(CheckReportTest, AcceptsEarliestDisjointReport) {
  ColumnFixture fix;
  // All surviving cells have d >= 0.9 or start after the match end 1.
  const Match match = MakeMatch(0, 1, 0.9, 5);
  fix.s = {5, 2, 2};
  fix.s_prev = {4, 2, 2};
  EXPECT_EQ(CheckReport(fix.Column(), match, /*epsilon=*/2.0,
                        /*last_report_end=*/-1),
            "");
}

TEST(CheckReportTest, CatchesDistanceAboveEpsilon) {
  ColumnFixture fix;
  const Match match = MakeMatch(0, 1, 3.0, 5);
  EXPECT_NE(
      CheckReport(fix.Column(), match, 2.0, -1).find("report-qualifies"),
      std::string::npos);
}

TEST(CheckReportTest, CatchesOverlapWithPreviousReport) {
  ColumnFixture fix;
  fix.s = {5, 2, 2};
  const Match match = MakeMatch(2, 3, 0.9, 5);
  // Previous report ended at 2, so a start of 2 overlaps it.
  EXPECT_NE(CheckReport(fix.Column(), match, 2.0, /*last_report_end=*/2)
                .find("reports-disjoint"),
            std::string::npos);
}

TEST(CheckReportTest, CatchesPrematureReport) {
  ColumnFixture fix;
  // Cell 1 holds d = 1.0 with start 2 <= match end 4: a warping path that
  // could still undercut d_min = 1.5, so reporting now is premature.
  const Match match = MakeMatch(2, 4, 1.5, 5);
  EXPECT_NE(
      CheckReport(fix.Column(), match, 2.0, -1).find("report-earliest"),
      std::string::npos);
}

TEST(CheckBestTest, AcceptsImprovingBest) {
  EXPECT_EQ(CheckBest(MakeMatch(1, 3, 0.5, 4), /*prev_distance=*/kInf), "");
  EXPECT_EQ(CheckBest(MakeMatch(1, 3, 0.5, 4), 0.7), "");
  EXPECT_EQ(CheckBest(MakeMatch(1, 3, 0.5, 4), 0.5), "");
}

TEST(CheckBestTest, CatchesWorseningBest) {
  EXPECT_NE(CheckBest(MakeMatch(1, 3, 0.8, 4), 0.5).find("best-monotone"),
            std::string::npos);
}

TEST(CheckBestTest, CatchesCorruptExtent) {
  EXPECT_NE(CheckBest(MakeMatch(3, 1, 0.5, 4), kInf).find("best-extent"),
            std::string::npos);
  EXPECT_NE(CheckBest(MakeMatch(1, 5, 0.5, 4), kInf).find("best-extent"),
            std::string::npos);
}

TEST(CheckBestTest, CatchesNegativeDistance) {
  EXPECT_NE(
      CheckBest(MakeMatch(1, 3, -0.5, 4), kInf).find("best-non-negative"),
      std::string::npos);
}

TEST(SnapshotRoundTripTest, ScalarMatcherRoundTripsAtEveryTick) {
  SpringOptions options;
  options.epsilon = 1.0;
  SpringMatcher matcher({1.0, 2.0, 1.0}, options);
  EXPECT_EQ(CheckSnapshotRoundTrip(matcher), "");
  Match match;
  for (const double x : {5.0, 1.1, 2.0, 1.0, 5.0, 1.0, 2.2, 0.9, 7.0}) {
    matcher.Update(x, &match);
    EXPECT_EQ(CheckSnapshotRoundTrip(matcher), "");
  }
}

TEST(SnapshotRoundTripTest, VectorMatcherRoundTripsAtEveryTick) {
  ts::VectorSeries query(2, "q");
  query.AppendRow(std::vector<double>{0.0, 1.0});
  query.AppendRow(std::vector<double>{1.0, 0.0});
  SpringOptions options;
  options.epsilon = 0.5;
  VectorSpringMatcher matcher(std::move(query), options);
  EXPECT_EQ(CheckSnapshotRoundTrip(matcher), "");
  Match match;
  for (int t = 0; t < 8; ++t) {
    const std::vector<double> row = {0.2 * t, 1.0 - 0.2 * t};
    matcher.Update(row, &match);
    EXPECT_EQ(CheckSnapshotRoundTrip(matcher), "");
  }
}

TEST(DeserializeValidationTest, RejectsSemanticallyCorruptSnapshot) {
  // Serialize a live matcher, then corrupt one STWM distance cell to a
  // negative value. The snapshot still parses structurally; the semantic
  // validation added for the invariant subsystem must reject it.
  SpringOptions options;
  options.epsilon = 1.0;
  SpringMatcher matcher({1.0, 2.0}, options);
  Match match;
  for (const double x : {1.0, 2.0, 3.0}) matcher.Update(x, &match);
  const std::vector<uint8_t> good = matcher.SerializeState();
  ASSERT_TRUE(SpringMatcher::DeserializeState(good).ok());

  // The d_prev vector is the only place the byte pattern of -1.0
  // (0xBFF0000000000000) can be planted without breaking framing: scan for
  // a serialized double cell by brute force — flip 8 aligned bytes at every
  // offset and require that *no* corruption yields a matcher that both
  // restores and claims a negative distance cell.
  int rejected = 0;
  int restored = 0;
  for (size_t offset = 8; offset + 8 <= good.size(); ++offset) {
    std::vector<uint8_t> bad = good;
    const double planted = -1.0;
    std::memcpy(bad.data() + offset, &planted, sizeof(planted));
    auto result = SpringMatcher::DeserializeState(bad);
    if (!result.ok()) {
      ++rejected;
      continue;
    }
    ++restored;
    // If it restored, the planted bytes did not land on live state the
    // validator guards (e.g. inside the query payload, where -1.0 is a
    // legal value). Driving the matcher must still be safe.
    for (const double x : {0.5, 1.5}) result->Update(x, &match);
  }
  // The corruption sweep must have produced at least one rejected snapshot
  // (the validator firing) — otherwise the test is vacuous.
  EXPECT_GT(rejected, 0);
  SUCCEED() << "rejected=" << rejected << " restored=" << restored;
}

}  // namespace
}  // namespace invariants
}  // namespace core
}  // namespace springdtw
