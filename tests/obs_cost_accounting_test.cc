// Per-query / per-stream cost accounting (/queryz, /streamz): ranking and
// rendering units, a differential recount of every cost column against
// independently derivable ground truth, and the zero-cost-when-disabled
// discipline on the ingest path.
#include <cstdint>
#include <string>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/cost_accounting.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "util/memory.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions MatchingOptions() {
  core::SpringOptions options;
  options.epsilon = 0.5;
  return options;
}

core::SpringOptions NonMatchingOptions() {
  core::SpringOptions options;
  options.epsilon = 1e-9;
  return options;
}

/// Stream with the query {1, 2, 3} planted every 50 ticks on a flat ramp.
std::vector<double> PlantedStream(int64_t ticks) {
  std::vector<double> stream(static_cast<size_t>(ticks), 9.0);
  for (int64_t t = 0; t + 3 < ticks; t += 50) {
    stream[static_cast<size_t>(t + 1)] = 1.0;
    stream[static_cast<size_t>(t + 2)] = 2.0;
    stream[static_cast<size_t>(t + 3)] = 3.0;
  }
  return stream;
}

TEST(CostAccountingTest, RankByCostOrdersCellsDescIdAsc) {
  CostSnapshot snapshot;
  QueryCost q;
  q.query_id = 0;
  q.cells = 100;
  snapshot.queries.push_back(q);
  q.query_id = 1;
  q.cells = 300;
  snapshot.queries.push_back(q);
  q.query_id = 2;
  q.cells = 100;  // ties with query 0: id breaks the tie
  snapshot.queries.push_back(q);
  StreamCost s;
  s.stream_id = 0;
  s.cells = 5;
  snapshot.streams.push_back(s);
  s.stream_id = 1;
  s.cells = 7;
  snapshot.streams.push_back(s);

  RankByCost(&snapshot);
  ASSERT_EQ(snapshot.queries.size(), 3u);
  EXPECT_EQ(snapshot.queries[0].query_id, 1);
  EXPECT_EQ(snapshot.queries[1].query_id, 0);
  EXPECT_EQ(snapshot.queries[2].query_id, 2);
  EXPECT_EQ(snapshot.streams[0].stream_id, 1);
  EXPECT_EQ(snapshot.streams[1].stream_id, 0);
}

TEST(CostAccountingTest, RenderTruncatesToTopKButReportsTotal) {
  CostSnapshot snapshot;
  for (int64_t i = 0; i < 5; ++i) {
    QueryCost q;
    q.query_id = i;
    q.query_name = "q" + std::to_string(i);
    q.cells = 1000 - i;
    snapshot.queries.push_back(q);
  }
  RankByCost(&snapshot);
  const std::string json = RenderQueryzJson(snapshot, 2);
  EXPECT_NE(json.find("\"total\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"q0\""), std::string::npos);
  EXPECT_NE(json.find("\"q1\""), std::string::npos);
  EXPECT_EQ(json.find("\"q2\""), std::string::npos) << "top_k=2 must cut";

  // Names are JSON-escaped.
  snapshot.queries[0].query_name = "a\"b";
  EXPECT_NE(RenderQueryzJson(snapshot, 1).find("a\\\"b"), std::string::npos);

  const std::string streamz = RenderStreamzJson(snapshot, 10);
  EXPECT_NE(streamz.find("\"total\":0"), std::string::npos);
  EXPECT_NE(streamz.find("\"streams\":[]"), std::string::npos);
}

// The differential recount: every /queryz column recomputed from first
// principles. One stream, two queries of different lengths — ticks must
// equal the pushes, cells must equal ticks x m exactly (SPRING computes m
// DP cells per tick), matches must equal the sink's per-query count, and
// last_match_seq must equal the report time of the last delivered match
// (with a single stream, global ingest seq == stream tick index).
TEST(CostAccountingTest, DifferentialRecountAgainstGroundTruth) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.enable_introspection = true;
  options.publish_interval_ms = 0.0;
  options.cost_sample_every = 16;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);

  const int64_t stream_id = monitor.AddStream("s0");
  const auto matching =
      monitor.AddQuery(stream_id, "hot", {1.0, 2.0, 3.0}, MatchingOptions());
  ASSERT_TRUE(matching.ok());
  const auto cold = monitor.AddQuery(stream_id, "cold",
                                     {1.0, 2.0, 3.0, 4.0, 5.0},
                                     NonMatchingOptions());
  ASSERT_TRUE(cold.ok());

  const std::vector<double> stream = PlantedStream(2000);
  monitor.Start();
  for (const double x : stream) {
    ASSERT_TRUE(monitor.Push(stream_id, x).ok());
  }
  monitor.Drain();

  int64_t hot_matches = 0;
  int64_t last_report_time = -1;
  for (const auto& entry : sink.entries()) {
    ASSERT_EQ(entry.origin.query_name, "hot") << "cold query must not match";
    ++hot_matches;
    last_report_time = entry.match.report_time;
  }
  ASSERT_GT(hot_matches, 0) << "planted workload must produce matches";

  const auto listed = monitor.ListQueries();
  ASSERT_EQ(listed.size(), 2u);
  const auto& hot = listed[0].name == "hot" ? listed[0] : listed[1];
  const auto& coldq = listed[0].name == "cold" ? listed[0] : listed[1];
  const int64_t n = static_cast<int64_t>(stream.size());

  EXPECT_EQ(hot.ticks, n);
  EXPECT_EQ(coldq.ticks, n);
  EXPECT_EQ(hot.cells, n * 3) << "m=3 cells per tick, exactly";
  EXPECT_EQ(coldq.cells, n * 5) << "m=5 cells per tick, exactly";
  EXPECT_EQ(hot.matches, hot_matches);
  EXPECT_EQ(coldq.matches, 0);
  EXPECT_EQ(hot.last_match_seq, last_report_time);
  EXPECT_EQ(coldq.last_match_seq, -1);
  // CPU attribution is sampled wall time: exact values are machine-
  // dependent, but with sampling on and thousands of ticks it must be
  // nonzero in aggregate and never negative per query.
  EXPECT_GE(hot.est_cpu_nanos, 0);
  EXPECT_GE(coldq.est_cpu_nanos, 0);
  EXPECT_GT(hot.est_cpu_nanos + coldq.est_cpu_nanos, 0);

  // /queryz ranks by cells: the longer query must lead, and the document
  // must agree with the recounted columns.
  const std::string queryz = monitor.QueryzJson();
  EXPECT_NE(queryz.find("\"total\":2"), std::string::npos) << queryz;
  const size_t cold_pos = queryz.find("\"cold\"");
  const size_t hot_pos = queryz.find("\"hot\"");
  ASSERT_NE(cold_pos, std::string::npos) << queryz;
  ASSERT_NE(hot_pos, std::string::npos) << queryz;
  EXPECT_LT(cold_pos, hot_pos) << "5n cells must outrank 3n cells";
  EXPECT_NE(queryz.find("\"cells\":" + std::to_string(n * 5)),
            std::string::npos)
      << queryz;

  // /streamz aggregates the stream's two queries.
  const std::string streamz = monitor.StreamzJson();
  EXPECT_NE(streamz.find("\"total\":1"), std::string::npos) << streamz;
  EXPECT_NE(streamz.find("\"name\":\"s0\""), std::string::npos) << streamz;
  EXPECT_NE(streamz.find("\"queries\":2"), std::string::npos) << streamz;
  EXPECT_NE(streamz.find("\"cells\":" + std::to_string(n * 8)),
            std::string::npos)
      << streamz;
  EXPECT_NE(streamz.find("\"matches\":" + std::to_string(hot_matches)),
            std::string::npos)
      << streamz;

  monitor.Stop();
}

// Multi-stream sharded recount: cells stay exact per query across workers,
// and /streamz reports every stream with its owning worker.
TEST(CostAccountingTest, ShardedRecountAcrossWorkers) {
  ShardedMonitorOptions options;
  options.num_workers = 3;
  options.enable_introspection = true;
  options.publish_interval_ms = 0.0;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);

  constexpr int64_t kStreams = 6;
  std::vector<int64_t> stream_ids;
  std::vector<int64_t> pushes(kStreams, 0);
  for (int64_t i = 0; i < kStreams; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q" + std::to_string(i),
                              {1.0, 2.0, 3.0, 4.0}, NonMatchingOptions())
                    .ok());
  }
  monitor.Start();
  // Uneven feeds so per-stream tick counts differ.
  for (int64_t i = 0; i < kStreams; ++i) {
    const int64_t n = 100 + 37 * i;
    for (int64_t t = 0; t < n; ++t) {
      // Values >= 9 stay far from the {1,2,3,4} query: zero matches.
      ASSERT_TRUE(monitor.Push(stream_ids[static_cast<size_t>(i)],
                               9.0 + static_cast<double>(t % 7))
                      .ok());
    }
    pushes[static_cast<size_t>(i)] = n;
  }
  monitor.Drain();

  const auto listed = monitor.ListQueries();
  ASSERT_EQ(listed.size(), static_cast<size_t>(kStreams));
  for (const auto& entry : listed) {
    const int64_t n = pushes[static_cast<size_t>(entry.stream_id)];
    EXPECT_EQ(entry.ticks, n) << entry.name;
    EXPECT_EQ(entry.cells, n * 4) << entry.name;
    EXPECT_EQ(entry.matches, 0) << entry.name;
  }

  const std::string streamz = monitor.StreamzJson();
  EXPECT_NE(streamz.find("\"total\":" + std::to_string(kStreams)),
            std::string::npos)
      << streamz;
  for (int64_t i = 0; i < kStreams; ++i) {
    EXPECT_NE(streamz.find("\"name\":\"s" + std::to_string(i) + "\""),
              std::string::npos)
        << streamz;
    // The reported worker is the stream's actual owner.
    const std::string row = "\"name\":\"s" + std::to_string(i) +
                            "\",\"worker\":" +
                            std::to_string(monitor.worker_of_stream(
                                stream_ids[static_cast<size_t>(i)]));
    EXPECT_NE(streamz.find(row), std::string::npos) << streamz;
  }

  monitor.Stop();
}

TEST(CostAccountingTest, CostColumnsStayZeroWithoutMetrics) {
  // Default options: no collect_metrics, no introspection — the cost
  // columns must stay at their zero/-1 defaults and the JSON documents at
  // their empty shapes.
  ShardedMonitor monitor;
  CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t stream_id = monitor.AddStream("s");
  ASSERT_TRUE(
      monitor.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, MatchingOptions())
          .ok());
  monitor.Start();
  const std::vector<double> stream = PlantedStream(500);
  for (const double x : stream) {
    ASSERT_TRUE(monitor.Push(stream_id, x).ok());
  }
  monitor.Drain();

  const auto listed = monitor.ListQueries();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_GT(listed[0].ticks, 0) << "base stats stay live";
  EXPECT_GT(listed[0].matches, 0);
  EXPECT_EQ(listed[0].cells, 0);
  // last_match_seq rides the delivery path (one store per match, like the
  // matches counter), so it stays live even with metrics off — only the
  // per-tick columns must stay zero.
  EXPECT_GE(listed[0].last_match_seq, 0);
  EXPECT_EQ(listed[0].est_cpu_nanos, 0);
  EXPECT_NE(monitor.QueryzJson().find("\"queries\":[]"), std::string::npos);
  EXPECT_NE(monitor.StreamzJson().find("\"streams\":[]"), std::string::npos);
  monitor.Stop();
}

TEST(CostAccountingTest, EngineCostPathAddsNoAllocations) {
  // The per-tick cost hooks — both disabled (cost_sample_every = 0, the
  // default) and enabled — must not allocate on the engine push path.
  for (const int64_t every : {int64_t{0}, int64_t{4}}) {
    EngineOptions engine_options;
    engine_options.cost_sample_every = every;
    MonitorEngine engine(engine_options);
    CollectSink sink;
    engine.AddSink(&sink);
    const int64_t stream_id = engine.AddStream("s");
    ASSERT_TRUE(engine
                    .AddQuery(stream_id, "q", {1.0, 2.0, 3.0},
                              NonMatchingOptions())
                    .ok());
    for (int64_t t = 0; t < 512; ++t) {
      ASSERT_TRUE(
          engine.Push(stream_id, 9.0 + static_cast<double>(t % 7)).ok());
    }
    util::ScopedAllocationCheck check;
    for (int64_t t = 0; t < 4096; ++t) {
      ASSERT_TRUE(
          engine.Push(stream_id, 9.0 + static_cast<double>(t % 7)).ok());
    }
    EXPECT_EQ(check.Allocations(), 0) << "cost_sample_every=" << every;
    EXPECT_EQ(check.Bytes(), 0) << "cost_sample_every=" << every;
  }
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
