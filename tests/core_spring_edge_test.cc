// Edge cases of SpringMatcher beyond the main unit/property suites.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SpringEdgeTest, StreamContinuesCorrectlyAfterFlush) {
  // Flush mid-stream (e.g. a checkpoint boundary), then keep feeding:
  // later occurrences must still be found, disjoint from the flushed one.
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher({1.0, 2.0}, options);
  Match match;
  matcher.Update(1.0, &match);
  matcher.Update(2.0, &match);
  ASSERT_TRUE(matcher.Flush(&match));
  EXPECT_EQ(match.end, 1);

  std::vector<Match> later;
  for (const double x : {9.0, 1.0, 2.0, 9.0}) {
    if (matcher.Update(x, &match)) later.push_back(match);
  }
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].start, 3);
  EXPECT_EQ(later[0].end, 4);
  EXPECT_DOUBLE_EQ(later[0].distance, 0.0);
}

TEST(SpringEdgeTest, EpsilonZeroMatchesOnlyExactAlignments) {
  SpringOptions options;
  options.epsilon = 0.0;
  SpringMatcher matcher({3.0, 7.0}, options);
  Match match;
  std::vector<Match> matches;
  for (const double x : {3.0, 7.0, 3.0, 7.1, 99.0}) {
    if (matcher.Update(x, &match)) matches.push_back(match);
  }
  if (matcher.Flush(&match)) matches.push_back(match);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].start, 0);
  EXPECT_EQ(matches[0].end, 1);
  EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
}

TEST(SpringEdgeTest, SingleTickStreamAndQuery) {
  SpringOptions options;
  options.epsilon = 1.0;
  SpringMatcher matcher({5.0}, options);
  Match match;
  EXPECT_FALSE(matcher.Update(5.0, &match));
  ASSERT_TRUE(matcher.Flush(&match));
  EXPECT_EQ(match.start, 0);
  EXPECT_EQ(match.end, 0);
  EXPECT_EQ(match.length(), 1);
}

TEST(SpringEdgeTest, ExtremeValueMagnitudesStayFinite) {
  SpringOptions options;
  options.epsilon = 1e30;
  SpringMatcher matcher({1e15, -1e15}, options);
  util::Rng rng(41);
  for (int t = 0; t < 100; ++t) {
    matcher.Update(rng.Uniform(-1e15, 1e15), nullptr);
  }
  ASSERT_TRUE(matcher.has_best());
  EXPECT_TRUE(std::isfinite(matcher.best().distance));
}

TEST(SpringEdgeTest, NegativeValuesWorkSymmetrically) {
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher({-1.0, -2.0}, options);
  Match match;
  std::vector<Match> matches;
  for (const double x : {0.0, -1.0, -2.0, 0.0}) {
    if (matcher.Update(x, &match)) matches.push_back(match);
  }
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].start, 1);
  EXPECT_EQ(matches[0].end, 2);
}

TEST(SpringEdgeTest, LastRowAccessorsAfterReset) {
  SpringOptions options;
  options.epsilon = -1.0;
  SpringMatcher matcher({1.0, 2.0}, options);
  matcher.Update(1.0, nullptr);
  matcher.Reset();
  // The "last row" is the pre-stream boundary again: d(−1, i>=1) = inf.
  const auto d = matcher.LastRowDistances();
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_EQ(d[1], kInf);
  EXPECT_EQ(d[2], kInf);
}

TEST(SpringEdgeTest, FootprintComponentsAreNamed) {
  SpringOptions options;
  SpringMatcher matcher({1.0, 2.0, 3.0}, options);
  const auto fp = matcher.Footprint();
  std::vector<std::string> names;
  for (const auto& [name, bytes] : fp.components()) {
    names.push_back(name);
    EXPECT_GT(bytes, 0) << name;
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"query", "stwm_distances",
                                      "stwm_starts"}));
}

TEST(SpringEdgeTest, SerializationAfterFlushRoundTrips) {
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher({1.0, 2.0}, options);
  Match match;
  matcher.Update(1.0, &match);
  matcher.Update(2.0, &match);
  ASSERT_TRUE(matcher.Flush(&match));

  auto restored = SpringMatcher::DeserializeState(matcher.SerializeState());
  ASSERT_TRUE(restored.ok());
  // Both continue with the flushed group killed.
  Match ma;
  Match mb;
  for (const double x : {9.0, 1.0, 2.0, 9.0}) {
    ASSERT_EQ(matcher.Update(x, &ma), restored->Update(x, &mb));
  }
}

TEST(SpringEdgeTest, ManyBackToBackMatchesWithoutSeparators) {
  // Perfect occurrences touching each other: reports stay disjoint and
  // cover the stream in order.
  SpringOptions options;
  options.epsilon = 0.01;
  SpringMatcher matcher({1.0, 2.0}, options);
  Match match;
  std::vector<Match> matches;
  for (int rep = 0; rep < 50; ++rep) {
    if (matcher.Update(1.0, &match)) matches.push_back(match);
    if (matcher.Update(2.0, &match)) matches.push_back(match);
  }
  if (matcher.Flush(&match)) matches.push_back(match);
  ASSERT_GE(matches.size(), 40u);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GT(matches[i].start, matches[i - 1].end);
  }
}

TEST(SpringEdgeTest, TicksProcessedCountsEveryUpdate) {
  SpringOptions options;
  options.epsilon = -1.0;
  SpringMatcher matcher({1.0}, options);
  for (int t = 0; t < 123; ++t) matcher.Update(0.0, nullptr);
  EXPECT_EQ(matcher.ticks_processed(), 123);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
