// Checkpoint/restore: a matcher snapshot taken mid-stream must continue
// exactly like the original on the remaining data.

#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

std::vector<double> RandomStream(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  double x = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.3);
    v[static_cast<size_t>(t)] = x;
  }
  return v;
}

class SerializeSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeSeedTest, RestoredMatcherContinuesIdentically) {
  util::Rng rng(GetParam());
  const std::vector<double> stream = RandomStream(rng, 400);
  std::vector<double> query(static_cast<size_t>(rng.UniformInt(2, 8)));
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);

  SpringOptions options;
  options.epsilon = rng.Uniform(0.5, 4.0);
  SpringMatcher original(query, options);

  // Take a snapshot at several cut points and compare futures.
  for (const size_t cut : {0u, 1u, 57u, 200u}) {
    SpringMatcher a(query, options);
    Match match;
    for (size_t t = 0; t < cut; ++t) a.Update(stream[t], &match);

    const std::vector<uint8_t> snapshot = a.SerializeState();
    auto restored = SpringMatcher::DeserializeState(snapshot);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    SpringMatcher& b = *restored;
    EXPECT_EQ(b.ticks_processed(), a.ticks_processed());

    Match ma;
    Match mb;
    for (size_t t = cut; t < stream.size(); ++t) {
      const bool ra = a.Update(stream[t], &ma);
      const bool rb = b.Update(stream[t], &mb);
      ASSERT_EQ(ra, rb) << "cut " << cut << " tick " << t;
      if (ra) {
        EXPECT_EQ(ma.start, mb.start);
        EXPECT_EQ(ma.end, mb.end);
        EXPECT_DOUBLE_EQ(ma.distance, mb.distance);
        EXPECT_EQ(ma.report_time, mb.report_time);
        EXPECT_EQ(ma.group_start, mb.group_start);
        EXPECT_EQ(ma.group_end, mb.group_end);
      }
    }
    EXPECT_EQ(a.Flush(&ma), b.Flush(&mb));
    EXPECT_EQ(a.has_best(), b.has_best());
    if (a.has_best()) {
      EXPECT_EQ(a.best().start, b.best().start);
      EXPECT_EQ(a.best().end, b.best().end);
      EXPECT_DOUBLE_EQ(a.best().distance, b.best().distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeSeedTest,
                         ::testing::Values(601, 602, 603, 604));

TEST(SerializeTest, SnapshotPreservesOptions) {
  SpringOptions options;
  options.epsilon = 7.5;
  options.local_distance = dtw::LocalDistance::kAbsolute;
  options.max_match_length = 40;
  options.min_match_length = 3;
  SpringMatcher matcher({1.0, 2.0}, options);
  auto restored = SpringMatcher::DeserializeState(matcher.SerializeState());
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->options().epsilon, 7.5);
  EXPECT_EQ(restored->options().local_distance,
            dtw::LocalDistance::kAbsolute);
  EXPECT_EQ(restored->options().max_match_length, 40);
  EXPECT_EQ(restored->options().min_match_length, 3);
  EXPECT_EQ(restored->query(), (std::vector<double>{1.0, 2.0}));
}

TEST(SerializeTest, RejectsGarbage) {
  const std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(SpringMatcher::DeserializeState(garbage).ok());
  EXPECT_FALSE(
      SpringMatcher::DeserializeState(std::vector<uint8_t>{}).ok());
}

TEST(SerializeTest, RejectsTruncatedSnapshot) {
  SpringMatcher matcher({1.0, 2.0, 3.0}, SpringOptions{});
  std::vector<uint8_t> snapshot = matcher.SerializeState();
  snapshot.resize(snapshot.size() / 2);
  EXPECT_FALSE(SpringMatcher::DeserializeState(snapshot).ok());
}

TEST(SerializeTest, RejectsTrailingBytes) {
  SpringMatcher matcher({1.0}, SpringOptions{});
  std::vector<uint8_t> snapshot = matcher.SerializeState();
  snapshot.push_back(0);
  EXPECT_FALSE(SpringMatcher::DeserializeState(snapshot).ok());
}

TEST(SerializeTest, RejectsWrongMagic) {
  SpringMatcher matcher({1.0}, SpringOptions{});
  std::vector<uint8_t> snapshot = matcher.SerializeState();
  snapshot[0] ^= 0xff;
  const auto restored = SpringMatcher::DeserializeState(snapshot);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, SnapshotSizeIsLinearInQueryLength) {
  SpringMatcher small(std::vector<double>(16, 0.0), SpringOptions{});
  SpringMatcher large(std::vector<double>(1600, 0.0), SpringOptions{});
  const size_t small_size = small.SerializeState().size();
  const size_t large_size = large.SerializeState().size();
  EXPECT_GT(large_size, 50 * small_size / 2);
  EXPECT_LT(large_size, 200 * small_size);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
