#include "ts/vector_series.h"

#include <vector>

#include <gtest/gtest.h>

namespace springdtw {
namespace ts {
namespace {

TEST(VectorSeriesTest, EmptyByDefault) {
  VectorSeries s;
  EXPECT_EQ(s.dims(), 0);
  EXPECT_EQ(s.size(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(VectorSeriesTest, AppendRows) {
  VectorSeries s(3, "mocap");
  s.AppendRow(std::vector<double>{1.0, 2.0, 3.0});
  s.AppendRow(std::vector<double>{4.0, 5.0, 6.0});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.dims(), 3);
  EXPECT_DOUBLE_EQ(s.Row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(s.Row(1)[2], 6.0);
  EXPECT_EQ(s.name(), "mocap");
}

TEST(VectorSeriesTest, AppendUniformRow) {
  VectorSeries s(4);
  s.AppendUniformRow(7.0);
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(s.Row(0)[static_cast<size_t>(d)], 7.0);
  }
}

TEST(VectorSeriesTest, MutableRow) {
  VectorSeries s(2);
  s.AppendUniformRow(0.0);
  s.MutableRow(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(s.Row(0)[1], 9.0);
}

TEST(VectorSeriesTest, SliceCopiesTicks) {
  VectorSeries s(2);
  for (int t = 0; t < 5; ++t) {
    s.AppendRow(std::vector<double>{static_cast<double>(t),
                                    static_cast<double>(10 * t)});
  }
  VectorSeries mid = s.Slice(1, 3);
  EXPECT_EQ(mid.size(), 3);
  EXPECT_EQ(mid.dims(), 2);
  EXPECT_DOUBLE_EQ(mid.Row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(mid.Row(2)[1], 30.0);
}

TEST(VectorSeriesTest, SliceClamps) {
  VectorSeries s(2);
  s.AppendUniformRow(1.0);
  EXPECT_EQ(s.Slice(5, 2).size(), 0);
  EXPECT_EQ(s.Slice(0, 100).size(), 1);
}

TEST(VectorSeriesTest, ChannelExtraction) {
  VectorSeries s(2);
  s.AppendRow(std::vector<double>{1.0, 2.0});
  s.AppendRow(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(s.Channel(0), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(s.Channel(1), (std::vector<double>{2.0, 4.0}));
}

TEST(VectorSeriesDeathTest, RowSizeMismatchChecks) {
  VectorSeries s(3);
  EXPECT_DEATH(s.AppendRow(std::vector<double>{1.0}), "Check failed");
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
