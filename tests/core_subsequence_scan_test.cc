#include "core/subsequence_scan.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

ts::Series RandomStream(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  double x = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.15)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.2);
    v[static_cast<size_t>(t)] = x;
  }
  return ts::Series(std::move(v));
}

TEST(BestSubsequenceTest, AgreesWithSuperNaiveOracle) {
  util::Rng rng(501);
  for (int trial = 0; trial < 8; ++trial) {
    const ts::Series stream = RandomStream(rng, rng.UniformInt(10, 28));
    std::vector<double> q(static_cast<size_t>(rng.UniformInt(2, 5)));
    for (double& y : q) y = rng.Uniform(-2.0, 2.0);
    const ts::Series query(q);

    const Match expected = SuperNaiveBestMatch(stream, query);
    const Match actual = BestSubsequence(stream, query);
    EXPECT_EQ(actual.start, expected.start) << "trial " << trial;
    EXPECT_EQ(actual.end, expected.end) << "trial " << trial;
    EXPECT_NEAR(actual.distance, expected.distance, 1e-9);
  }
}

TEST(DisjointMatchesTest, FindsRepeatedPattern) {
  std::vector<double> x;
  for (int rep = 0; rep < 3; ++rep) {
    x.insert(x.end(), {8.0, 8.0, 1.0, 2.0, 3.0, 8.0, 8.0});
  }
  const ts::Series stream(x);
  const ts::Series query({1.0, 2.0, 3.0});
  const std::vector<Match> matches = DisjointMatches(stream, query, 0.5);
  ASSERT_EQ(matches.size(), 3u);
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_DOUBLE_EQ(matches[i].distance, 0.0);
    EXPECT_EQ(matches[i].start, static_cast<int64_t>(7 * i + 2));
    EXPECT_EQ(matches[i].end, static_cast<int64_t>(7 * i + 4));
  }
}

TEST(DisjointMatchesTest, FlushToggleControlsTrailingMatch) {
  const ts::Series stream({9.0, 1.0, 2.0});  // Ends inside a perfect match.
  const ts::Series query({1.0, 2.0});
  EXPECT_EQ(DisjointMatches(stream, query, 0.5, dtw::LocalDistance::kSquared,
                            /*flush=*/true)
                .size(),
            1u);
  EXPECT_TRUE(DisjointMatches(stream, query, 0.5,
                              dtw::LocalDistance::kSquared,
                              /*flush=*/false)
                  .empty());
}

TEST(DisjointPathMatchesTest, SameMatchesWithPaths) {
  std::vector<double> x{8.0, 1.0, 2.0, 3.0, 8.0, 8.0};
  const ts::Series stream(x);
  const ts::Series query({1.0, 2.0, 3.0});
  const auto plain = DisjointMatches(stream, query, 0.5);
  const auto with_path = DisjointPathMatches(stream, query, 0.5);
  ASSERT_EQ(plain.size(), with_path.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].start, with_path[i].match.start);
    EXPECT_EQ(plain[i].end, with_path[i].match.end);
    EXPECT_FALSE(with_path[i].path.empty());
  }
}

TEST(DisjointVectorMatchesTest, FindsPlantedVectorPattern) {
  ts::VectorSeries stream(2);
  for (const auto& row : std::vector<std::vector<double>>{
           {9, 9}, {1, 0}, {2, 1}, {9, 9}, {1, 0}, {2, 1}, {9, 9}}) {
    stream.AppendRow(row);
  }
  ts::VectorSeries query(2);
  query.AppendRow(std::vector<double>{1.0, 0.0});
  query.AppendRow(std::vector<double>{2.0, 1.0});
  const auto matches = DisjointVectorMatches(stream, query, 0.5);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].start, 1);
  EXPECT_EQ(matches[1].start, 4);
}

TEST(SubsequenceDtwDistanceTest, MatchesOracleEntries) {
  util::Rng rng(502);
  const ts::Series stream = RandomStream(rng, 20);
  std::vector<double> q{0.5, -0.5, 0.25};
  const ts::Series query(q);
  const auto oracle = AllSubsequenceDistances(stream, query);
  for (int64_t a = 0; a < stream.size(); a += 3) {
    for (int64_t b = a; b < stream.size(); b += 4) {
      EXPECT_NEAR(SubsequenceDtwDistance(stream, a, b, query),
                  oracle[static_cast<size_t>(a)][static_cast<size_t>(b - a)],
                  1e-9);
    }
  }
}

TEST(CalibrateEpsilonTest, AdmitsEveryRegion) {
  util::Rng rng(503);
  // Stream with two planted copies of the query at known places.
  std::vector<double> q{1.0, 3.0, 2.0, 0.0};
  std::vector<double> x(60, 10.0);
  for (size_t i = 0; i < q.size(); ++i) {
    x[10 + i] = q[i] + rng.Gaussian(0.0, 0.05);
    x[40 + i] = q[i] + rng.Gaussian(0.0, 0.05);
  }
  const ts::Series stream(x);
  const ts::Series query(q);
  const std::vector<std::pair<int64_t, int64_t>> regions{{8, 16}, {38, 46}};
  const double epsilon = CalibrateEpsilon(stream, query, regions, 1.2);
  EXPECT_GT(epsilon, 0.0);
  // With the calibrated epsilon, both regions produce matches.
  const auto matches = DisjointMatches(stream, query, epsilon);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_NEAR(static_cast<double>(matches[0].start), 10.0, 3.0);
  EXPECT_NEAR(static_cast<double>(matches[1].start), 40.0, 3.0);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
