#include "dtw/nn_search.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace springdtw {
namespace dtw {
namespace {

ts::Series RandomSeries(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  return ts::Series(std::move(v));
}

TEST(NnSearchTest, FindsExactNearestNeighbor) {
  util::Rng rng(61);
  const ts::Series query = RandomSeries(rng, 24);
  std::vector<ts::Series> candidates;
  for (int i = 0; i < 50; ++i) candidates.push_back(RandomSeries(rng, 24));

  const auto result = NearestNeighborDtw(candidates, query);
  ASSERT_TRUE(result.ok());

  // Exhaustive check.
  int64_t best_idx = -1;
  double best = 1e300;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double d = DtwDistance(candidates[i].values(), query.values());
    if (d < best) {
      best = d;
      best_idx = static_cast<int64_t>(i);
    }
  }
  EXPECT_EQ(result->best_index, best_idx);
  EXPECT_NEAR(result->best_distance, best, 1e-9);
}

TEST(NnSearchTest, SelfIsItsOwnNearestNeighbor) {
  util::Rng rng(62);
  const ts::Series query = RandomSeries(rng, 16);
  std::vector<ts::Series> candidates;
  for (int i = 0; i < 10; ++i) candidates.push_back(RandomSeries(rng, 16));
  candidates.push_back(query);
  const auto result = NearestNeighborDtw(candidates, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 10);
  EXPECT_DOUBLE_EQ(result->best_distance, 0.0);
}

TEST(NnSearchTest, PruningActuallyHappensWithAPlantedMatch) {
  util::Rng rng(63);
  const ts::Series query = RandomSeries(rng, 32);
  std::vector<ts::Series> candidates;
  // A near-duplicate first, so later candidates get pruned against a small
  // best-so-far.
  ts::Series near_dup = query;
  near_dup[0] += 0.01;
  candidates.push_back(near_dup);
  for (int i = 0; i < 200; ++i) {
    ts::Series far = RandomSeries(rng, 32);
    for (int64_t j = 0; j < far.size(); ++j) far[j] += 10.0;  // Way off.
    candidates.push_back(far);
  }
  const auto result = NearestNeighborDtw(candidates, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 0);
  EXPECT_GT(result->pruned_by_kim + result->pruned_by_yi, 100);
  EXPECT_LT(result->full_computations, 50);
}

TEST(NnSearchTest, KeoghCascadeUnderBand) {
  util::Rng rng(64);
  const ts::Series query = RandomSeries(rng, 32);
  std::vector<ts::Series> candidates;
  ts::Series near_dup = query;
  near_dup[3] += 0.01;
  candidates.push_back(near_dup);
  for (int i = 0; i < 100; ++i) candidates.push_back(RandomSeries(rng, 32));

  DtwOptions options;
  options.constraint = GlobalConstraint::kSakoeChiba;
  options.band_radius = 4;
  const auto result = NearestNeighborDtw(candidates, query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 0);
  // Totals add up.
  EXPECT_EQ(result->pruned_by_kim + result->pruned_by_yi +
                result->pruned_by_keogh + result->full_computations,
            static_cast<int64_t>(candidates.size()));
}

TEST(NnSearchTest, EmptyCandidatesIsError) {
  util::Rng rng(65);
  EXPECT_FALSE(NearestNeighborDtw({}, RandomSeries(rng, 5)).ok());
}

TEST(NnSearchTest, EmptyQueryIsError) {
  util::Rng rng(66);
  EXPECT_FALSE(
      NearestNeighborDtw({RandomSeries(rng, 5)}, ts::Series()).ok());
}

TEST(NnSearchTest, EmptyCandidateIsError) {
  util::Rng rng(67);
  EXPECT_FALSE(
      NearestNeighborDtw({ts::Series()}, RandomSeries(rng, 5)).ok());
}

}  // namespace
}  // namespace dtw
}  // namespace springdtw
