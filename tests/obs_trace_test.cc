#include "obs/trace.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace springdtw {
namespace obs {
namespace {

TraceEvent Event(TraceEventKind kind, int64_t tick) {
  TraceEvent e;
  e.kind = kind;
  e.tick = tick;
  e.stream_id = 0;
  e.query_id = 1;
  e.start = tick - 3;
  e.end = tick;
  e.distance = 1.25;
  e.report_delay = 2;
  return e;
}

TEST(TraceRingTest, ZeroCapacityIsDisabled) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.Record(Event(TraceEventKind::kMatchReported, 1));
  EXPECT_EQ(ring.size(), 0);
  EXPECT_EQ(ring.total_recorded(), 0);
  EXPECT_TRUE(ring.Events().empty());
}

TEST(TraceRingTest, HoldsEventsInOrderBelowCapacity) {
  TraceRing ring(8);
  for (int64_t t = 0; t < 5; ++t) {
    ring.Record(Event(TraceEventKind::kBestImproved, t));
  }
  EXPECT_EQ(ring.size(), 5);
  EXPECT_EQ(ring.dropped(), 0);
  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 5u);
  for (int64_t t = 0; t < 5; ++t) EXPECT_EQ(events[t].tick, t);
}

TEST(TraceRingTest, WrapAroundKeepsNewestAndCountsDropped) {
  TraceRing ring(4);
  for (int64_t t = 0; t < 10; ++t) {
    ring.Record(Event(TraceEventKind::kBestImproved, t));
  }
  EXPECT_EQ(ring.size(), 4);
  EXPECT_EQ(ring.total_recorded(), 10);
  EXPECT_EQ(ring.dropped(), 6);
  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: ticks 6,7,8,9.
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].tick, 6 + i);
}

TEST(TraceRingTest, ClearEmptiesButKeepsCapacity) {
  TraceRing ring(4);
  ring.Record(Event(TraceEventKind::kCandidateOpened, 1));
  ring.Clear();
  EXPECT_EQ(ring.size(), 0);
  EXPECT_EQ(ring.total_recorded(), 0);
  EXPECT_TRUE(ring.enabled());
  ring.Record(Event(TraceEventKind::kCandidateOpened, 2));
  EXPECT_EQ(ring.size(), 1);
}

TEST(TraceRingTest, DumpJsonlOneObjectPerLine) {
  TraceRing ring(4);
  ring.Record(Event(TraceEventKind::kCandidateOpened, 7));
  TraceEvent vec = Event(TraceEventKind::kMatchReported, 9);
  vec.space = TraceSpace::kVector;
  ring.Record(vec);

  std::ostringstream out;
  ring.DumpJsonl(out);
  const std::vector<std::string> lines = util::Split(out.str(), '\n');
  // Trailing newline yields one empty final field.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[2].empty());
  EXPECT_EQ(lines[0],
            "{\"event\":\"candidate_opened\",\"space\":\"scalar\","
            "\"tick\":7,\"stream\":0,\"query\":1,\"start\":4,\"end\":7,"
            "\"distance\":1.25,\"report_delay\":2}");
  EXPECT_EQ(lines[1],
            "{\"event\":\"match_reported\",\"space\":\"vector\","
            "\"tick\":9,\"stream\":0,\"query\":1,\"start\":6,\"end\":9,"
            "\"distance\":1.25,\"report_delay\":2}");
}

TEST(TraceRingTest, DumpAfterWrapStartsAtOldestHeld) {
  TraceRing ring(2);
  for (int64_t t = 0; t < 5; ++t) {
    ring.Record(Event(TraceEventKind::kBestImproved, t));
  }
  std::ostringstream out;
  ring.DumpJsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("\"tick\":2"), std::string::npos);
  EXPECT_NE(text.find("\"tick\":3"), std::string::npos);
  EXPECT_NE(text.find("\"tick\":4"), std::string::npos);
  EXPECT_LT(text.find("\"tick\":3"), text.find("\"tick\":4"));
}

TEST(TraceEventKindTest, Names) {
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kCandidateOpened),
            "candidate_opened");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kBestImproved),
            "best_improved");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kMatchReported),
            "match_reported");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kCandidateFlushed),
            "candidate_flushed");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kCheckpointSave),
            "checkpoint_save");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kCheckpointRestore),
            "checkpoint_restore");
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
