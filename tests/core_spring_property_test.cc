// Property-based tests: SPRING versus brute-force ("Super-Naive") oracles on
// random streams. These exercise Theorem 1 (star-padding exactness), Lemma 1
// (no false dismissals for best-match queries) and Lemma 2 (no false
// dismissals for disjoint queries), across both local distances.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/match.h"
#include "core/naive.h"
#include "core/spring.h"
#include "dtw/local_distance.h"
#include "ts/series.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

struct PropertyCase {
  uint64_t seed;
  dtw::LocalDistance distance;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return std::string(dtw::LocalDistanceName(info.param.distance)) + "_seed" +
         std::to_string(info.param.seed);
}

class SpringPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  // Random piecewise-smooth stream: random walk with occasional jumps, so
  // matches at various scales exist and ties have probability zero.
  ts::Series RandomStream(util::Rng& rng, int64_t n) {
    std::vector<double> v(static_cast<size_t>(n));
    double x = rng.Uniform(-1.0, 1.0);
    for (int64_t t = 0; t < n; ++t) {
      if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
      x += rng.Gaussian(0.0, 0.3);
      v[static_cast<size_t>(t)] = x;
    }
    return ts::Series(std::move(v));
  }

  ts::Series RandomQuery(util::Rng& rng, int64_t m) {
    std::vector<double> v(static_cast<size_t>(m));
    for (double& x : v) x = rng.Uniform(-2.0, 2.0);
    return ts::Series(std::move(v));
  }
};

TEST_P(SpringPropertyTest, Theorem1StarPaddingEqualsSubsequenceMinimum) {
  util::Rng rng(GetParam().seed);
  const dtw::LocalDistance distance = GetParam().distance;
  const int64_t n = 28;
  const int64_t m = 4;
  const ts::Series stream = RandomStream(rng, n);
  const ts::Series query = RandomQuery(rng, m);
  const auto oracle = AllSubsequenceDistances(stream, query, distance);

  SpringOptions options;
  options.epsilon = -1.0;
  options.local_distance = distance;
  SpringMatcher matcher(query.values(), options);

  for (int64_t t = 0; t < n; ++t) {
    matcher.Update(stream[t], nullptr);
    // d(t, m) must equal min over starts a <= t of D(X[a:t], Y).
    double expected = std::numeric_limits<double>::infinity();
    for (int64_t a = 0; a <= t; ++a) {
      expected = std::min(
          expected,
          oracle[static_cast<size_t>(a)][static_cast<size_t>(t - a)]);
    }
    const double actual =
        matcher.LastRowDistances()[static_cast<size_t>(m)];
    EXPECT_NEAR(actual, expected, 1e-9) << "tick " << t;
  }
}

TEST_P(SpringPropertyTest, Lemma1BestMatchEqualsBruteForce) {
  util::Rng rng(GetParam().seed ^ 0xbeef);
  const dtw::LocalDistance distance = GetParam().distance;
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t n = rng.UniformInt(10, 32);
    const int64_t m = rng.UniformInt(2, 6);
    const ts::Series stream = RandomStream(rng, n);
    const ts::Series query = RandomQuery(rng, m);

    const Match expected = SuperNaiveBestMatch(stream, query, distance);

    SpringOptions options;
    options.epsilon = -1.0;
    options.local_distance = distance;
    SpringMatcher matcher(query.values(), options);
    for (int64_t t = 0; t < n; ++t) matcher.Update(stream[t], nullptr);

    ASSERT_TRUE(matcher.has_best());
    EXPECT_NEAR(matcher.best().distance, expected.distance, 1e-9);
    EXPECT_EQ(matcher.best().start, expected.start) << "trial " << trial;
    EXPECT_EQ(matcher.best().end, expected.end) << "trial " << trial;
  }
}

TEST_P(SpringPropertyTest, Lemma2DisjointQueriesAreSoundAndComplete) {
  util::Rng rng(GetParam().seed ^ 0xcafe);
  const dtw::LocalDistance distance = GetParam().distance;
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t n = rng.UniformInt(15, 32);
    const int64_t m = rng.UniformInt(2, 5);
    const ts::Series stream = RandomStream(rng, n);
    const ts::Series query = RandomQuery(rng, m);
    const auto oracle = AllSubsequenceDistances(stream, query, distance);

    // Pick epsilon as a mid quantile of all subsequence distances so some
    // but not all subsequences qualify.
    std::vector<double> all;
    for (const auto& row : oracle) {
      all.insert(all.end(), row.begin(), row.end());
    }
    std::sort(all.begin(), all.end());
    const double epsilon = all[all.size() / 4];

    SpringOptions options;
    options.epsilon = epsilon;
    options.local_distance = distance;
    SpringMatcher matcher(query.values(), options);
    std::vector<Match> reports;
    Match match;
    for (int64_t t = 0; t < n; ++t) {
      if (matcher.Update(stream[t], &match)) reports.push_back(match);
    }
    if (matcher.Flush(&match)) reports.push_back(match);

    // Soundness: every report is a real qualifying subsequence, and
    // reports are pairwise disjoint and ordered. The reported distance may
    // slightly *overestimate* the interval's isolated DTW distance — after
    // a report kills the cells of its group, a later match's optimal
    // alignment may have routed through a killed cell — but it can never
    // undercut it, and it always stays within epsilon (so the true
    // distance qualifies a fortiori).
    for (size_t r = 0; r < reports.size(); ++r) {
      const Match& rep = reports[r];
      ASSERT_GE(rep.start, 0);
      ASSERT_LE(rep.end, n - 1);
      const double true_distance =
          oracle[static_cast<size_t>(rep.start)]
                [static_cast<size_t>(rep.end - rep.start)];
      EXPECT_GE(rep.distance, true_distance - 1e-9);
      EXPECT_LE(rep.distance, epsilon);
      EXPECT_GE(rep.report_time, rep.end);
      EXPECT_LE(rep.group_start, rep.start);
      EXPECT_GE(rep.group_end, rep.end);
      if (r > 0) {
        EXPECT_GT(rep.start, reports[r - 1].end);
      }
      // The reported distance can never undercut the true minimum over all
      // subsequences ending at the same tick (it is a d(t_e, m) value of a
      // possibly group-killed STWM column, so it may exceed that minimum
      // when the optimum started inside an already-reported group).
      double end_min = std::numeric_limits<double>::infinity();
      for (int64_t a = 0; a <= rep.end; ++a) {
        end_min = std::min(
            end_min, oracle[static_cast<size_t>(a)]
                           [static_cast<size_t>(rep.end - a)]);
      }
      EXPECT_GE(rep.distance, end_min - 1e-9);
    }

    // Completeness (no false dismissal, Lemma 2): every qualifying
    // subsequence is accounted for by some report's group — it overlaps
    // [group_start, max(group_end, report_time)]. (A qualifying subsequence
    // whose optimal-start twin was killed by a same-tick report is covered
    // via the report_time extension.)
    for (int64_t a = 0; a < n; ++a) {
      for (int64_t b = a; b < n; ++b) {
        const double d =
            oracle[static_cast<size_t>(a)][static_cast<size_t>(b - a)];
        if (d > epsilon) continue;
        bool covered = false;
        for (const Match& rep : reports) {
          const int64_t hi = std::max(rep.group_end, rep.report_time);
          if (a <= hi && rep.group_start <= b) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "qualifying X[" << a << ":" << b
                             << "] d=" << d << " missed by all reports";
      }
    }

    // The global minimum qualifying subsequence is reported exactly.
    int64_t best_a = -1;
    int64_t best_b = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t a = 0; a <= b; ++a) {
        const double d =
            oracle[static_cast<size_t>(a)][static_cast<size_t>(b - a)];
        if (d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_d <= epsilon) {
      bool found = false;
      for (const Match& rep : reports) {
        if (rep.start == best_a && rep.end == best_b &&
            std::fabs(rep.distance - best_d) < 1e-9) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "global minimum X[" << best_a << ":" << best_b
                         << "] d=" << best_d << " not reported";
    }
  }
}

TEST_P(SpringPropertyTest, ReportsAreIdenticalWithAndWithoutMatchPointer) {
  // Passing nullptr must not change the matcher's evolution.
  util::Rng rng(GetParam().seed ^ 0xf00d);
  const ts::Series stream = RandomStream(rng, 40);
  const ts::Series query = RandomQuery(rng, 4);
  SpringOptions options;
  options.epsilon = 2.0;
  options.local_distance = GetParam().distance;
  SpringMatcher with_ptr(query.values(), options);
  SpringMatcher without_ptr(query.values(), options);
  Match match;
  for (int64_t t = 0; t < stream.size(); ++t) {
    const bool a = with_ptr.Update(stream[t], &match);
    const bool b = without_ptr.Update(stream[t], nullptr);
    EXPECT_EQ(a, b) << "tick " << t;
  }
  EXPECT_EQ(with_ptr.has_best(), without_ptr.has_best());
  if (with_ptr.has_best()) {
    EXPECT_EQ(with_ptr.best().start, without_ptr.best().start);
    EXPECT_EQ(with_ptr.best().end, without_ptr.best().end);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpringPropertyTest,
    ::testing::Values(
        PropertyCase{101, dtw::LocalDistance::kSquared},
        PropertyCase{102, dtw::LocalDistance::kSquared},
        PropertyCase{103, dtw::LocalDistance::kSquared},
        PropertyCase{104, dtw::LocalDistance::kSquared},
        PropertyCase{105, dtw::LocalDistance::kSquared},
        PropertyCase{201, dtw::LocalDistance::kAbsolute},
        PropertyCase{202, dtw::LocalDistance::kAbsolute},
        PropertyCase{203, dtw::LocalDistance::kAbsolute},
        PropertyCase{204, dtw::LocalDistance::kAbsolute},
        PropertyCase{205, dtw::LocalDistance::kAbsolute}),
    CaseName);

}  // namespace
}  // namespace core
}  // namespace springdtw
