#include "core/topk_tracker.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "core/subsequence_scan.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

Match MatchWith(double distance, int64_t end) {
  Match m;
  m.start = end;
  m.end = end;
  m.distance = distance;
  m.report_time = end;
  return m;
}

TEST(TopKTrackerTest, KeepsTheKSmallest) {
  TopKTracker tracker(3);
  for (int i = 0; i < 10; ++i) {
    tracker.Offer(MatchWith(static_cast<double>(10 - i), i));
  }
  EXPECT_EQ(tracker.size(), 3);
  EXPECT_EQ(tracker.offered(), 10);
  const std::vector<Match> top = tracker.Snapshot();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].distance, 1.0);
  EXPECT_DOUBLE_EQ(top[1].distance, 2.0);
  EXPECT_DOUBLE_EQ(top[2].distance, 3.0);
}

TEST(TopKTrackerTest, AdmissionThreshold) {
  TopKTracker tracker(2);
  EXPECT_TRUE(std::isinf(tracker.admission_threshold()));
  tracker.Offer(MatchWith(5.0, 0));
  EXPECT_TRUE(std::isinf(tracker.admission_threshold()));
  tracker.Offer(MatchWith(3.0, 1));
  EXPECT_DOUBLE_EQ(tracker.admission_threshold(), 5.0);
  EXPECT_TRUE(tracker.Offer(MatchWith(4.0, 2)));  // Evicts the 5.0.
  EXPECT_DOUBLE_EQ(tracker.admission_threshold(), 4.0);
  EXPECT_FALSE(tracker.Offer(MatchWith(4.5, 3)));  // Rejected.
}

TEST(TopKTrackerTest, ClearResets) {
  TopKTracker tracker(2);
  tracker.Offer(MatchWith(1.0, 0));
  tracker.Clear();
  EXPECT_EQ(tracker.size(), 0);
  EXPECT_EQ(tracker.offered(), 0);
}

TEST(TopKTrackerTest, OnlineAgreesWithBatchTopK) {
  // Stream SPRING reports through the tracker; the snapshot must equal the
  // batch TopKDisjointMatches answer.
  util::Rng rng(61);
  std::vector<double> values(400);
  double x = 0.0;
  for (double& v : values) {
    if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.3);
    v = x;
  }
  const ts::Series stream(values);
  const ts::Series query({0.5, -0.5, 0.25});

  SpringOptions options;
  options.epsilon = std::numeric_limits<double>::infinity();
  SpringMatcher matcher(query.values(), options);
  TopKTracker tracker(5);
  Match match;
  for (int64_t t = 0; t < stream.size(); ++t) {
    if (matcher.Update(stream[t], &match)) tracker.Offer(match);
  }
  if (matcher.Flush(&match)) tracker.Offer(match);

  const std::vector<Match> online = tracker.Snapshot();
  const std::vector<Match> batch = TopKDisjointMatches(stream, query, 5);
  ASSERT_EQ(online.size(), batch.size());
  for (size_t i = 0; i < online.size(); ++i) {
    EXPECT_EQ(online[i].start, batch[i].start) << i;
    EXPECT_EQ(online[i].end, batch[i].end) << i;
    EXPECT_DOUBLE_EQ(online[i].distance, batch[i].distance) << i;
  }
}

TEST(TopKTrackerDeathTest, KMustBePositive) {
  EXPECT_DEATH(TopKTracker(0), "Check failed");
}

}  // namespace
}  // namespace core
}  // namespace springdtw
