#include "obs/alert.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/json.h"

namespace springdtw {
namespace obs {
namespace {

uint64_t Seconds(double t) { return static_cast<uint64_t>(t * 1e9); }

/// Drives one engine + timeline pair off a live registry with a synthetic
/// clock: every step publishes a snapshot, folds it into the timeline, and
/// runs an evaluation pass — exactly the ShardedMonitor's PollTimeline
/// sequence, minus the threads.
struct Harness {
  MetricsRegistry registry;
  MetricsTimeline timeline;
  TraceRing trace{64};

  void Step(AlertEngine* engine, double t) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    timeline.Record(Seconds(t), snapshot);
    engine->Evaluate(Seconds(t), snapshot, timeline, &trace);
  }
};

AlertRule MustParse(std::string_view line) {
  auto rule = ParseAlertRule(line);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return *rule;
}

TEST(AlertParseTest, AllExpressionKinds) {
  AlertRule value = MustParse("alert hot warn value(depth) >= 10 for 5s");
  EXPECT_EQ(value.name, "hot");
  EXPECT_EQ(value.severity, AlertSeverity::kWarn);
  EXPECT_EQ(value.kind, AlertExprKind::kValue);
  EXPECT_EQ(value.cmp, AlertCmp::kGe);
  EXPECT_EQ(value.threshold, 10.0);
  EXPECT_EQ(value.for_seconds, 5.0);
  EXPECT_EQ(value.metric, "depth");

  AlertRule ratio = MustParse(
      "alert full page ratio(spring_ring_occupancy, spring_ring_capacity) "
      "> 0.9");
  EXPECT_EQ(ratio.kind, AlertExprKind::kRatio);
  EXPECT_EQ(ratio.severity, AlertSeverity::kPage);
  EXPECT_EQ(ratio.metric_b, "spring_ring_capacity");
  EXPECT_EQ(ratio.for_seconds, 0.0);

  AlertRule rate = MustParse("alert quiet warn rate(ticks_total) < 1 for 3s");
  EXPECT_EQ(rate.kind, AlertExprKind::kRate);
  EXPECT_EQ(rate.cmp, AlertCmp::kLt);

  AlertRule absent = MustParse("alert dead page absent(heartbeat) for 30s");
  EXPECT_EQ(absent.kind, AlertExprKind::kAbsent);
  EXPECT_EQ(absent.for_seconds, 30.0);

  AlertRule burn =
      MustParse("alert slo page burn(lat{stage=total}:p99, 5e7, 60s, 300s) "
                "> 0.5");
  EXPECT_EQ(burn.kind, AlertExprKind::kBurnRate);
  EXPECT_EQ(burn.metric, "lat");
  EXPECT_EQ(burn.field, "p99");
  EXPECT_EQ(burn.label_key, "stage");
  EXPECT_EQ(burn.label_value, "total");
  EXPECT_EQ(burn.budget, 5e7);
  EXPECT_EQ(burn.fast_window_seconds, 60.0);
  EXPECT_EQ(burn.slow_window_seconds, 300.0);
}

TEST(AlertParseTest, MalformedRulesAreRejected) {
  // Each line violates one rule of the grammar.
  const char* bad[] = {
      "value(x) > 1",                           // No `alert` keyword.
      "alert x critical value(m) > 1",          // Unknown severity.
      "alert x warn frobnicate(m) > 1",         // Unknown expression.
      "alert x warn value(m) 1",                // Missing comparison.
      "alert x warn value(m) > banana",         // Non-numeric threshold.
      "alert x warn value() > 1",               // Empty metric.
      "alert x warn absent(m)",                 // absent() needs `for`.
      "alert x warn absent(m) > 1 for 5s",      // absent() + comparison.
      "alert x warn ratio(a) > 1",              // ratio() needs two metrics.
      "alert x warn burn(m:p99, 1, 60s) > .5",  // burn() needs four args.
      "alert x warn burn(m:p99, 1, 300s, 60s) > .5",  // fast > slow.
      "alert x warn value(m{stage) > 1",        // Unterminated filter.
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseAlertRule(line).ok()) << line;
  }
}

TEST(AlertParseTest, RulesFileSkipsCommentsAndNamesBadLine) {
  auto rules = ParseAlertRules(
      "# fleet health\n"
      "\n"
      "alert a warn value(m) > 1\n"
      "alert b page absent(m) for 5s  # staleness\n");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);

  auto bad = ParseAlertRules("alert a warn value(m) > 1\n\nnot a rule\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos)
      << bad.status().ToString();
}

TEST(AlertParseTest, SloP99RuleMatchesConvention) {
  const AlertRule rule = MakeSloP99Rule(50.0);
  EXPECT_EQ(rule.kind, AlertExprKind::kBurnRate);
  EXPECT_EQ(rule.severity, AlertSeverity::kPage);
  EXPECT_EQ(rule.metric, "spring_e2e_latency_nanos");
  EXPECT_EQ(rule.field, "p99");
  EXPECT_EQ(rule.label_value, "total");
  EXPECT_EQ(rule.budget, 50.0 * 1e6);  // ms -> nanos.
  EXPECT_EQ(rule.threshold, 0.5);
}

TEST(AlertEngineTest, ValueRuleWalksFullLifecycle) {
  Harness h;
  Gauge* g = h.registry.GetGauge("depth", "");
  AlertEngine engine({MustParse("alert hot warn value(depth) > 5 for 2s")});

  g->Set(1.0);
  h.Step(&engine, 0.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);

  g->Set(10.0);
  h.Step(&engine, 1.0);  // Condition true: hold starts.
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  h.Step(&engine, 2.0);  // Held 1s of 2s: still pending.
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  EXPECT_FALSE(engine.AnyFiringPage());
  h.Step(&engine, 3.5);  // Held 2.5s: fires (warn never pages).
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
  EXPECT_FALSE(engine.AnyFiringPage());

  g->Set(0.0);
  h.Step(&engine, 4.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kResolved);

  // Resolved re-arms like inactive; a cleared pending never fires.
  g->Set(10.0);
  h.Step(&engine, 5.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  g->Set(0.0);
  h.Step(&engine, 5.5);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);

  const AlertStatus status = engine.Statuses()[0];
  EXPECT_EQ(status.pending_count, 2);
  EXPECT_EQ(status.firing_count, 1);
  EXPECT_EQ(status.resolved_count, 1);
  EXPECT_EQ(status.value, 0.0);  // Last observation.

  // Every transition left a trace record: pending, firing, resolved,
  // pending, inactive.
  int64_t transitions = 0;
  for (const TraceEvent& event : h.trace.Events()) {
    if (event.kind == TraceEventKind::kAlertTransition) ++transitions;
  }
  EXPECT_EQ(transitions, 5);
}

TEST(AlertEngineTest, ZeroHoldPageFiresImmediatelyAndGatesHealth) {
  Harness h;
  Gauge* g = h.registry.GetGauge("depth", "");
  AlertEngine engine({MustParse("alert hot page value(depth) > 5")});
  g->Set(10.0);
  h.Step(&engine, 0.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
  EXPECT_TRUE(engine.AnyFiringPage());
  EXPECT_EQ(engine.Statuses()[0].pending_count, 0);  // Skipped the hold.
  g->Set(0.0);
  h.Step(&engine, 1.0);
  EXPECT_FALSE(engine.AnyFiringPage());
}

TEST(AlertEngineTest, MissingMetricIsNotACondition) {
  Harness h;
  AlertEngine engine({MustParse("alert hot warn value(never) > 5")});
  h.Step(&engine, 0.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);
  EXPECT_TRUE(std::isnan(engine.Statuses()[0].value));
}

TEST(AlertEngineTest, RateRuleReadsTimeline) {
  Harness h;
  Counter* c = h.registry.GetCounter("ticks_total", "");
  AlertEngine engine(
      {MustParse("alert fast warn rate(ticks_total) > 50 for 2s")});
  h.Step(&engine, 0.0);  // Baseline record: no delta yet.
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);
  for (int t = 1; t <= 4; ++t) {
    c->Increment(100);  // 100 ticks/sec, over the 50/s threshold.
    h.Step(&engine, static_cast<double>(t));
  }
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
  EXPECT_NEAR(engine.Statuses()[0].value, 100.0, 1e-9);
  // Flat counter: rate drops to zero and the alert resolves.
  h.Step(&engine, 5.0);
  h.Step(&engine, 6.0);
  h.Step(&engine, 7.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kResolved);
}

TEST(AlertEngineTest, AbsentRuleFiresUntilMetricAppears) {
  Harness h;
  AlertEngine engine(
      {MustParse("alert dead page absent(heartbeat) for 2s")});
  h.Step(&engine, 0.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  h.Step(&engine, 3.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
  EXPECT_TRUE(engine.AnyFiringPage());

  h.registry.GetGauge("heartbeat", "")->Set(1.0);
  h.Step(&engine, 4.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kResolved);
  EXPECT_FALSE(engine.AnyFiringPage());
}

TEST(AlertEngineTest, BurnRuleNeedsBothWindowsBad) {
  Harness h;
  Gauge* lat = h.registry.GetGauge("lat", "");
  AlertEngine engine(
      {MustParse("alert slo page burn(lat, 100, 2s, 6s) > 0.5")});

  // Below budget: healthy buckets in both windows.
  for (int t = 0; t < 6; ++t) {
    lat->Set(50.0);
    h.Step(&engine, static_cast<double>(t));
  }
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);

  // Blow the budget: the 2s fast window trips immediately, but the 6s slow
  // window still remembers healthy buckets — both must agree to fire.
  lat->Set(500.0);
  h.Step(&engine, 6.0);
  h.Step(&engine, 7.0);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);
  for (int t = 8; t < 12; ++t) {
    lat->Set(500.0);
    h.Step(&engine, static_cast<double>(t));
  }
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
}

TEST(AlertEngineTest, RenderAlertzJsonShapeAndFiringCounts) {
  Harness h;
  Gauge* g = h.registry.GetGauge("depth", "");
  AlertEngine engine({MustParse("alert hot page value(depth) > 5"),
                      MustParse("alert cold warn value(depth) < -5")});
  g->Set(10.0);
  h.Step(&engine, 1.0);

  auto doc = util::ParseJson(RenderAlertzJson(engine.Statuses(), Seconds(2)));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->NumberOr("firing", -1), 1.0);
  EXPECT_EQ(doc->NumberOr("firing_page", -1), 1.0);
  const auto& rules = doc->Find("rules")->array();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].StringOr("name", ""), "hot");
  EXPECT_EQ(rules[0].StringOr("state", ""), "firing");
  EXPECT_EQ(rules[0].StringOr("expr", ""), "value(depth) > 5");
  EXPECT_EQ(rules[1].StringOr("state", ""), "inactive");
  // Never-moved rules report since_seconds_ago = -1, moved ones >= 0.
  EXPECT_GE(rules[0].NumberOr("since_seconds_ago", -2), 0.0);
  EXPECT_EQ(rules[1].NumberOr("since_seconds_ago", -2), -1.0);
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
