// SpringBatchPool unit tests: the SoA pool must be bit-for-bit equivalent
// to one SpringMatcher per query — same reports (start, end, distance,
// report tick), same best-match, same snapshots through the
// ToMatcher/AdoptMatcher bridge. The randomized cross-implementation sweep
// lives in differential_oracle_test.cc; these are the targeted cases.
#include <cmath>
#include <limits>
#include <vector>

#include "core/spring.h"
#include "core/spring_batch.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> RampStream(int64_t ticks) {
  std::vector<double> stream(static_cast<size_t>(ticks), 9.0);
  for (int64_t t = 0; t + 3 < ticks; t += 40) {
    stream[static_cast<size_t>(t + 1)] = 1.0;
    stream[static_cast<size_t>(t + 2)] = 2.0;
    stream[static_cast<size_t>(t + 3)] = 3.0;
  }
  return stream;
}

/// Feeds `stream` to reference matchers and to one pool; expects identical
/// report sequences and identical end state.
void ExpectPoolMatchesReference(
    const std::vector<std::vector<double>>& queries,
    const std::vector<SpringOptions>& options,
    const std::vector<double>& stream, bool flush) {
  ASSERT_EQ(queries.size(), options.size());
  std::vector<SpringMatcher> reference;
  SpringBatchPool pool;
  for (size_t i = 0; i < queries.size(); ++i) {
    reference.emplace_back(queries[i], options[i]);
    pool.AddQuery(queries[i], options[i]);
  }

  std::vector<SpringBatchPool::Report> reports;
  for (size_t t = 0; t < stream.size(); ++t) {
    reports.clear();
    pool.Update(stream[t], &reports);
    size_t next_report = 0;
    for (size_t i = 0; i < reference.size(); ++i) {
      Match expected;
      if (reference[i].Update(stream[t], &expected)) {
        ASSERT_LT(next_report, reports.size())
            << "pool missed a report at tick " << t << " query " << i;
        const SpringBatchPool::Report& got = reports[next_report++];
        EXPECT_EQ(got.query_index, static_cast<int64_t>(i));
        EXPECT_EQ(got.match.start, expected.start);
        EXPECT_EQ(got.match.end, expected.end);
        EXPECT_EQ(got.match.distance, expected.distance);
        EXPECT_EQ(got.match.report_time, expected.report_time);
        EXPECT_EQ(got.match.group_start, expected.group_start);
        EXPECT_EQ(got.match.group_end, expected.group_end);
      }
    }
    EXPECT_EQ(next_report, reports.size()) << "spurious report at tick " << t;
  }

  for (size_t i = 0; i < reference.size(); ++i) {
    const auto index = static_cast<int64_t>(i);
    EXPECT_EQ(pool.ticks_processed(index), reference[i].ticks_processed());
    EXPECT_EQ(pool.has_best(index), reference[i].has_best());
    if (reference[i].has_best()) {
      EXPECT_EQ(pool.best_distance(index), reference[i].best_distance());
      EXPECT_EQ(pool.best(index).start, reference[i].best().start);
      EXPECT_EQ(pool.best(index).end, reference[i].best().end);
    }
    EXPECT_EQ(pool.has_pending_candidate(index),
              reference[i].has_pending_candidate());
    // Snapshot equivalence: the pool slot serializes to the exact bytes the
    // standalone matcher produces.
    EXPECT_EQ(pool.ToMatcher(index).SerializeState(),
              reference[i].SerializeState())
        << "snapshot mismatch for query " << i;
  }

  if (flush) {
    reports.clear();
    pool.Flush(&reports);
    size_t next_report = 0;
    for (size_t i = 0; i < reference.size(); ++i) {
      Match expected;
      if (reference[i].Flush(&expected)) {
        ASSERT_LT(next_report, reports.size());
        const SpringBatchPool::Report& got = reports[next_report++];
        EXPECT_EQ(got.query_index, static_cast<int64_t>(i));
        EXPECT_EQ(got.match.start, expected.start);
        EXPECT_EQ(got.match.end, expected.end);
        EXPECT_EQ(got.match.distance, expected.distance);
        EXPECT_EQ(got.match.report_time, expected.report_time);
      }
    }
    EXPECT_EQ(next_report, reports.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(pool.ToMatcher(static_cast<int64_t>(i)).SerializeState(),
                reference[i].SerializeState());
    }
  }
}

TEST(SpringBatchPoolTest, SingleQueryMatchesSpringMatcher) {
  SpringOptions options;
  options.epsilon = 0.5;
  ExpectPoolMatchesReference({{1.0, 2.0, 3.0}}, {options}, RampStream(300),
                             /*flush=*/true);
}

TEST(SpringBatchPoolTest, HeterogeneousQueriesAndOptions) {
  SpringOptions tight;
  tight.epsilon = 0.5;
  SpringOptions loose;
  loose.epsilon = 10.0;
  SpringOptions absolute;
  absolute.epsilon = 2.0;
  absolute.local_distance = dtw::LocalDistance::kAbsolute;
  SpringOptions constrained;
  constrained.epsilon = 10.0;
  constrained.max_match_length = 4;
  constrained.min_match_length = 2;
  ExpectPoolMatchesReference(
      {{1.0, 2.0, 3.0}, {2.0, 2.0}, {1.0, 2.0, 3.0, 2.0, 1.0}, {3.0, 2.0}},
      {tight, loose, absolute, constrained}, RampStream(400),
      /*flush=*/true);
}

TEST(SpringBatchPoolTest, EpsilonZeroExactMatches) {
  SpringOptions options;
  options.epsilon = 0.0;
  ExpectPoolMatchesReference({{1.0, 2.0, 3.0}}, {options}, RampStream(200),
                             /*flush=*/true);
}

TEST(SpringBatchPoolTest, EverySubsequenceQualifies) {
  SpringOptions options;
  options.epsilon = kInf;
  ExpectPoolMatchesReference({{5.0, 6.0}}, {options}, RampStream(120),
                             /*flush=*/true);
}

TEST(SpringBatchPoolTest, PushBatchEqualsPerTickUpdates) {
  SpringOptions options;
  options.epsilon = 0.5;
  const std::vector<double> stream = RampStream(500);

  SpringBatchPool tick_pool;
  SpringBatchPool batch_pool;
  for (int q = 0; q < 3; ++q) {
    std::vector<double> query = {1.0, 2.0, 3.0};
    for (double& y : query) y += 0.01 * q;
    tick_pool.AddQuery(query, options);
    batch_pool.AddQuery(query, options);
  }

  std::vector<SpringBatchPool::Report> tick_reports;
  for (const double x : stream) tick_pool.Update(x, &tick_reports);

  std::vector<SpringBatchPool::Report> batch_reports;
  // Odd-sized chunks exercise the parity handling.
  constexpr size_t kChunk = 33;
  for (size_t offset = 0; offset < stream.size(); offset += kChunk) {
    const size_t count = std::min(kChunk, stream.size() - offset);
    batch_pool.PushBatch(
        std::span<const double>(stream.data() + offset, count),
        &batch_reports);
  }

  ASSERT_EQ(batch_reports.size(), tick_reports.size());
  ASSERT_FALSE(tick_reports.empty());
  for (size_t i = 0; i < tick_reports.size(); ++i) {
    EXPECT_EQ(batch_reports[i].query_index, tick_reports[i].query_index);
    EXPECT_EQ(batch_reports[i].match.start, tick_reports[i].match.start);
    EXPECT_EQ(batch_reports[i].match.end, tick_reports[i].match.end);
    EXPECT_EQ(batch_reports[i].match.distance,
              tick_reports[i].match.distance);
    EXPECT_EQ(batch_reports[i].match.report_time,
              tick_reports[i].match.report_time);
  }
  for (int64_t q = 0; q < 3; ++q) {
    EXPECT_EQ(batch_pool.ToMatcher(q).SerializeState(),
              tick_pool.ToMatcher(q).SerializeState());
  }
}

TEST(SpringBatchPoolTest, AdoptMatcherContinuesMidStream) {
  SpringOptions options;
  options.epsilon = 0.5;
  const std::vector<double> stream = RampStream(300);
  const size_t split = 147;  // Mid-group, not on a period boundary.

  SpringMatcher reference({1.0, 2.0, 3.0}, options);
  std::vector<SpringBatchPool::Report> pool_reports;
  std::vector<Match> reference_matches;
  Match match;
  for (size_t t = 0; t < split; ++t) {
    if (reference.Update(stream[t], &match)) reference_matches.push_back(match);
  }

  SpringBatchPool pool;
  const int64_t index = pool.AdoptMatcher(reference);
  EXPECT_EQ(pool.ticks_processed(index), static_cast<int64_t>(split));

  for (size_t t = split; t < stream.size(); ++t) {
    if (reference.Update(stream[t], &match)) reference_matches.push_back(match);
    pool.Update(stream[t], &pool_reports);
  }
  // The adopted pool only saw the second half; its reports must equal the
  // reference's second-half reports.
  size_t second_half = 0;
  for (const Match& m : reference_matches) {
    if (m.report_time >= static_cast<int64_t>(split)) ++second_half;
  }
  ASSERT_EQ(pool_reports.size(), second_half);
  size_t j = 0;
  for (const Match& m : reference_matches) {
    if (m.report_time < static_cast<int64_t>(split)) continue;
    EXPECT_EQ(pool_reports[j].match.start, m.start);
    EXPECT_EQ(pool_reports[j].match.end, m.end);
    EXPECT_EQ(pool_reports[j].match.distance, m.distance);
    EXPECT_EQ(pool_reports[j].match.report_time, m.report_time);
    ++j;
  }
  EXPECT_EQ(pool.ToMatcher(index).SerializeState(),
            reference.SerializeState());
}

TEST(SpringBatchPoolTest, AdoptRestoredSnapshotRoundTrips) {
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher({1.0, 2.0, 3.0}, options);
  Match match;
  for (const double x : RampStream(123)) matcher.Update(x, &match);

  const std::vector<uint8_t> snapshot = matcher.SerializeState();
  auto restored = SpringMatcher::DeserializeState(snapshot);
  ASSERT_TRUE(restored.ok());

  SpringBatchPool pool;
  const int64_t index = pool.AdoptMatcher(*restored);
  EXPECT_EQ(pool.ToMatcher(index).SerializeState(), snapshot);
}

TEST(SpringBatchPoolTest, MidStreamAddedQueryKeepsOwnClock) {
  SpringOptions options;
  options.epsilon = 0.5;
  const std::vector<double> stream = RampStream(260);
  const size_t split = 100;

  SpringBatchPool pool;
  pool.AddQuery({1.0, 2.0, 3.0}, options);
  std::vector<SpringBatchPool::Report> reports;
  for (size_t t = 0; t < split; ++t) pool.Update(stream[t], &reports);

  // A query attached mid-stream starts at its own tick 0, exactly like a
  // fresh SpringMatcher attached at that point.
  const int64_t late = pool.AddQuery({1.0, 2.0, 3.0}, options);
  SpringMatcher late_reference({1.0, 2.0, 3.0}, options);
  EXPECT_EQ(pool.ticks_processed(late), 0);

  Match match;
  for (size_t t = split; t < stream.size(); ++t) {
    pool.Update(stream[t], &reports);
    late_reference.Update(stream[t], &match);
  }
  EXPECT_EQ(pool.ToMatcher(late).SerializeState(),
            late_reference.SerializeState());
}

TEST(SpringBatchPoolTest, RandomStreamsBitwiseEquivalent) {
  util::Rng rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    const int64_t m = rng.UniformInt(1, 9);
    std::vector<double> query(static_cast<size_t>(m));
    for (double& y : query) y = rng.Uniform(-2.0, 2.0);
    SpringOptions options;
    options.epsilon = rng.Uniform(0.0, 4.0);
    if (rng.Bernoulli(0.3)) {
      options.local_distance = dtw::LocalDistance::kAbsolute;
    }
    if (rng.Bernoulli(0.25)) options.max_match_length = rng.UniformInt(2, 10);
    if (rng.Bernoulli(0.25)) options.min_match_length = rng.UniformInt(1, 3);
    std::vector<double> stream(
        static_cast<size_t>(rng.UniformInt(20, 200)));
    for (double& x : stream) {
      // A small alphabet forces DP ties, exercising tie-break fidelity.
      x = static_cast<double>(rng.UniformInt(-2, 2));
    }
    ExpectPoolMatchesReference({query}, {options}, stream, /*flush=*/true);
  }
}

TEST(SpringBatchPoolTest, FootprintCoversRows) {
  SpringOptions options;
  options.epsilon = 1.0;
  SpringBatchPool pool;
  pool.AddQuery(std::vector<double>(64, 1.0), options);
  pool.AddQuery(std::vector<double>(32, 2.0), options);
  const util::MemoryFootprint fp = pool.Footprint();
  // 96 query doubles + 2 buffers x 96 row doubles + 2 x 96 row int64s.
  EXPECT_GE(fp.TotalBytes(), static_cast<int64_t>((96 + 4 * 96) * 8));
}

}  // namespace
}  // namespace springdtw
}  // namespace core
