#include <vector>

#include <gtest/gtest.h>

#include "gen/mocap.h"
#include "monitor/engine.h"
#include "monitor/sink.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions Options(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

ts::VectorSeries MakeQuery(
    const std::vector<std::vector<double>>& rows) {
  ts::VectorSeries out(static_cast<int64_t>(rows[0].size()));
  for (const auto& row : rows) out.AppendRow(row);
  return out;
}

TEST(VectorEngineTest, MatchesDispatchWithOrigin) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddVectorStream("mocap", 2);
  const auto query = engine.AddVectorQuery(
      stream, "gesture", MakeQuery({{1.0, -1.0}, {2.0, -2.0}}),
      Options(0.25));
  ASSERT_TRUE(query.ok());

  for (const auto& row : std::vector<std::vector<double>>{
           {9, 9}, {1, -1}, {2, -2}, {9, 9}}) {
    ASSERT_TRUE(engine.PushRow(stream, row).ok());
  }
  engine.FlushAll();

  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].origin.stream_name, "mocap");
  EXPECT_EQ(sink.entries()[0].origin.query_name, "gesture");
  EXPECT_EQ(sink.entries()[0].match.start, 1);
  EXPECT_EQ(sink.entries()[0].match.end, 2);

  const QueryStats& stats = engine.vector_stats(*query);
  EXPECT_EQ(stats.ticks, 4);
  EXPECT_EQ(stats.matches, 1);
}

TEST(VectorEngineTest, ScalarAndVectorIdSpacesAreSeparate) {
  MonitorEngine engine;
  const int64_t scalar = engine.AddStream("s");
  const int64_t vector = engine.AddVectorStream("v", 3);
  EXPECT_EQ(scalar, 0);
  EXPECT_EQ(vector, 0);  // Own id space.
  EXPECT_EQ(engine.num_streams(), 1);
  EXPECT_EQ(engine.num_vector_streams(), 1);
  // Scalar push to a vector id that has no scalar stream fails cleanly...
  EXPECT_FALSE(engine.Push(5, 1.0).ok());
  // ... and vector push to scalar-only space fails too.
  EXPECT_FALSE(engine.PushRow(5, std::vector<double>{1, 2, 3}).ok());
}

TEST(VectorEngineTest, DimsMismatchRejected) {
  MonitorEngine engine;
  const int64_t stream = engine.AddVectorStream("v", 3);
  // Query with the wrong channel count.
  EXPECT_FALSE(engine
                   .AddVectorQuery(stream, "q",
                                   MakeQuery({{1.0, 2.0}}), Options(1.0))
                   .ok());
  // Row with the wrong channel count.
  ASSERT_TRUE(engine
                  .AddVectorQuery(stream, "q",
                                  MakeQuery({{1.0, 2.0, 3.0}}), Options(1.0))
                  .ok());
  EXPECT_FALSE(engine.PushRow(stream, std::vector<double>{1.0}).ok());
  EXPECT_TRUE(
      engine.PushRow(stream, std::vector<double>{1.0, 2.0, 3.0}).ok());
}

TEST(VectorEngineTest, NanRowsRejected) {
  MonitorEngine engine;
  const int64_t stream = engine.AddVectorStream("v", 2);
  ASSERT_TRUE(engine
                  .AddVectorQuery(stream, "q", MakeQuery({{0.0, 0.0}}),
                                  Options(1.0))
                  .ok());
  EXPECT_FALSE(
      engine.PushRow(stream, std::vector<double>{1.0, ts::MissingValue()})
          .ok());
}

TEST(VectorEngineTest, NanQueryRejected) {
  MonitorEngine engine;
  const int64_t stream = engine.AddVectorStream("v", 1);
  EXPECT_FALSE(engine
                   .AddVectorQuery(stream, "q",
                                   MakeQuery({{ts::MissingValue()}}),
                                   Options(1.0))
                   .ok());
}

TEST(VectorEngineTest, FlushAllCoversVectorQueries) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddVectorStream("v", 1);
  ASSERT_TRUE(engine
                  .AddVectorQuery(stream, "q",
                                  MakeQuery({{1.0}, {2.0}}), Options(0.25))
                  .ok());
  // Stream ends right at the match; only FlushAll can emit it.
  ASSERT_TRUE(engine.PushRow(stream, std::vector<double>{1.0}).ok());
  ASSERT_TRUE(engine.PushRow(stream, std::vector<double>{2.0}).ok());
  EXPECT_TRUE(sink.entries().empty());
  EXPECT_EQ(engine.FlushAll(), 1);
  EXPECT_EQ(sink.entries().size(), 1u);
}

TEST(VectorEngineTest, MocapPipelineThroughEngine) {
  gen::MocapOptions options;
  options.dims = 8;
  options.canonical_length = 80;
  const gen::MocapData data = GenerateMocap(options);

  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddVectorStream("mocap", options.dims);
  for (const auto& [name, query] : data.queries) {
    // Generous epsilon: this test checks plumbing, not selectivity.
    core::SpringOptions spring_options;
    spring_options.epsilon = 1e4;
    ASSERT_TRUE(
        engine.AddVectorQuery(stream, name, query, spring_options).ok());
  }
  for (int64_t t = 0; t < data.stream.size(); ++t) {
    ASSERT_TRUE(engine.PushRow(stream, data.stream.Row(t)).ok());
  }
  engine.FlushAll();
  EXPECT_GT(sink.entries().size(), 0u);
  EXPECT_GT(engine.Footprint().TotalBytes(), 0);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
