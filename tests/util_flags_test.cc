#include "util/flags.h"

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

FlagParser MakeParser(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = MakeParser({"--n=100", "--epsilon=2.5", "--name=chirp"});
  EXPECT_EQ(flags.GetInt64("n", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 0.0), 2.5);
  EXPECT_EQ(flags.GetString("name", ""), "chirp");
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = MakeParser({"--n", "100", "--name", "chirp"});
  EXPECT_EQ(flags.GetInt64("n", 0), 100);
  EXPECT_EQ(flags.GetString("name", ""), "chirp");
}

TEST(FlagParserTest, BareFlagIsTrue) {
  FlagParser flags = MakeParser({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("quiet"));
}

TEST(FlagParserTest, BoolSpellings) {
  FlagParser flags = MakeParser({"--a=true", "--b=0", "--c=yes", "--d=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagParserTest, DefaultsWhenAbsentOrMalformed) {
  FlagParser flags = MakeParser({"--n=abc"});
  EXPECT_EQ(flags.GetInt64("n", 7), 7);
  EXPECT_EQ(flags.GetInt64("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = MakeParser({"input.csv", "--n=5", "output.csv"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
  EXPECT_EQ(flags.program_name(), "prog");
}

TEST(FlagParserTest, NegativeNumberAfterSpaceFlag) {
  // "--lo -3" would treat -3 as the value (does not start with --).
  FlagParser flags = MakeParser({"--lo", "-3"});
  EXPECT_EQ(flags.GetInt64("lo", 0), -3);
}

}  // namespace
}  // namespace util
}  // namespace springdtw
