#include "core/spring_path.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "core/subsequence_scan.h"
#include "gen/masked_chirp.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

ts::Series RandomStream(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  double x = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.3);
    v[static_cast<size_t>(t)] = x;
  }
  return ts::Series(std::move(v));
}

class PathEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathEquivalenceTest, MatchesAreIdenticalToPlainSpring) {
  util::Rng rng(GetParam());
  const int64_t n = 200;
  const int64_t m = rng.UniformInt(2, 8);
  const ts::Series stream = RandomStream(rng, n);
  std::vector<double> query(static_cast<size_t>(m));
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);

  SpringOptions options;
  options.epsilon = rng.Uniform(0.5, 5.0);
  SpringMatcher plain(query, options);
  SpringPathMatcher with_path(query, options);

  Match plain_match;
  PathMatch path_match;
  for (int64_t t = 0; t < n; ++t) {
    const bool a = plain.Update(stream[t], &plain_match);
    const bool b = with_path.Update(stream[t], &path_match);
    ASSERT_EQ(a, b) << "tick " << t;
    if (a) {
      EXPECT_EQ(plain_match.start, path_match.match.start);
      EXPECT_EQ(plain_match.end, path_match.match.end);
      EXPECT_NEAR(plain_match.distance, path_match.match.distance, 1e-12);
      EXPECT_EQ(plain_match.report_time, path_match.match.report_time);
    }
  }
  EXPECT_EQ(plain.Flush(&plain_match), with_path.Flush(&path_match));
}

TEST_P(PathEquivalenceTest, ReportedPathIsAValidOptimalWarpingPath) {
  util::Rng rng(GetParam() ^ 0xabcd);
  const int64_t n = 300;
  const int64_t m = rng.UniformInt(3, 7);
  const ts::Series stream = RandomStream(rng, n);
  std::vector<double> query(static_cast<size_t>(m));
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);

  SpringOptions options;
  options.epsilon = rng.Uniform(1.0, 6.0);
  SpringPathMatcher matcher(query, options);

  std::vector<PathMatch> reports;
  PathMatch match;
  for (int64_t t = 0; t < n; ++t) {
    if (matcher.Update(stream[t], &match)) reports.push_back(match);
  }
  if (matcher.Flush(&match)) reports.push_back(match);

  for (const PathMatch& rep : reports) {
    const auto& path = rep.path;
    ASSERT_FALSE(path.empty());
    // The path spans the match: starts at (start, 0), ends at (end, m-1).
    EXPECT_EQ(path.front().first, rep.match.start);
    EXPECT_EQ(path.front().second, 0);
    EXPECT_EQ(path.back().first, rep.match.end);
    EXPECT_EQ(path.back().second, m - 1);
    // Monotone warping-path steps.
    for (size_t k = 1; k < path.size(); ++k) {
      const int64_t dt = path[k].first - path[k - 1].first;
      const int64_t di = path[k].second - path[k - 1].second;
      EXPECT_TRUE((dt == 0 || dt == 1) && (di == 0 || di == 1) &&
                  dt + di >= 1)
          << "step " << k;
    }
    // Local costs along the path sum to the reported DTW distance.
    double total = 0.0;
    for (const auto& [t, i] : path) {
      const double d = stream[t] - query[static_cast<size_t>(i)];
      total += d * d;
    }
    EXPECT_NEAR(total, rep.match.distance, 1e-9);
    // The reported value never undercuts the isolated subsequence DTW
    // distance (it can exceed it when the isolated optimum would route
    // through a previously reported — and therefore killed — group).
    EXPECT_GE(rep.match.distance,
              SubsequenceDtwDistance(stream, rep.match.start, rep.match.end,
                                     ts::Series(query)) -
                  1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathEquivalenceTest,
                         ::testing::Values(311, 322, 333, 344, 355));

TEST(SpringPathMatcherTest, LiveNodesStayBoundedOnPeriodicStream) {
  SpringOptions options;
  options.epsilon = 0.5;
  std::vector<double> query{0.0, 1.0, 0.0, -1.0};
  SpringPathMatcher matcher(query, options);
  util::Rng rng(77);
  PathMatch match;
  auto feed = [&](int64_t ticks) {
    for (int64_t t = 0; t < ticks; ++t) {
      matcher.Update(std::sin(0.1 * static_cast<double>(t)) +
                         rng.Gaussian(0.0, 0.05),
                     &match);
    }
  };
  feed(2000);
  const int64_t live_2k = matcher.live_nodes();
  feed(8000);
  const int64_t live_10k = matcher.live_nodes();
  // Live paths track the warping structure, not the stream length: after 5x
  // more data the live-node count must not have grown 5x.
  EXPECT_LT(live_10k, 3 * live_2k + 1000);
}

TEST(SpringPathMatcherTest, FootprintIncludesPathArena) {
  SpringOptions options;
  options.epsilon = 1.0;
  SpringPathMatcher matcher(std::vector<double>{1.0, 2.0}, options);
  matcher.Update(1.0, nullptr);
  const auto fp = matcher.Footprint();
  bool has_arena = false;
  for (const auto& [name, bytes] : fp.components()) {
    if (name == "path_arena") has_arena = true;
  }
  EXPECT_TRUE(has_arena);
  EXPECT_GT(fp.TotalBytes(), 0);
}

TEST(SpringPathMatcherTest, BestMatchTracked) {
  SpringOptions options;
  options.epsilon = -1.0;
  SpringPathMatcher matcher(std::vector<double>{5.0}, options);
  for (double x : {1.0, 4.9, 2.0}) matcher.Update(x, nullptr);
  ASSERT_TRUE(matcher.has_best());
  EXPECT_EQ(matcher.best().start, 1);
  EXPECT_NEAR(matcher.best().distance, 0.01, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
