#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/sink.h"
#include "monitor/stream_source.h"

namespace springdtw {
namespace monitor {
namespace {

TEST(SeriesSourceTest, ReplaysSeriesInOrder) {
  SeriesSource source(ts::Series({1.0, 2.0, 3.0}));
  double v = 0.0;
  EXPECT_TRUE(source.Next(&v));
  EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_TRUE(source.Next(&v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(source.Next(&v));
  EXPECT_DOUBLE_EQ(v, 3.0);
  EXPECT_FALSE(source.Next(&v));
  EXPECT_EQ(source.position(), 3);
}

TEST(SeriesSourceTest, RepairsMissingValues) {
  SeriesSource source(
      ts::Series({1.0, ts::MissingValue(), ts::MissingValue(), 4.0}));
  double v = 0.0;
  source.Next(&v);
  source.Next(&v);
  EXPECT_DOUBLE_EQ(v, 1.0);  // Held.
  source.Next(&v);
  EXPECT_DOUBLE_EQ(v, 1.0);
  source.Next(&v);
  EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(SeriesSourceTest, LeadingGapSeededFromFirstReading) {
  SeriesSource source(ts::Series({ts::MissingValue(), 7.0}));
  double v = 0.0;
  source.Next(&v);
  EXPECT_DOUBLE_EQ(v, 7.0);  // Seeded ahead of time.
}

TEST(SeriesSourceTest, RawModePassesNanThrough) {
  SeriesSource source(ts::Series({ts::MissingValue()}), /*repair=*/false);
  double v = 0.0;
  ASSERT_TRUE(source.Next(&v));
  EXPECT_TRUE(ts::IsMissing(v));
}

TEST(SeriesSourceTest, ResetRewinds) {
  SeriesSource source(ts::Series({1.0, 2.0}));
  double v = 0.0;
  source.Next(&v);
  source.Next(&v);
  EXPECT_FALSE(source.Next(&v));
  source.Reset();
  EXPECT_TRUE(source.Next(&v));
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(CollectSinkTest, BuffersEntries) {
  CollectSink sink;
  MatchOrigin origin;
  // std::string{} avoids a GCC 12 -Wrestrict false positive on the
  // const char* assignment path (libstdc++ bug 105329).
  origin.stream_name = std::string("s");
  origin.query_name = std::string("q");
  core::Match match;
  match.start = 1;
  sink.OnMatch(origin, match);
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].match.start, 1);
  sink.Clear();
  EXPECT_TRUE(sink.entries().empty());
}

TEST(OstreamSinkTest, WritesOneLinePerMatch) {
  std::ostringstream out;
  OstreamSink sink(&out);
  MatchOrigin origin;
  origin.stream_name = "temp";
  origin.query_name = "warmup";
  core::Match match;
  match.start = 5;
  match.end = 9;
  match.distance = 1.25;
  match.report_time = 11;
  sink.OnMatch(origin, match);
  const std::string line = out.str();
  EXPECT_NE(line.find("temp/warmup"), std::string::npos);
  EXPECT_NE(line.find("X[5:9]"), std::string::npos);
}

TEST(CallbackSinkTest, InvokesCallback) {
  int calls = 0;
  CallbackSink sink([&calls](const MatchOrigin&, const core::Match&) {
    ++calls;
  });
  MatchOrigin origin;
  core::Match match;
  sink.OnMatch(origin, match);
  sink.OnMatch(origin, match);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
