// Tests for the introspection HTTP server: JSON renderers, the published-
// snapshot cache, and real loopback GETs against a running server. The
// HTTP assertions use a raw POSIX socket client so the test exercises the
// exact byte protocol a scraper (curl, Prometheus) would see.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "obs/introspection_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace springdtw {
namespace obs {
namespace {

/// Minimal HTTP client: sends `request` verbatim to 127.0.0.1:`port` and
/// returns everything the server wrote before closing. Empty on failure.
std::string RawHttp(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buffer[2048];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string HttpGet(int port, const std::string& path) {
  std::string request = "GET ";
  request += path;
  request += " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  return RawHttp(port, request);
}

TEST(IntrospectionRenderTest, HealthJsonCarriesWorkersAndVerdict) {
  HealthReport report;
  report.healthy = false;
  report.state = "stale";
  report.staleness_budget_ms = 250.0;
  WorkerHealth worker;
  worker.worker = 3;
  worker.state = "stale";
  worker.healthy = false;
  worker.lag_messages = 7;
  worker.ms_since_progress = 900.5;
  report.workers.push_back(worker);

  const std::string json = RenderHealthJson(report);
  EXPECT_NE(json.find("\"healthy\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"stale\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"staleness_budget_ms\":250"), std::string::npos);
  EXPECT_NE(json.find("\"worker\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lag_messages\":7"), std::string::npos) << json;
}

TEST(IntrospectionRenderTest, StatusJsonCarriesPipelineCounters) {
  StatusReport report;
  report.role = "sharded_monitor";
  report.started = true;
  report.uptime_seconds = 12.5;
  report.num_workers = 2;
  report.ticks_ingested = 4000;
  report.matches_delivered = 17;
  WorkerStatus worker;
  worker.worker = 1;
  worker.state = "ok";
  worker.ticks = 2000;
  worker.ring_occupancy = 3;
  worker.ring_capacity = 64;
  worker.pending_candidates = 2;
  report.workers.push_back(worker);

  const std::string json = RenderStatusJson(report);
  EXPECT_NE(json.find("\"role\":\"sharded_monitor\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks_ingested\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"matches_delivered\":17"), std::string::npos);
  EXPECT_NE(json.find("\"ring_occupancy\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pending_candidates\":2"), std::string::npos);
  // Never-checkpointed renders as -1, not null.
  EXPECT_NE(json.find("\"checkpoint_age_seconds\":-1"), std::string::npos);
}

TEST(IntrospectionRenderTest, TracezJsonReusesTraceEventJson) {
  TracezReport report;
  report.dropped = 5;
  TraceEvent event;
  event.kind = TraceEventKind::kMatchReported;
  event.tick = 42;
  event.stream_id = 1;
  event.query_id = 2;
  event.start = 10;
  event.end = 20;
  event.distance = 1.5;
  event.report_delay = 3;
  report.events.push_back(event);

  const std::string json = RenderTracezJson(report);
  EXPECT_NE(json.find("\"dropped\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"event\":\"match_reported\""), std::string::npos);
  EXPECT_EQ(json, "{\"dropped\":5,\"events\":[" +
                      TraceEventJson(event) + "]}");
}

TEST(IntrospectionCacheTest, PublishedSnapshotsRoundTrip) {
  IntrospectionCache cache;

  MetricsRegistry registry;
  registry.GetCounter("spring_test_total", "help", {})->Increment(9);
  cache.PublishMetrics(registry.Snapshot());

  HealthReport health;
  health.healthy = false;
  health.state = "stale";
  cache.PublishHealth(health);

  StatusReport status;
  status.ticks_ingested = 123;
  cache.PublishStatus(status);

  TracezReport traces;
  traces.dropped = 2;
  cache.PublishTraces(traces);

  EXPECT_NE(cache.Metrics().Find("spring_test_total"), nullptr);
  EXPECT_FALSE(cache.Health().healthy);
  EXPECT_EQ(cache.Status().ticks_ingested, 123);
  EXPECT_EQ(cache.Traces().dropped, 2);

  // Handlers() serves the same data the getters do.
  IntrospectionHandlers handlers = cache.Handlers();
  ASSERT_TRUE(handlers.metrics && handlers.health && handlers.status &&
              handlers.traces);
  EXPECT_EQ(handlers.health().state, "stale");
  EXPECT_EQ(handlers.status().ticks_ingested, 123);
}

class IntrospectionServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry registry;
    registry.GetCounter("spring_ticks_total", "ticks", {})->Increment(11);
    cache_.PublishMetrics(registry.Snapshot());

    HealthReport health;
    health.healthy = true;
    health.state = "ok";
    WorkerHealth worker;
    worker.state = "ok";
    health.workers.push_back(worker);
    cache_.PublishHealth(health);

    StatusReport status;
    status.role = "engine";
    status.started = true;
    cache_.PublishStatus(status);

    TracezReport traces;
    TraceEvent event;
    event.kind = TraceEventKind::kCandidateOpened;
    traces.events.push_back(event);
    cache_.PublishTraces(traces);
  }

  IntrospectionCache cache_;
};

TEST_F(IntrospectionServerTest, ServesEveryEndpointOverLoopback) {
  IntrospectionServerOptions options;
  options.port = 0;  // ephemeral
  IntrospectionServer server(options, cache_.Handlers());
  ASSERT_EQ(server.port(), -1);
  const util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("spring_ticks_total"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Length:"), std::string::npos);

  const std::string metrics_json = HttpGet(server.port(), "/metrics.json");
  EXPECT_NE(metrics_json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics_json.find("application/json"), std::string::npos);
  EXPECT_NE(metrics_json.find("\"spring_ticks_total\""), std::string::npos);

  const std::string healthz = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"healthy\":true"), std::string::npos);

  const std::string statusz = HttpGet(server.port(), "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("\"role\":\"engine\""), std::string::npos);

  const std::string tracez = HttpGet(server.port(), "/tracez");
  EXPECT_NE(tracez.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(tracez.find("\"event\":\"candidate_opened\""),
            std::string::npos);

  EXPECT_GE(server.requests_served(), 5);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST_F(IntrospectionServerTest, UnhealthyReportReturns503) {
  HealthReport stale;
  stale.healthy = false;
  stale.state = "stale";
  cache_.PublishHealth(stale);

  IntrospectionServerOptions options;
  IntrospectionServer server(options, cache_.Handlers());
  ASSERT_TRUE(server.Start().ok());
  const std::string healthz = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos)
      << healthz;
  EXPECT_NE(healthz.find("\"state\":\"stale\""), std::string::npos);
}

TEST_F(IntrospectionServerTest, UnknownPathIs404AndPostIs405) {
  IntrospectionServerOptions options;
  IntrospectionServer server(options, cache_.Handlers());
  ASSERT_TRUE(server.Start().ok());

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string post = RawHttp(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n"
      "Connection: close\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos)
      << post;
}

TEST_F(IntrospectionServerTest, QueryStringsAreStripped) {
  IntrospectionServerOptions options;
  IntrospectionServer server(options, cache_.Handlers());
  ASSERT_TRUE(server.Start().ok());
  const std::string reply = HttpGet(server.port(), "/healthz?verbose=1");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
}

TEST_F(IntrospectionServerTest, NullHandlerTurnsEndpointInto404) {
  IntrospectionHandlers handlers = cache_.Handlers();
  handlers.traces = nullptr;
  IntrospectionServerOptions options;
  IntrospectionServer server(options, std::move(handlers));
  ASSERT_TRUE(server.Start().ok());
  const std::string reply = HttpGet(server.port(), "/tracez");
  EXPECT_NE(reply.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST_F(IntrospectionServerTest, StopIsIdempotentAndBlocksRestart) {
  IntrospectionServerOptions options;
  IntrospectionServer server(options, cache_.Handlers());
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // second Stop is a no-op
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.Start().ok());  // not restartable by design
}

TEST(IntrospectionServerStandaloneTest, PortCollisionFailsCleanly) {
  IntrospectionCache cache;
  IntrospectionServerOptions options;
  IntrospectionServer first(options, cache.Handlers());
  ASSERT_TRUE(first.Start().ok());

  IntrospectionServerOptions clash;
  clash.port = first.port();
  IntrospectionServer second(clash, cache.Handlers());
  const util::Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(second.running());
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
