#include "core/vector_spring.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "core/subsequence_scan.h"
#include "dtw/dtw.h"
#include "gen/mocap.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

ts::VectorSeries RandomVectorSeries(util::Rng& rng, int64_t n, int64_t k) {
  ts::VectorSeries out(k);
  std::vector<double> row(static_cast<size_t>(k));
  for (int64_t t = 0; t < n; ++t) {
    for (double& v : row) v = rng.Uniform(-1.0, 1.0);
    out.AppendRow(row);
  }
  return out;
}

class VectorSpringSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorSpringSeedTest, OneDimensionalCaseEqualsScalarSpring) {
  util::Rng rng(GetParam());
  const int64_t n = 150;
  const int64_t m = rng.UniformInt(2, 6);
  std::vector<double> query(static_cast<size_t>(m));
  for (double& y : query) y = rng.Uniform(-1.0, 1.0);
  std::vector<double> stream(static_cast<size_t>(n));
  for (double& x : stream) x = rng.Uniform(-1.0, 1.0);

  SpringOptions options;
  options.epsilon = rng.Uniform(0.2, 2.0);
  SpringMatcher scalar(query, options);
  ts::VectorSeries vquery(1);
  for (double y : query) vquery.AppendRow(std::vector<double>{y});
  VectorSpringMatcher vector(vquery, options);

  Match a;
  Match b;
  for (int64_t t = 0; t < n; ++t) {
    const double x = stream[static_cast<size_t>(t)];
    const bool ra = scalar.Update(x, &a);
    const bool rb = vector.Update(std::vector<double>{x}, &b);
    ASSERT_EQ(ra, rb) << "tick " << t;
    if (ra) {
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.end, b.end);
      EXPECT_NEAR(a.distance, b.distance, 1e-12);
    }
  }
  EXPECT_EQ(scalar.Flush(&a), vector.Flush(&b));
}

TEST_P(VectorSpringSeedTest, BestMatchEqualsBruteForceMultivariateDtw) {
  util::Rng rng(GetParam() ^ 0x5a5a);
  const int64_t n = 24;
  const int64_t k = 3;
  const int64_t m = 4;
  const ts::VectorSeries stream = RandomVectorSeries(rng, n, k);
  const ts::VectorSeries query = RandomVectorSeries(rng, m, k);

  SpringOptions options;
  options.epsilon = -1.0;
  VectorSpringMatcher matcher(query, options);
  for (int64_t t = 0; t < n; ++t) matcher.Update(stream.Row(t), nullptr);
  ASSERT_TRUE(matcher.has_best());

  double best = std::numeric_limits<double>::infinity();
  int64_t best_a = -1;
  int64_t best_b = -1;
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t a = 0; a <= b; ++a) {
      const double d = dtw::DtwDistanceMultivariate(
          stream.Slice(a, b - a + 1), query);
      if (d < best) {
        best = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  EXPECT_NEAR(matcher.best().distance, best, 1e-9);
  EXPECT_EQ(matcher.best().start, best_a);
  EXPECT_EQ(matcher.best().end, best_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorSpringSeedTest,
                         ::testing::Values(411, 422, 433, 444, 455));

TEST(VectorSpringMatcherTest, ExactOccurrenceAcrossChannels) {
  ts::VectorSeries query(2);
  query.AppendRow(std::vector<double>{1.0, -1.0});
  query.AppendRow(std::vector<double>{2.0, -2.0});
  SpringOptions options;
  options.epsilon = 0.25;
  VectorSpringMatcher matcher(query, options);

  std::vector<Match> reports;
  Match match;
  const std::vector<std::vector<double>> stream{
      {9.0, 9.0}, {1.0, -1.0}, {2.0, -2.0}, {9.0, 9.0}};
  for (const auto& row : stream) {
    if (matcher.Update(row, &match)) reports.push_back(match);
  }
  if (matcher.Flush(&match)) reports.push_back(match);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].start, 1);
  EXPECT_EQ(reports[0].end, 2);
  EXPECT_DOUBLE_EQ(reports[0].distance, 0.0);
}

TEST(VectorSpringMatcherTest, ChannelsAreNotInterchangeable) {
  // A stream tick with swapped channels must NOT match (distance is per
  // channel, not on any channel permutation).
  ts::VectorSeries query(2);
  query.AppendRow(std::vector<double>{1.0, -1.0});
  SpringOptions options;
  options.epsilon = 0.25;
  VectorSpringMatcher matcher(query, options);
  Match match;
  EXPECT_FALSE(matcher.Update(std::vector<double>{-1.0, 1.0}, &match));
  EXPECT_FALSE(matcher.Flush(&match));
}

TEST(VectorSpringMatcherTest, ResetRestartsStream) {
  ts::VectorSeries query(1);
  query.AppendRow(std::vector<double>{1.0});
  SpringOptions options;
  options.epsilon = 0.1;
  VectorSpringMatcher matcher(query, options);
  matcher.Update(std::vector<double>{1.0}, nullptr);
  matcher.Reset();
  EXPECT_EQ(matcher.ticks_processed(), 0);
  EXPECT_FALSE(matcher.has_best());
}

TEST(VectorSpringMatcherTest, FootprintConstantInStreamLength) {
  ts::VectorSeries query(4);
  for (int i = 0; i < 32; ++i) query.AppendUniformRow(0.0);
  SpringOptions options;
  options.epsilon = 1.0;
  VectorSpringMatcher matcher(query, options);
  std::vector<double> row(4, 0.5);
  for (int t = 0; t < 100; ++t) matcher.Update(row, nullptr);
  const int64_t bytes = matcher.Footprint().TotalBytes();
  for (int t = 0; t < 5000; ++t) matcher.Update(row, nullptr);
  EXPECT_EQ(matcher.Footprint().TotalBytes(), bytes);
}

TEST(VectorSpringMatcherTest, GroupRangeModificationForMocap) {
  // Section 5.3: the matcher reports the start/end of the whole range of
  // overlapping qualifying subsequences. The paper's Figure 5 data (as a
  // 1-dim vector stream) has qualifying subsequences ending at ticks 2, 4
  // and 5 with start 1, so the group range is [1, 5] while the reported
  // optimum is [1, 4].
  ts::VectorSeries query(1);
  for (const double y : {11.0, 6.0, 9.0, 4.0}) {
    query.AppendRow(std::vector<double>{y});
  }
  SpringOptions options;
  options.epsilon = 15.0;
  VectorSpringMatcher matcher(query, options);
  std::vector<Match> reports;
  Match match;
  for (const double x : {5.0, 12.0, 6.0, 10.0, 6.0, 5.0, 13.0}) {
    if (matcher.Update(std::vector<double>{x}, &match)) {
      reports.push_back(match);
    }
  }
  if (matcher.Flush(&match)) reports.push_back(match);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].start, 1);
  EXPECT_EQ(reports[0].end, 4);
  EXPECT_DOUBLE_EQ(reports[0].distance, 6.0);
  EXPECT_EQ(reports[0].group_start, 1);
  EXPECT_EQ(reports[0].group_end, 5);
}

}  // namespace
}  // namespace core
}  // namespace springdtw
