#include "dtw/envelope.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace springdtw {
namespace dtw {
namespace {

// O(n*r) reference implementation to validate the O(n) deque version.
Envelope BruteForceEnvelope(const std::vector<double>& y, int64_t radius) {
  Envelope env;
  const int64_t n = static_cast<int64_t>(y.size());
  env.upper.resize(y.size());
  env.lower.resize(y.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - radius);
    const int64_t hi = std::min<int64_t>(n - 1, i + radius);
    double mx = y[static_cast<size_t>(lo)];
    double mn = y[static_cast<size_t>(lo)];
    for (int64_t j = lo; j <= hi; ++j) {
      mx = std::max(mx, y[static_cast<size_t>(j)]);
      mn = std::min(mn, y[static_cast<size_t>(j)]);
    }
    env.upper[static_cast<size_t>(i)] = mx;
    env.lower[static_cast<size_t>(i)] = mn;
  }
  return env;
}

TEST(EnvelopeTest, RadiusZeroIsIdentity) {
  const std::vector<double> y{1.0, 3.0, 2.0};
  const Envelope env = ComputeEnvelope(y, 0);
  EXPECT_EQ(env.upper, y);
  EXPECT_EQ(env.lower, y);
}

TEST(EnvelopeTest, SimpleWindow) {
  const std::vector<double> y{1.0, 5.0, 2.0, 4.0};
  const Envelope env = ComputeEnvelope(y, 1);
  EXPECT_EQ(env.upper, (std::vector<double>{5.0, 5.0, 5.0, 4.0}));
  EXPECT_EQ(env.lower, (std::vector<double>{1.0, 1.0, 2.0, 2.0}));
}

TEST(EnvelopeTest, LargeRadiusGivesGlobalMinMax) {
  const std::vector<double> y{3.0, -1.0, 7.0, 0.0};
  const Envelope env = ComputeEnvelope(y, 100);
  for (double u : env.upper) EXPECT_DOUBLE_EQ(u, 7.0);
  for (double l : env.lower) EXPECT_DOUBLE_EQ(l, -1.0);
}

TEST(EnvelopeTest, MatchesBruteForceOnRandomData) {
  util::Rng rng(41);
  for (const int64_t radius : {0, 1, 2, 5, 17}) {
    std::vector<double> y(200);
    for (double& v : y) v = rng.Uniform(-10.0, 10.0);
    const Envelope fast = ComputeEnvelope(y, radius);
    const Envelope slow = BruteForceEnvelope(y, radius);
    EXPECT_EQ(fast.upper, slow.upper) << "radius=" << radius;
    EXPECT_EQ(fast.lower, slow.lower) << "radius=" << radius;
  }
}

TEST(EnvelopeTest, EnvelopeBoundsSequence) {
  util::Rng rng(42);
  std::vector<double> y(100);
  for (double& v : y) v = rng.Gaussian();
  const Envelope env = ComputeEnvelope(y, 4);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_LE(env.lower[i], y[i]);
    EXPECT_GE(env.upper[i], y[i]);
  }
}

}  // namespace
}  // namespace dtw
}  // namespace springdtw
