#include "gen/signal.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"

namespace springdtw {
namespace gen {
namespace {

TEST(SineTest, PeriodAndAmplitude) {
  const std::vector<double> s = Sine(100, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_NEAR(s[25], 2.0, 1e-9);   // Quarter period -> peak.
  EXPECT_NEAR(s[50], 0.0, 1e-9);   // Half period -> zero crossing.
  EXPECT_NEAR(s[75], -2.0, 1e-9);  // Three quarters -> trough.
}

TEST(SineTest, PhaseShift) {
  const std::vector<double> s = Sine(10, 40.0, 1.0, M_PI / 2.0);
  EXPECT_NEAR(s[0], 1.0, 1e-9);  // cos at t=0.
}

TEST(GaussianNoiseTest, MomentsMatch) {
  util::Rng rng(1);
  const std::vector<double> noise = GaussianNoise(rng, 100000, 0.5);
  util::RunningStats stats;
  for (double x : noise) stats.Add(x);
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.01);
}

TEST(AddGaussianNoiseTest, PerturbsInPlace) {
  util::Rng rng(2);
  std::vector<double> values(1000, 10.0);
  AddGaussianNoise(rng, values, 0.1);
  util::RunningStats stats;
  for (double x : values) stats.Add(x);
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_GT(stats.stddev(), 0.0);
}

TEST(RandomWalkTest, StartsAtStart) {
  util::Rng rng(3);
  const std::vector<double> walk = RandomWalk(rng, 100, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(walk[0], 5.0);
  EXPECT_EQ(walk.size(), 100u);
}

TEST(MovingAverageTest, SmoothsAndPreservesConstant) {
  const std::vector<double> flat(50, 3.0);
  EXPECT_EQ(MovingAverage(flat, 5), flat);
  const std::vector<double> spiky{0.0, 0.0, 10.0, 0.0, 0.0};
  const std::vector<double> smooth = MovingAverage(spiky, 1);
  EXPECT_NEAR(smooth[2], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smooth[1], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smooth[0], 0.0, 1e-12);
}

TEST(MovingAverageTest, EdgeWindowsTruncate) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const std::vector<double> out = MovingAverage(v, 10);
  // All windows cover the whole input.
  for (double x : out) EXPECT_NEAR(x, 2.0, 1e-12);
}

TEST(ResampleTest, IdentityWhenSameLength) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(Resample(v, 4), v);
}

TEST(ResampleTest, EndpointsPreserved) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  for (const int64_t len : {2, 3, 7, 100}) {
    const std::vector<double> r = Resample(v, len);
    EXPECT_DOUBLE_EQ(r.front(), 5.0);
    EXPECT_DOUBLE_EQ(r.back(), 9.0);
    EXPECT_EQ(static_cast<int64_t>(r.size()), len);
  }
}

TEST(ResampleTest, LinearRampStaysLinear) {
  std::vector<double> ramp(10);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  const std::vector<double> up = Resample(ramp, 19);
  for (size_t i = 0; i < up.size(); ++i) {
    EXPECT_NEAR(up[i], static_cast<double>(i) * 0.5, 1e-12);
  }
}

TEST(HannWindowTest, ShapeAndRange) {
  const std::vector<double> w = HannWindow(101);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[50], 1.0, 1e-12);
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0 + 1e-12);
  }
}

TEST(HannWindowTest, LengthOne) {
  const std::vector<double> w = HannWindow(1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(MultiplyInPlaceTest, ElementWise) {
  std::vector<double> v{1.0, 2.0, 3.0};
  MultiplyInPlace(v, {2.0, 0.5, 0.0});
  EXPECT_EQ(v, (std::vector<double>{2.0, 1.0, 0.0}));
}

}  // namespace
}  // namespace gen
}  // namespace springdtw
