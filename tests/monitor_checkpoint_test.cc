// Engine-level checkpoint/restore: a restored engine continues every
// stream (scalar and vector) exactly like the original.

#include <vector>

#include <gtest/gtest.h>

#include "core/vector_spring.h"
#include "gen/masked_chirp.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "util/random.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions Options(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

TEST(EngineCheckpointTest, ScalarStreamsResumeIdentically) {
  util::Rng rng(811);
  gen::MaskedChirpOptions data_options;
  data_options.length = 4000;
  const auto data = GenerateMaskedChirp(data_options, 256);

  MonitorEngine original;
  CollectSink original_sink;
  original.AddSink(&original_sink);
  const int64_t stream = original.AddStream("s");
  ASSERT_TRUE(original
                  .AddQuery(stream, "chirp", data.query.values(),
                            Options(100.0))
                  .ok());

  // Run half the stream, checkpoint, restore into a new engine.
  const int64_t cut = data.stream.size() / 2;
  for (int64_t t = 0; t < cut; ++t) {
    ASSERT_TRUE(original.Push(stream, data.stream[t]).ok());
  }
  const std::vector<uint8_t> checkpoint = original.SerializeState();

  MonitorEngine restored;
  CollectSink restored_sink;
  restored.AddSink(&restored_sink);
  const util::Status status = restored.RestoreState(checkpoint);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(restored.num_streams(), 1);
  EXPECT_EQ(restored.num_queries(), 1);
  EXPECT_EQ(restored.stats(0).ticks, original.stats(0).ticks);

  // Feed the second half to both; matches must be identical.
  for (int64_t t = cut; t < data.stream.size(); ++t) {
    ASSERT_TRUE(original.Push(stream, data.stream[t]).ok());
    ASSERT_TRUE(restored.Push(stream, data.stream[t]).ok());
  }
  original.FlushAll();
  restored.FlushAll();

  // Compare only matches after the cut (the originals before the cut were
  // dispatched before the checkpoint).
  std::vector<core::Match> a;
  for (const auto& e : original_sink.entries()) {
    if (e.match.report_time >= cut) a.push_back(e.match);
  }
  ASSERT_EQ(a.size(), restored_sink.entries().size());
  for (size_t i = 0; i < a.size(); ++i) {
    const core::Match& b = restored_sink.entries()[i].match;
    EXPECT_EQ(a[i].start, b.start);
    EXPECT_EQ(a[i].end, b.end);
    EXPECT_DOUBLE_EQ(a[i].distance, b.distance);
    EXPECT_EQ(a[i].report_time, b.report_time);
  }
  // The restored engine's counters include the pre-cut matches from the
  // checkpoint, so the totals agree exactly.
  EXPECT_EQ(original.stats(0).matches, restored.stats(0).matches);
}

TEST(EngineCheckpointTest, RepairerStateSurvives) {
  MonitorEngine original;
  const int64_t stream = original.AddStream("s", /*repair_missing=*/true);
  ASSERT_TRUE(original.AddQuery(stream, "q", {5.0, 6.0}, Options(0.5)).ok());
  ASSERT_TRUE(original.Push(stream, 5.0).ok());  // Seeds the repairer.

  MonitorEngine restored;
  ASSERT_TRUE(restored.RestoreState(original.SerializeState()).ok());
  CollectSink sink;
  restored.AddSink(&sink);
  // A NaN right after restore must replay the held 5.0, completing the
  // match 5, (5), 6 via warping... feed 6 then a closer tick.
  ASSERT_TRUE(restored.Push(stream, ts::MissingValue()).ok());
  ASSERT_TRUE(restored.Push(stream, 6.0).ok());
  ASSERT_TRUE(restored.Push(stream, 99.0).ok());
  EXPECT_EQ(sink.entries().size(), 1u);
}

TEST(EngineCheckpointTest, VectorStreamsResumeIdentically) {
  util::Rng rng(812);
  MonitorEngine original;
  const int64_t stream = original.AddVectorStream("v", 3);
  ts::VectorSeries query(3);
  for (int i = 0; i < 8; ++i) {
    query.AppendRow(std::vector<double>{rng.Gaussian(), rng.Gaussian(),
                                        rng.Gaussian()});
  }
  ASSERT_TRUE(original.AddVectorQuery(stream, "q", query, Options(6.0)).ok());

  std::vector<double> row(3);
  auto random_row = [&]() {
    for (double& v : row) v = rng.Gaussian();
    return row;
  };
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(original.PushRow(stream, random_row()).ok());
  }

  MonitorEngine restored;
  ASSERT_TRUE(restored.RestoreState(original.SerializeState()).ok());
  CollectSink sink_a;
  CollectSink sink_b;
  MonitorEngine* engines[2] = {&original, &restored};
  original.AddSink(&sink_a);
  restored.AddSink(&sink_b);
  for (int t = 0; t < 300; ++t) {
    const auto next = random_row();
    for (MonitorEngine* engine : engines) {
      ASSERT_TRUE(engine->PushRow(stream, next).ok());
    }
  }
  original.FlushAll();
  restored.FlushAll();
  ASSERT_EQ(sink_a.entries().size(), sink_b.entries().size());
  for (size_t i = 0; i < sink_a.entries().size(); ++i) {
    EXPECT_EQ(sink_a.entries()[i].match.start,
              sink_b.entries()[i].match.start);
    EXPECT_EQ(sink_a.entries()[i].match.end, sink_b.entries()[i].match.end);
  }
}

TEST(EngineCheckpointTest, LatencyHistogramSurvivesRestore) {
  MonitorEngine original;
  original.EnableLatencyTracking(true);
  const int64_t stream = original.AddStream("s");
  ASSERT_TRUE(original.AddQuery(stream, "q", {1.0, 2.0}, Options(0.5)).ok());
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(original.Push(stream, 9.0).ok());
  }
  ASSERT_EQ(original.push_latency_nanos().count(), 50);

  MonitorEngine restored;
  ASSERT_TRUE(restored.RestoreState(original.SerializeState()).ok());
  EXPECT_EQ(restored.push_latency_nanos().count(), 50);
  EXPECT_DOUBLE_EQ(restored.push_latency_nanos().Quantile(0.5),
                   original.push_latency_nanos().Quantile(0.5));
  // Latency tracking itself was re-enabled from the checkpoint.
  ASSERT_TRUE(restored.Push(stream, 9.0).ok());
  EXPECT_EQ(restored.push_latency_nanos().count(), 51);
}

TEST(EngineCheckpointTest, RestoreRequiresFreshEngine) {
  MonitorEngine original;
  original.AddStream("s");
  const std::vector<uint8_t> checkpoint = original.SerializeState();

  MonitorEngine not_fresh;
  not_fresh.AddStream("other");
  EXPECT_FALSE(not_fresh.RestoreState(checkpoint).ok());
}

TEST(EngineCheckpointTest, RejectsGarbage) {
  MonitorEngine engine;
  EXPECT_FALSE(
      engine.RestoreState(std::vector<uint8_t>{1, 2, 3}).ok());
}

TEST(EngineCheckpointTest, RejectsTruncatedCheckpoint) {
  MonitorEngine original;
  const int64_t stream = original.AddStream("s");
  ASSERT_TRUE(original.AddQuery(stream, "q", {1.0, 2.0}, Options(1.0)).ok());
  std::vector<uint8_t> checkpoint = original.SerializeState();
  checkpoint.resize(checkpoint.size() - 8);
  MonitorEngine restored;
  EXPECT_FALSE(restored.RestoreState(checkpoint).ok());
}

TEST(VectorMatcherSerializeTest, RoundTripContinuesIdentically) {
  util::Rng rng(813);
  ts::VectorSeries query(2);
  for (int i = 0; i < 5; ++i) {
    query.AppendRow(std::vector<double>{rng.Gaussian(), rng.Gaussian()});
  }
  core::VectorSpringMatcher a(query, Options(3.0));
  std::vector<double> row(2);
  core::Match ma;
  core::Match mb;
  for (int t = 0; t < 100; ++t) {
    for (double& v : row) v = rng.Gaussian();
    a.Update(row, &ma);
  }
  auto restored =
      core::VectorSpringMatcher::DeserializeState(a.SerializeState());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  core::VectorSpringMatcher& b = *restored;
  EXPECT_EQ(b.dims(), 2);
  EXPECT_EQ(b.ticks_processed(), a.ticks_processed());
  for (int t = 0; t < 200; ++t) {
    for (double& v : row) v = rng.Gaussian();
    ASSERT_EQ(a.Update(row, &ma), b.Update(row, &mb));
  }
  EXPECT_EQ(a.Flush(&ma), b.Flush(&mb));
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
