#include "dtw/ftw.h"

#include <vector>

#include <gtest/gtest.h>

#include "dtw/dtw.h"
#include "gen/signal.h"
#include "gen/warp.h"
#include "util/random.h"

namespace springdtw {
namespace dtw {
namespace {

ts::Series RandomWalkSeries(util::Rng& rng, int64_t n) {
  return ts::Series(gen::MovingAverage(gen::RandomWalk(rng, n, 0.0, 0.3), 3));
}

TEST(FtwTest, FindsExactNearestNeighborOnRandomPools) {
  util::Rng rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    const ts::Series query = RandomWalkSeries(rng, 96);
    std::vector<ts::Series> candidates;
    for (int i = 0; i < 40; ++i) {
      candidates.push_back(RandomWalkSeries(rng, 96));
    }
    const auto result = MultiResolutionNearestNeighbor(candidates, query);
    ASSERT_TRUE(result.ok());

    int64_t expected_idx = -1;
    double expected = 1e300;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const double d = DtwDistance(candidates[i].values(), query.values());
      if (d < expected) {
        expected = d;
        expected_idx = static_cast<int64_t>(i);
      }
    }
    EXPECT_EQ(result->best_index, expected_idx) << "trial " << trial;
    EXPECT_NEAR(result->best_distance, expected, 1e-9);
  }
}

TEST(FtwTest, PruneCountsPartitionTheCandidates) {
  util::Rng rng(52);
  const ts::Series query = RandomWalkSeries(rng, 128);
  std::vector<ts::Series> candidates;
  // One warped near-copy so the best tightens early, plus impostors.
  candidates.emplace_back(gen::RandomlyWarp(rng, query.values(), 4, 0.1));
  for (int i = 0; i < 100; ++i) {
    candidates.push_back(RandomWalkSeries(rng, 128));
  }
  const auto result = MultiResolutionNearestNeighbor(candidates, query);
  ASSERT_TRUE(result.ok());
  int64_t total = result->full_computations;
  for (const int64_t pruned : result->pruned_at_level) total += pruned;
  EXPECT_EQ(total, static_cast<int64_t>(candidates.size()));
  EXPECT_EQ(result->best_index, 0);  // The warped copy wins.
}

TEST(FtwTest, RefinementPrunesMoreThanSingleLevelConfirms) {
  // With a decreasing ladder, finer levels only see what coarser levels
  // let through; the full-DTW count can never exceed the candidate count
  // and usually is a small fraction.
  util::Rng rng(53);
  const ts::Series query = RandomWalkSeries(rng, 128);
  std::vector<ts::Series> candidates;
  candidates.emplace_back(gen::RandomlyWarp(rng, query.values(), 4, 0.1));
  for (int i = 0; i < 200; ++i) {
    candidates.push_back(RandomWalkSeries(rng, 128));
  }
  const auto result = MultiResolutionNearestNeighbor(candidates, query);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->full_computations, 50);
}

TEST(FtwTest, SingleGranularityLadderWorks) {
  util::Rng rng(54);
  const ts::Series query = RandomWalkSeries(rng, 64);
  std::vector<ts::Series> candidates{RandomWalkSeries(rng, 64),
                                     RandomWalkSeries(rng, 64)};
  FtwOptions options;
  options.granularities = {4};
  const auto result =
      MultiResolutionNearestNeighbor(candidates, query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->best_index, 0);
}

TEST(FtwTest, ValidatesInputs) {
  util::Rng rng(55);
  const ts::Series query = RandomWalkSeries(rng, 16);
  const std::vector<ts::Series> pool{RandomWalkSeries(rng, 16)};

  EXPECT_FALSE(MultiResolutionNearestNeighbor({}, query).ok());
  EXPECT_FALSE(MultiResolutionNearestNeighbor(pool, ts::Series()).ok());

  FtwOptions empty_ladder;
  empty_ladder.granularities = {};
  EXPECT_FALSE(
      MultiResolutionNearestNeighbor(pool, query, empty_ladder).ok());

  FtwOptions non_decreasing;
  non_decreasing.granularities = {8, 8};
  EXPECT_FALSE(
      MultiResolutionNearestNeighbor(pool, query, non_decreasing).ok());

  FtwOptions bad_value;
  bad_value.granularities = {8, 0};
  EXPECT_FALSE(
      MultiResolutionNearestNeighbor(pool, query, bad_value).ok());
}

TEST(FtwTest, AbsoluteDistanceSupported) {
  util::Rng rng(56);
  const ts::Series query = RandomWalkSeries(rng, 48);
  std::vector<ts::Series> candidates;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back(RandomWalkSeries(rng, 48));
  }
  FtwOptions options;
  options.dtw.local_distance = LocalDistance::kAbsolute;
  const auto result =
      MultiResolutionNearestNeighbor(candidates, query, options);
  ASSERT_TRUE(result.ok());

  int64_t expected_idx = -1;
  double expected = 1e300;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double d =
        DtwDistance(candidates[i].values(), query.values(), options.dtw);
    if (d < expected) {
      expected = d;
      expected_idx = static_cast<int64_t>(i);
    }
  }
  EXPECT_EQ(result->best_index, expected_idx);
}

}  // namespace
}  // namespace dtw
}  // namespace springdtw
