#include "util/memory.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

TEST(MemoryFootprintTest, AddAndTotal) {
  MemoryFootprint fp;
  fp.Add("a", 100);
  fp.Add("b", 50);
  fp.Add("a", 25);  // Accumulates into the existing component.
  EXPECT_EQ(fp.TotalBytes(), 175);
  ASSERT_EQ(fp.components().size(), 2u);
  EXPECT_EQ(fp.components()[0].first, "a");
  EXPECT_EQ(fp.components()[0].second, 125);
}

TEST(MemoryFootprintTest, MergeCombinesComponents) {
  MemoryFootprint a;
  a.Add("x", 10);
  MemoryFootprint b;
  b.Add("x", 5);
  b.Add("y", 1);
  a.Merge(b);
  EXPECT_EQ(a.TotalBytes(), 16);
  EXPECT_EQ(a.components().size(), 2u);
}

TEST(MemoryFootprintTest, ToStringMentionsTotal) {
  MemoryFootprint fp;
  fp.Add("buf", 2048);
  EXPECT_NE(fp.ToString().find("total=2.0 KiB"), std::string::npos);
}

TEST(VectorBytesTest, UsesCapacity) {
  std::vector<double> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 800);
}

TEST(HeapStatsTest, CountsAllocations) {
  ScopedAllocationCheck check;
  auto p = std::make_unique<int>(5);
  EXPECT_GE(check.Allocations(), 1);
  EXPECT_GE(check.Bytes(), static_cast<int64_t>(sizeof(int)));
}

TEST(HeapStatsTest, NoAllocationMeansZeroDelta) {
  // Warm up anything lazy first.
  { ScopedAllocationCheck warmup; }
  ScopedAllocationCheck check;
  volatile int x = 0;
  for (int i = 0; i < 100; ++i) x = x + i;
  EXPECT_EQ(check.Allocations(), 0);
}

}  // namespace
}  // namespace util
}  // namespace springdtw
