#include "ts/repair.h"

#include <gtest/gtest.h>

namespace springdtw {
namespace ts {
namespace {

const double kNan = MissingValue();

TEST(RepairTest, HoldLastFillsGaps) {
  Series s({1.0, kNan, kNan, 4.0, kNan});
  Series r = RepairMissing(s, RepairPolicy::kHoldLast);
  EXPECT_EQ(r.CountMissing(), 0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
  EXPECT_DOUBLE_EQ(r[4], 4.0);
}

TEST(RepairTest, HoldLastLeadingGapUsesFirstValue) {
  Series s({kNan, kNan, 3.0});
  Series r = RepairMissing(s, RepairPolicy::kHoldLast);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
}

TEST(RepairTest, HoldLastAllMissingUsesConstant) {
  Series s({kNan, kNan});
  Series r = RepairMissing(s, RepairPolicy::kHoldLast, 9.0);
  EXPECT_DOUBLE_EQ(r[0], 9.0);
  EXPECT_DOUBLE_EQ(r[1], 9.0);
}

TEST(RepairTest, InterpolateRampsAcrossGap) {
  Series s({0.0, kNan, kNan, kNan, 4.0});
  Series r = RepairMissing(s, RepairPolicy::kLinearInterpolate);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
  EXPECT_DOUBLE_EQ(r[3], 3.0);
}

TEST(RepairTest, InterpolateEdgeGapsFallBackToHold) {
  Series s({kNan, 2.0, kNan});
  Series r = RepairMissing(s, RepairPolicy::kLinearInterpolate);
  EXPECT_DOUBLE_EQ(r[0], 2.0);  // Leading gap: hold-first.
  EXPECT_DOUBLE_EQ(r[2], 2.0);  // Trailing gap: hold-last.
}

TEST(RepairTest, ConstantPolicy) {
  Series s({1.0, kNan, 3.0});
  Series r = RepairMissing(s, RepairPolicy::kConstant, -1.0);
  EXPECT_DOUBLE_EQ(r[1], -1.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(RepairTest, NoMissingIsIdentity) {
  Series s({1.0, 2.0, 3.0});
  for (const RepairPolicy policy :
       {RepairPolicy::kHoldLast, RepairPolicy::kLinearInterpolate,
        RepairPolicy::kConstant}) {
    EXPECT_TRUE(RepairMissing(s, policy) == s);
  }
}

TEST(StreamingRepairerTest, HoldsLastValue) {
  StreamingRepairer repairer(0.0);
  EXPECT_DOUBLE_EQ(repairer.Next(5.0), 5.0);
  EXPECT_DOUBLE_EQ(repairer.Next(kNan), 5.0);
  EXPECT_DOUBLE_EQ(repairer.Next(kNan), 5.0);
  EXPECT_DOUBLE_EQ(repairer.Next(7.0), 7.0);
  EXPECT_DOUBLE_EQ(repairer.last(), 7.0);
}

TEST(StreamingRepairerTest, InitialValueUsedBeforeFirstReading) {
  StreamingRepairer repairer(42.0);
  EXPECT_DOUBLE_EQ(repairer.Next(kNan), 42.0);
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
