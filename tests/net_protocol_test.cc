// Wire protocol: framing (CutFrame partial/oversized/zero-length), typed
// payload round-trips, hostile-input rejection (truncation at every byte,
// trailing garbage, bogus counts), and the option-validation helpers.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "gtest/gtest.h"
#include "net/protocol.h"
#include "util/codec.h"
#include "util/status.h"

namespace springdtw {
namespace net {
namespace {

TEST(FramingTest, AppendAndCutRoundTrip) {
  std::vector<uint8_t> wire;
  TickPayload tick;
  tick.stream_id = 7;
  tick.value = 2.5;
  AppendPayloadFrame(FrameType::kTick, tick, &wire);
  DrainPayload drain;
  drain.request_id = 42;
  AppendPayloadFrame(FrameType::kDrain, drain, &wire);

  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(CutFrame(wire, kDefaultMaxFrameBytes, &frame, &consumed).ok());
  ASSERT_GT(consumed, 0u);
  EXPECT_EQ(frame.type, FrameType::kTick);
  TickPayload tick_out;
  ASSERT_TRUE(DecodePayload(frame.payload, &tick_out).ok());
  EXPECT_EQ(tick_out.stream_id, 7);
  EXPECT_EQ(tick_out.value, 2.5);

  wire.erase(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(consumed));
  ASSERT_TRUE(CutFrame(wire, kDefaultMaxFrameBytes, &frame, &consumed).ok());
  ASSERT_GT(consumed, 0u);
  EXPECT_EQ(frame.type, FrameType::kDrain);
  EXPECT_EQ(consumed, wire.size());
}

TEST(FramingTest, PartialFramesNeedMoreData) {
  std::vector<uint8_t> wire;
  HelloPayload hello;
  hello.peer_name = "abcdefgh";
  AppendPayloadFrame(FrameType::kHello, hello, &wire);
  // Every strict prefix must park (ok, consumed == 0), never error.
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    size_t consumed = 1;
    ASSERT_TRUE(CutFrame(std::span<const uint8_t>(wire.data(), len),
                         kDefaultMaxFrameBytes, &frame, &consumed)
                    .ok())
        << len;
    EXPECT_EQ(consumed, 0u) << len;
  }
}

TEST(FramingTest, ZeroLengthAndOversizedFramesAreFatal) {
  Frame frame;
  size_t consumed = 0;
  const std::vector<uint8_t> zero = {0, 0, 0, 0};
  EXPECT_FALSE(CutFrame(zero, kDefaultMaxFrameBytes, &frame, &consumed).ok());

  // Length prefix beyond the cap is rejected from the header alone — the
  // payload never needs to arrive.
  std::vector<uint8_t> oversized = {0, 0, 0, 0};
  const uint32_t huge = 1 << 30;
  std::memcpy(oversized.data(), &huge, sizeof(huge));
  EXPECT_FALSE(
      CutFrame(oversized, kDefaultMaxFrameBytes, &frame, &consumed).ok());
  // The same bytes are fine under a bigger cap (waiting for the payload).
  EXPECT_TRUE(CutFrame(oversized, uint64_t{1} << 31, &frame, &consumed).ok());
  EXPECT_EQ(consumed, 0u);
}

TEST(FramingTest, KnownFrameTypeBounds) {
  EXPECT_FALSE(KnownFrameType(0));
  EXPECT_TRUE(KnownFrameType(static_cast<uint8_t>(FrameType::kHello)));
  EXPECT_TRUE(KnownFrameType(static_cast<uint8_t>(FrameType::kError)));
  EXPECT_FALSE(KnownFrameType(static_cast<uint8_t>(FrameType::kError) + 1));
  EXPECT_FALSE(KnownFrameType(255));
  EXPECT_EQ(FrameTypeName(FrameType::kTickBatch), "TICK_BATCH");
  EXPECT_EQ(FrameTypeName(static_cast<FrameType>(250)), "UNKNOWN");
}

template <typename Payload>
std::vector<uint8_t> Encode(const Payload& payload) {
  util::ByteWriter writer;
  payload.EncodeTo(&writer);
  return writer.buffer();
}

// Every payload must survive a round-trip, reject truncation at every
// prefix length, and reject one byte of trailing garbage.
template <typename Payload>
void CheckRoundTripAndHostility(const Payload& payload,
                                const std::function<void(const Payload&)>&
                                    check_fields) {
  const std::vector<uint8_t> bytes = Encode(payload);
  Payload out;
  ASSERT_TRUE(DecodePayload(bytes, &out).ok());
  check_fields(out);

  for (size_t len = 0; len < bytes.size(); ++len) {
    Payload truncated;
    EXPECT_FALSE(DecodePayload(std::span<const uint8_t>(bytes.data(), len),
                               &truncated)
                     .ok())
        << "prefix " << len << " of " << bytes.size();
  }
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0xAB);
  Payload with_trailing;
  EXPECT_FALSE(DecodePayload(trailing, &with_trailing).ok());
}

TEST(PayloadTest, HelloRoundTrip) {
  HelloPayload payload;
  payload.version = 1;
  payload.peer_name = "feeder";
  CheckRoundTripAndHostility<HelloPayload>(payload, [](const auto& out) {
    EXPECT_EQ(out.version, 1u);
    EXPECT_EQ(out.peer_name, "feeder");
  });
}

TEST(PayloadTest, AddQueryRoundTrip) {
  AddQueryPayload payload;
  payload.request_id = 9;
  payload.stream_id = 2;
  payload.name = "q";
  payload.values = {1.0, -2.5, 3.25};
  payload.epsilon = 0.75;
  payload.local_distance = 1;
  payload.max_match_length = 64;
  payload.min_match_length = 2;
  CheckRoundTripAndHostility<AddQueryPayload>(payload, [](const auto& out) {
    EXPECT_EQ(out.request_id, 9u);
    EXPECT_EQ(out.values, (std::vector<double>{1.0, -2.5, 3.25}));
    EXPECT_EQ(out.epsilon, 0.75);
    EXPECT_EQ(out.local_distance, 1);
    EXPECT_EQ(out.max_match_length, 64);
    EXPECT_EQ(out.min_match_length, 2);
  });
}

TEST(PayloadTest, MatchEventRoundTrip) {
  MatchEventPayload payload;
  payload.delivery_seq = 11;
  payload.stream_id = 1;
  payload.query_id = 4;
  payload.stream_name = "s";
  payload.query_name = "q";
  payload.match.start = 10;
  payload.match.end = 20;
  payload.match.distance = 0.5;
  payload.match.report_time = 25;
  payload.match.group_start = 9;
  payload.match.group_end = 21;
  CheckRoundTripAndHostility<MatchEventPayload>(payload, [](const auto& out) {
    EXPECT_EQ(out.delivery_seq, 11u);
    EXPECT_EQ(out.match.start, 10);
    EXPECT_EQ(out.match.end, 20);
    EXPECT_EQ(out.match.distance, 0.5);
    EXPECT_EQ(out.match.report_time, 25);
    EXPECT_EQ(out.match.group_start, 9);
    EXPECT_EQ(out.match.group_end, 21);
  });
}

TEST(PayloadTest, TickBatchRoundTrip) {
  TickBatchPayload payload;
  payload.stream_id = 3;
  payload.values = {0.0, 1.0, 2.0, 3.0};
  CheckRoundTripAndHostility<TickBatchPayload>(payload, [](const auto& out) {
    EXPECT_EQ(out.stream_id, 3);
    EXPECT_EQ(out.values.size(), 4u);
  });
}

TEST(PayloadTest, QueryListRoundTripAndBogusCount) {
  QueryListPayload payload;
  payload.request_id = 5;
  QueryListPayload::Entry entry;
  entry.query_id = 1;
  entry.stream_id = 0;
  entry.name = "q";
  entry.stream_name = "s";
  entry.ticks = 100;
  entry.matches = 3;
  payload.entries.push_back(entry);
  payload.entries.push_back(entry);
  CheckRoundTripAndHostility<QueryListPayload>(payload, [](const auto& out) {
    ASSERT_EQ(out.entries.size(), 2u);
    EXPECT_EQ(out.entries[1].ticks, 100);
    EXPECT_EQ(out.entries[1].stream_name, "s");
  });

  // A hostile count with no entry bytes must fail without allocating.
  util::ByteWriter writer;
  writer.WriteU64(5);
  writer.WriteU64(uint64_t{1} << 60);
  QueryListPayload hostile;
  EXPECT_FALSE(DecodePayload(writer.buffer(), &hostile).ok());
}

// v2 trailers: the round-trip harness above cannot be used for stamped
// payloads — truncating exactly at the trailer boundary is a *valid* v1
// payload by design, not an error — so these check the compat property
// directly: unstamped v2 == v1 bytes, and v1 bytes decode on a v2 peer.

TEST(PayloadTest, TickSendStampTrailerRoundTripAndV1Compat) {
  TickPayload stamped;
  stamped.stream_id = 7;
  stamped.value = 2.5;
  stamped.send_nanos = 123456789;
  const std::vector<uint8_t> v2_bytes = Encode(stamped);
  TickPayload out;
  ASSERT_TRUE(DecodePayload(v2_bytes, &out).ok());
  EXPECT_EQ(out.stream_id, 7);
  EXPECT_EQ(out.value, 2.5);
  EXPECT_EQ(out.send_nanos, 123456789u);

  // An unstamped v2 TICK is byte-identical to a v1 TICK.
  TickPayload unstamped = stamped;
  unstamped.send_nanos = 0;
  const std::vector<uint8_t> v1_bytes = Encode(unstamped);
  EXPECT_EQ(v1_bytes.size() + sizeof(uint64_t), v2_bytes.size());
  EXPECT_TRUE(std::equal(v1_bytes.begin(), v1_bytes.end(), v2_bytes.begin()));

  // v1 bytes decode on a v2 peer with the trailer at its default.
  TickPayload from_v1;
  from_v1.send_nanos = 99;  // must be overwritten, not left stale
  ASSERT_TRUE(DecodePayload(v1_bytes, &from_v1).ok());
  EXPECT_EQ(from_v1.send_nanos, 0u);
  EXPECT_EQ(from_v1.value, 2.5);
}

TEST(PayloadTest, TickBatchSendStampTrailerRoundTripAndV1Compat) {
  TickBatchPayload stamped;
  stamped.stream_id = 3;
  stamped.values = {0.0, 1.0, 2.0};
  stamped.send_nanos = 42;
  TickBatchPayload out;
  ASSERT_TRUE(DecodePayload(Encode(stamped), &out).ok());
  EXPECT_EQ(out.values.size(), 3u);
  EXPECT_EQ(out.send_nanos, 42u);

  TickBatchPayload unstamped = stamped;
  unstamped.send_nanos = 0;
  TickBatchPayload from_v1;
  from_v1.send_nanos = 99;
  ASSERT_TRUE(DecodePayload(Encode(unstamped), &from_v1).ok());
  EXPECT_EQ(from_v1.send_nanos, 0u);
  EXPECT_EQ(from_v1.values, stamped.values);
}

TEST(PayloadTest, ListQueriesWantStatsTrailer) {
  ListQueriesPayload plain;
  plain.request_id = 8;
  // want_stats=false stays byte-identical to v1 (request_id only).
  EXPECT_EQ(Encode(plain).size(), sizeof(uint64_t));
  ListQueriesPayload out;
  out.want_stats = true;
  ASSERT_TRUE(DecodePayload(Encode(plain), &out).ok());
  EXPECT_FALSE(out.want_stats);
  EXPECT_EQ(out.request_id, 8u);

  ListQueriesPayload with_stats;
  with_stats.request_id = 9;
  with_stats.want_stats = true;
  ASSERT_TRUE(DecodePayload(Encode(with_stats), &out).ok());
  EXPECT_TRUE(out.want_stats);
}

TEST(PayloadTest, QueryListStatsTrailerRoundTripAndV1Compat) {
  QueryListPayload payload;
  payload.request_id = 5;
  QueryListPayload::Entry entry;
  entry.query_id = 1;
  entry.name = "q";
  entry.stream_name = "s";
  entry.ticks = 100;
  entry.matches = 3;
  entry.cells = 1200;
  entry.last_match_seq = 97;
  entry.est_cpu_nanos = 55555;
  payload.entries.push_back(entry);
  entry.query_id = 2;
  entry.cells = 800;
  entry.last_match_seq = -1;
  payload.entries.push_back(entry);
  payload.has_stats = true;

  QueryListPayload out;
  ASSERT_TRUE(DecodePayload(Encode(payload), &out).ok());
  ASSERT_TRUE(out.has_stats);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].cells, 1200);
  EXPECT_EQ(out.entries[0].last_match_seq, 97);
  EXPECT_EQ(out.entries[0].est_cpu_nanos, 55555);
  EXPECT_EQ(out.entries[1].cells, 800);
  EXPECT_EQ(out.entries[1].last_match_seq, -1);

  // Base-only bytes (v1 reply) decode with the stats columns at their
  // defaults.
  QueryListPayload v1 = payload;
  v1.has_stats = false;
  QueryListPayload from_v1;
  from_v1.has_stats = true;
  ASSERT_TRUE(DecodePayload(Encode(v1), &from_v1).ok());
  EXPECT_FALSE(from_v1.has_stats);
  ASSERT_EQ(from_v1.entries.size(), 2u);
  EXPECT_EQ(from_v1.entries[0].cells, 0);
  EXPECT_EQ(from_v1.entries[0].last_match_seq, -1);
  EXPECT_EQ(from_v1.entries[0].ticks, 100);
}

TEST(PayloadTest, ErrorPayloadStatusMapping) {
  const util::Status original =
      util::NotFoundError("no query 7");
  const ErrorPayload payload = MakeErrorPayload(12, original);
  EXPECT_EQ(payload.request_id, 12u);
  const std::vector<uint8_t> bytes = Encode(payload);
  ErrorPayload out;
  ASSERT_TRUE(DecodePayload(bytes, &out).ok());
  const util::Status status = out.ToStatus();
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no query 7");

  // Unknown codes (a newer peer) degrade to kInternal, never to kOk.
  ErrorPayload alien = payload;
  alien.code = 200;
  EXPECT_EQ(alien.ToStatus().code(), util::StatusCode::kInternal);
  alien.code = 0;
  EXPECT_EQ(alien.ToStatus().code(), util::StatusCode::kInternal);
}

TEST(PayloadTest, ToSpringOptionsValidates) {
  AddQueryPayload payload;
  payload.values = {1.0, 2.0};
  payload.epsilon = 0.5;
  payload.local_distance = 1;
  payload.max_match_length = 10;
  payload.min_match_length = 2;
  util::StatusOr<core::SpringOptions> options = payload.ToSpringOptions();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->epsilon, 0.5);
  EXPECT_EQ(options->local_distance, dtw::LocalDistance::kAbsolute);
  EXPECT_EQ(options->max_match_length, 10);
  EXPECT_EQ(options->min_match_length, 2);

  AddQueryPayload bad = payload;
  bad.values.clear();
  EXPECT_FALSE(bad.ToSpringOptions().ok());
  bad = payload;
  bad.values[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(bad.ToSpringOptions().ok());
  bad = payload;
  bad.epsilon = -1.0;
  EXPECT_FALSE(bad.ToSpringOptions().ok());
  bad = payload;
  bad.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(bad.ToSpringOptions().ok());
  bad = payload;
  bad.local_distance = 7;
  EXPECT_FALSE(bad.ToSpringOptions().ok());
  bad = payload;
  bad.min_match_length = -1;
  EXPECT_FALSE(bad.ToSpringOptions().ok());
}

}  // namespace
}  // namespace net
}  // namespace springdtw
