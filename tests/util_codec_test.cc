#include "util/codec.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

TEST(CodecTest, PrimitiveRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteI64(-42);
  writer.WriteDouble(3.14159);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteString("hello");

  ByteReader reader(writer.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  bool b1 = false;
  bool b2 = true;
  std::string s;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadI64(&i64));
  EXPECT_TRUE(reader.ReadDouble(&d));
  EXPECT_TRUE(reader.ReadBool(&b1));
  EXPECT_TRUE(reader.ReadBool(&b2));
  EXPECT_TRUE(reader.ReadString(&s));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, SpecialDoublesRoundTrip) {
  ByteWriter writer;
  writer.WriteDouble(std::numeric_limits<double>::infinity());
  writer.WriteDouble(-std::numeric_limits<double>::infinity());
  writer.WriteDouble(std::numeric_limits<double>::quiet_NaN());
  writer.WriteDouble(-0.0);

  ByteReader reader(writer.buffer());
  double v = 0.0;
  reader.ReadDouble(&v);
  EXPECT_TRUE(std::isinf(v) && v > 0);
  reader.ReadDouble(&v);
  EXPECT_TRUE(std::isinf(v) && v < 0);
  reader.ReadDouble(&v);
  EXPECT_TRUE(std::isnan(v));
  reader.ReadDouble(&v);
  EXPECT_TRUE(std::signbit(v));
  EXPECT_TRUE(reader.ok());
}

TEST(CodecTest, VectorRoundTrip) {
  ByteWriter writer;
  writer.WriteDoubleVector({1.5, -2.5, 0.0});
  writer.WriteInt64Vector({-1, 0, INT64_MAX});

  ByteReader reader(writer.buffer());
  std::vector<double> dv;
  std::vector<int64_t> iv;
  EXPECT_TRUE(reader.ReadDoubleVector(&dv));
  EXPECT_TRUE(reader.ReadInt64Vector(&iv));
  EXPECT_EQ(dv, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(iv, (std::vector<int64_t>{-1, 0, INT64_MAX}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, EmptyVectorsAndStrings) {
  ByteWriter writer;
  writer.WriteDoubleVector({});
  writer.WriteString("");
  ByteReader reader(writer.buffer());
  std::vector<double> dv{9.0};
  std::string s = "junk";
  EXPECT_TRUE(reader.ReadDoubleVector(&dv));
  EXPECT_TRUE(reader.ReadString(&s));
  EXPECT_TRUE(dv.empty());
  EXPECT_TRUE(s.empty());
}

TEST(CodecTest, TruncationFailsAndStaysFailed) {
  ByteWriter writer;
  writer.WriteU64(7);
  std::vector<uint8_t> bytes = writer.Take();
  bytes.resize(4);  // Cut mid-value.
  ByteReader reader(bytes);
  uint64_t v = 99;
  EXPECT_FALSE(reader.ReadU64(&v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(reader.ok());
  // Subsequent reads fail too.
  uint8_t u8 = 1;
  EXPECT_FALSE(reader.ReadU8(&u8));
}

TEST(CodecTest, CorruptVectorLengthRejected) {
  ByteWriter writer;
  writer.WriteU64(1ULL << 60);  // Absurd element count.
  ByteReader reader(writer.buffer());
  std::vector<double> dv;
  EXPECT_FALSE(reader.ReadDoubleVector(&dv));
  EXPECT_FALSE(reader.ok());
}

TEST(CodecTest, CorruptStringLengthRejected) {
  ByteWriter writer;
  writer.WriteU64(1000);  // Claims 1000 bytes; none follow.
  ByteReader reader(writer.buffer());
  std::string s;
  EXPECT_FALSE(reader.ReadString(&s));
}

TEST(CodecTest, PositionTracksConsumption) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ByteReader reader(writer.buffer());
  uint32_t v = 0;
  reader.ReadU32(&v);
  EXPECT_EQ(reader.position(), 4u);
  EXPECT_FALSE(reader.AtEnd());
  reader.ReadU32(&v);
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace util
}  // namespace springdtw
