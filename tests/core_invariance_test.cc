// Invariance properties of SPRING under value-space transforms and state
// resets.

#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

std::vector<double> RandomStream(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  double x = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.3);
    v[static_cast<size_t>(t)] = x;
  }
  return v;
}

class InvarianceSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvarianceSeedTest, ShiftingStreamAndQueryTogetherChangesNothing) {
  // ||(x+c) - (y+c)|| == ||x - y|| for both local distances, so matches,
  // distances and report times are identical.
  util::Rng rng(GetParam());
  const std::vector<double> stream = RandomStream(rng, 250);
  std::vector<double> query(4);
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);
  const double shift = rng.Uniform(-100.0, 100.0);

  for (const auto distance :
       {dtw::LocalDistance::kSquared, dtw::LocalDistance::kAbsolute}) {
    SpringOptions options;
    options.epsilon = rng.Uniform(0.5, 4.0);
    options.local_distance = distance;

    std::vector<double> shifted_query = query;
    for (double& y : shifted_query) y += shift;
    SpringMatcher original(query, options);
    SpringMatcher shifted(shifted_query, options);

    Match ma;
    Match mb;
    for (const double x : stream) {
      const bool ra = original.Update(x, &ma);
      const bool rb = shifted.Update(x + shift, &mb);
      ASSERT_EQ(ra, rb);
      if (ra) {
        EXPECT_EQ(ma.start, mb.start);
        EXPECT_EQ(ma.end, mb.end);
        EXPECT_NEAR(ma.distance, mb.distance, 1e-8);
        EXPECT_EQ(ma.report_time, mb.report_time);
      }
    }
  }
}

TEST_P(InvarianceSeedTest, ScalingValuesScalesDistancesPredictably) {
  // Squared local distance: scaling values by a scales distances by a^2,
  // so scaling epsilon by a^2 reproduces the same matches.
  util::Rng rng(GetParam() ^ 0x77);
  const std::vector<double> stream = RandomStream(rng, 250);
  std::vector<double> query(5);
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);
  const double scale = rng.Uniform(0.5, 4.0);

  SpringOptions options;
  options.epsilon = rng.Uniform(0.5, 4.0);
  SpringOptions scaled_options = options;
  scaled_options.epsilon = options.epsilon * scale * scale;

  std::vector<double> scaled_query = query;
  for (double& y : scaled_query) y *= scale;
  SpringMatcher original(query, options);
  SpringMatcher scaled(scaled_query, scaled_options);

  Match ma;
  Match mb;
  for (const double x : stream) {
    const bool ra = original.Update(x, &ma);
    const bool rb = scaled.Update(x * scale, &mb);
    ASSERT_EQ(ra, rb);
    if (ra) {
      EXPECT_EQ(ma.start, mb.start);
      EXPECT_EQ(ma.end, mb.end);
      EXPECT_NEAR(mb.distance, ma.distance * scale * scale,
                  1e-7 * (1.0 + ma.distance));
    }
  }
}

TEST_P(InvarianceSeedTest, ResetEqualsFreshMatcher) {
  util::Rng rng(GetParam() ^ 0x99);
  const std::vector<double> prefix = RandomStream(rng, 120);
  const std::vector<double> suffix = RandomStream(rng, 200);
  std::vector<double> query(4);
  for (double& y : query) y = rng.Uniform(-2.0, 2.0);
  SpringOptions options;
  options.epsilon = rng.Uniform(0.5, 3.0);

  SpringMatcher reused(query, options);
  Match match;
  for (const double x : prefix) reused.Update(x, &match);
  reused.Reset();

  SpringMatcher fresh(query, options);
  Match ma;
  Match mb;
  for (const double x : suffix) {
    const bool ra = reused.Update(x, &ma);
    const bool rb = fresh.Update(x, &mb);
    ASSERT_EQ(ra, rb);
    if (ra) {
      EXPECT_EQ(ma.start, mb.start);
      EXPECT_EQ(ma.end, mb.end);
      EXPECT_DOUBLE_EQ(ma.distance, mb.distance);
    }
  }
  EXPECT_EQ(reused.has_best(), fresh.has_best());
  if (reused.has_best()) {
    EXPECT_EQ(reused.best().start, fresh.best().start);
    EXPECT_DOUBLE_EQ(reused.best().distance, fresh.best().distance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceSeedTest,
                         ::testing::Values(901, 902, 903, 904, 905));

}  // namespace
}  // namespace core
}  // namespace springdtw
