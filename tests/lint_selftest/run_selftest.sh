#!/usr/bin/env bash
# Self-test for tools/springdtw_lint: runs the linter over a fixture tree
# that seeds exactly one (or two) violations per rule plus a non-firing
# counterpart for every suppression mechanism, then asserts the exact
# file:line: [rule] output and the total violation count.
#
# Usage: run_selftest.sh <path-to-springdtw_lint> <fixture-dir>
set -u

LINT="${1:?usage: run_selftest.sh <lint-binary> <fixture-dir>}"
FIXTURE="${2:?usage: run_selftest.sh <lint-binary> <fixture-dir>}"

out="$("$LINT" "$FIXTURE" 2>&1)"
status=$?
echo "$out"

fail() {
  echo "lint_selftest: FAIL: $1" >&2
  exit 1
}

# Violations present => exit code 1 (0 would mean the rules never fired).
[ "$status" -eq 1 ] || fail "expected exit status 1, got $status"

expect() {
  echo "$out" | grep -qF "$1" || fail "missing expected violation: $1"
}

# --- each rule fires at the seeded site -------------------------------
expect "core/bad_float.h:7: [no-float]"          # 'float' token
expect "core/bad_float.h:8: [no-float]"          # 1.5f literal
expect "core/raw_alloc.cc:4: [raw-alloc]"        # bare new
expect "core/raw_alloc.cc:8: [raw-alloc]"        # std::free
expect "monitor/raw_mutex.cc:1: [raw-mutex]"     # #include <mutex>
expect "monitor/raw_mutex.cc:5: [raw-mutex]"     # std::mutex member
expect "monitor/raw_mutex.cc:8: [raw-mutex]"     # std::lock_guard use
expect "monitor/unannotated.h:11: [thread-annotation]"  # state_mu_ w/o GUARDED_BY
expect "net/bad_atomic.cc:7: [memory-order]"     # load() w/o explicit order
expect "net/bad_atomic.cc:9: [memory-order]"     # explicit order, no // order:
expect "net/missing_guard.h:1: [include-guard]"
expect "util/status.h:1: [nodiscard]"

# --- suppressions and scoping must NOT fire ---------------------------
echo "$out" | grep -q "allowed_alloc"   && fail "allow-file(raw-alloc) was ignored"
echo "$out" | grep -q "allowed_mutex"   && fail "util/ raw-mutex exemption was ignored"
echo "$out" | grep -q "g_suppressed"    && fail "allow(raw-mutex) line suppression was ignored"
echo "$out" | grep -q "park_mu_"        && fail "allow(thread-annotation) suppression was ignored"
echo "$out" | grep -q "ok_mu_"          && fail "GUARDED_BY-satisfied member was flagged"
echo "$out" | grep -q "bad_atomic.cc:13" && fail "justified+explicit atomic op was flagged"
echo "$out" | grep -q "bad_atomic.cc:16" && fail "allow(memory-order) suppression was ignored"

# Exact count: the 12 expects above, with raw_mutex.cc:8 firing twice
# (std::mutex and std::lock_guard on one line) and status.h:1 firing twice
# (Status and StatusOr both missing [[nodiscard]]). Anything beyond 14
# means a rule fired where it should not have.
count=$(echo "$out" | grep -c ': \[')
[ "$count" -eq 14 ] || fail "expected exactly 14 violations, got $count"

echo "lint_selftest: PASS"
