namespace fixture {

int* Leak() {
  return new int(3);
}

void Release(void* p) {
  std::free(p);
}

}  // namespace fixture
