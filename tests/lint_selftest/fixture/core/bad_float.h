#ifndef SPRINGDTW_CORE_BAD_FLOAT_H_
#define SPRINGDTW_CORE_BAD_FLOAT_H_

namespace fixture {

inline double Demote(double x) {
  float narrowed = static_cast<float>(x);
  return narrowed * 1.5f;
}

}  // namespace fixture

#endif  // SPRINGDTW_CORE_BAD_FLOAT_H_
