#include <mutex>

namespace fixture {

std::mutex g_lock;

void Locked() {
  std::lock_guard<std::mutex> lock(g_lock);
  (void)lock;
}

// springdtw-lint: allow(raw-mutex) — fixture suppression check.
std::mutex g_suppressed;

}  // namespace fixture
