#ifndef SPRINGDTW_MONITOR_UNANNOTATED_H_
#define SPRINGDTW_MONITOR_UNANNOTATED_H_

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class Unannotated {
 private:
  util::Mutex state_mu_;
  int unguarded_ = 0;

  util::Mutex ok_mu_;
  int guarded_ SPRINGDTW_GUARDED_BY(ok_mu_) = 0;

  // springdtw-lint: allow(thread-annotation) — park-only fixture.
  util::Mutex park_mu_;
};

}  // namespace fixture

#endif  // SPRINGDTW_MONITOR_UNANNOTATED_H_
