#ifndef SPRINGDTW_UTIL_STATUS_H_
#define SPRINGDTW_UTIL_STATUS_H_

namespace fixture {

class Status {};

template <typename T>
class StatusOr {};

}  // namespace fixture

#endif  // SPRINGDTW_UTIL_STATUS_H_
