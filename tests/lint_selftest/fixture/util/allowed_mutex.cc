// Fixture: raw std::mutex is allowed under util/ (the wrappers live
// there).
#include <mutex>

namespace fixture {

std::mutex g_util_ok;

}  // namespace fixture
