#include <atomic>

namespace fixture {

class BadAtomic {
 public:
  long Get() const { return counter_.load(); }
  void Set(long v) {
    counter_.store(v, std::memory_order_relaxed);
  }
  void Ok(long v) {
    // order: relaxed — fixture: explicit and justified.
    counter_.store(v, std::memory_order_relaxed);
  }
  void Suppressed() {
    counter_.fetch_add(1);  // springdtw-lint: allow(memory-order)
  }

 private:
  mutable std::atomic<long> counter_{0};
};

}  // namespace fixture
