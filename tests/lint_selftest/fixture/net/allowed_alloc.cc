// springdtw-lint: allow-file(raw-alloc) — fixture: file-level suppression.

namespace fixture {

int* StillFine() {
  return new int(7);
}

}  // namespace fixture
