// Fixture: header without the canonical include guard.
#pragma once

namespace fixture {
inline int NoGuard() { return 1; }
}  // namespace fixture
