#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace springdtw {
namespace util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All of 3..7 appear in 1000 draws.
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gaussian(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  EXPECT_NE(child_a.NextUint64(), child_b.NextUint64());
  // Forking is deterministic in (seed, stream id).
  Rng parent2(13);
  Rng child_a2 = parent2.Fork(1);
  Rng fresh_a = Rng(13).Fork(1);
  EXPECT_EQ(child_a2.NextUint64(), fresh_a.NextUint64());
}

TEST(ShuffleTest, PermutesAllElements) {
  Rng rng(14);
  std::vector<int64_t> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int64_t> orig = v;
  Shuffle(rng, v);
  std::vector<int64_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(SplitMix64Test, KnownFirstOutputs) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace util
}  // namespace springdtw
