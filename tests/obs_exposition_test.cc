#include "obs/exposition.h"

#include <cctype>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace springdtw {
namespace obs {
namespace {

// A small registry covering all three kinds, with and without labels.
MetricsRegistry& GoldenRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("spring_ticks_total", "Query-ticks processed.",
                  {Label{"stream", "s0"}, Label{"query", "q0"}})
        ->Increment(100);
    r->GetGauge("spring_memory_bytes", "Working-set bytes.")->Set(4096);
    Histogram* h = r->GetHistogram("spring_report_delay_ticks",
                                   "Report delay in ticks.",
                                   {Label{"stream", "s0"}});
    for (int i = 1; i <= 10; ++i) h->Observe(static_cast<double>(i));
    return r;
  }();
  return *registry;
}

TEST(RenderPrometheusTest, GoldenOutput) {
  const std::string got = RenderPrometheus(GoldenRegistry().Snapshot());
  const std::string want =
      "# HELP spring_ticks_total Query-ticks processed.\n"
      "# TYPE spring_ticks_total counter\n"
      "spring_ticks_total{stream=\"s0\",query=\"q0\"} 100\n"
      "# HELP spring_memory_bytes Working-set bytes.\n"
      "# TYPE spring_memory_bytes gauge\n"
      "spring_memory_bytes 4096\n"
      "# HELP spring_report_delay_ticks Report delay in ticks.\n"
      "# TYPE spring_report_delay_ticks summary\n"
      "spring_report_delay_ticks{stream=\"s0\",quantile=\"0.5\"} 6\n"
      "spring_report_delay_ticks{stream=\"s0\",quantile=\"0.9\"} 9\n"
      "spring_report_delay_ticks{stream=\"s0\",quantile=\"0.99\"} 10\n"
      "spring_report_delay_ticks_sum{stream=\"s0\"} 55\n"
      "spring_report_delay_ticks_count{stream=\"s0\"} 10\n";
  EXPECT_EQ(got, want);
}

// Structural validity per the Prometheus text format 0.0.4: every
// non-comment line is `name{labels} value` with a parseable value, and
// every # line is a well-formed HELP/TYPE comment.
TEST(RenderPrometheusTest, EveryLineIsWellFormed) {
  const std::string text = RenderPrometheus(GoldenRegistry().Snapshot());
  int sample_lines = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(util::StartsWith(line, "# HELP ") ||
                  util::StartsWith(line, "# TYPE "))
          << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    double value = 0.0;
    EXPECT_TRUE(util::ParseDouble(value_part, &value)) << line;
    // Metric name starts with a letter; braces balance.
    ASSERT_FALSE(name_part.empty());
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name_part[0])))
        << line;
    const size_t open = name_part.find('{');
    if (open != std::string::npos) {
      EXPECT_EQ(name_part.back(), '}') << line;
    }
    ++sample_lines;
  }
  // counter + gauge + 3 quantiles + sum + count.
  EXPECT_EQ(sample_lines, 7);
}

TEST(RenderPrometheusTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c", "", {Label{"name", "a\"b\\c\nd"}})->Increment();
  const std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("c{name=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos)
      << text;
}

TEST(RenderJsonTest, GoldenOutput) {
  const std::string got = RenderJson(GoldenRegistry().Snapshot());
  const std::string want =
      "{\"metrics\":["
      "{\"name\":\"spring_ticks_total\",\"type\":\"counter\","
      "\"help\":\"Query-ticks processed.\",\"series\":["
      "{\"labels\":{\"stream\":\"s0\",\"query\":\"q0\"},\"value\":100}]},"
      "{\"name\":\"spring_memory_bytes\",\"type\":\"gauge\","
      "\"help\":\"Working-set bytes.\",\"series\":["
      "{\"labels\":{},\"value\":4096}]},"
      "{\"name\":\"spring_report_delay_ticks\",\"type\":\"histogram\","
      "\"help\":\"Report delay in ticks.\",\"series\":["
      "{\"labels\":{\"stream\":\"s0\"},\"count\":10,\"sum\":55,\"min\":1,"
      "\"max\":10,\"mean\":5.5,\"p50\":6,\"p90\":9,\"p99\":10,"
      "\"exact\":true}]}"
      "]}";
  EXPECT_EQ(got, want);
}

TEST(RenderJsonTest, NonFiniteValuesRenderAsNull) {
  MetricsRegistry registry;
  registry.GetGauge("g", "")->Set(
      std::numeric_limits<double>::quiet_NaN());
  const std::string text = RenderJson(registry.Snapshot());
  EXPECT_NE(text.find("\"value\":null"), std::string::npos) << text;
}

TEST(RenderJsonTest, EscapesStrings) {
  MetricsRegistry registry;
  registry.GetCounter("c", "say \"hi\"\tnow",
                      {Label{"k", "line\nbreak"}})
      ->Increment();
  const std::string text = RenderJson(registry.Snapshot());
  EXPECT_NE(text.find("\"help\":\"say \\\"hi\\\"\\tnow\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"k\":\"line\\nbreak\""), std::string::npos) << text;
}

TEST(RenderSummaryLineTest, MentionsEachFamily) {
  const std::string line = RenderSummaryLine(GoldenRegistry().Snapshot());
  EXPECT_TRUE(util::StartsWith(line, "[obs]")) << line;
  EXPECT_NE(line.find("spring_ticks_total=100"), std::string::npos) << line;
  EXPECT_NE(line.find("spring_memory_bytes=4096"), std::string::npos)
      << line;
  EXPECT_NE(line.find("spring_report_delay_ticks{p50=6,p99=10,n=10}"),
            std::string::npos)
      << line;
}

TEST(EscapeTest, PrometheusLabel) {
  EXPECT_EQ(EscapePrometheusLabel("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabel("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(EscapeTest, JsonControlCharacters) {
  EXPECT_EQ(EscapeJson("tab\there"), "tab\\there");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace obs
}  // namespace springdtw
