// End-to-end integration: generated workloads -> monitor engine / matchers
// -> every planted episode is discovered (the substance of the paper's
// Section 5.1 case studies, at test-sized scales).

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/subsequence_scan.h"
#include "core/vector_spring.h"
#include "gen/masked_chirp.h"
#include "gen/mocap.h"
#include "gen/seismic.h"
#include "gen/sunspots.h"
#include "gen/temperature.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "monitor/stream_source.h"
#include "ts/repair.h"

namespace springdtw {
namespace {

using core::CalibrateEpsilon;
using core::DisjointMatches;
using core::Match;
using gen::PlantedEvent;

std::vector<std::pair<int64_t, int64_t>> EventRegions(
    const std::vector<PlantedEvent>& events, int64_t stream_size,
    int64_t margin) {
  std::vector<std::pair<int64_t, int64_t>> regions;
  for (const PlantedEvent& e : events) {
    regions.emplace_back(std::max<int64_t>(0, e.start - margin),
                         std::min<int64_t>(stream_size - 1, e.end() + margin));
  }
  return regions;
}

// True if every planted event overlaps exactly one reported match.
void ExpectAllEventsDetected(const std::vector<PlantedEvent>& events,
                             const std::vector<Match>& matches) {
  for (const PlantedEvent& e : events) {
    int overlapping = 0;
    for (const Match& m : matches) {
      if (gen::IntervalsOverlap(e.start, e.end(), m.start, m.end)) {
        ++overlapping;
      }
    }
    EXPECT_GE(overlapping, 1) << "planted event at " << e.start
                              << " (len " << e.length << ") undetected";
  }
}

TEST(EndToEndTest, MaskedChirpAllEpisodesDetected) {
  gen::MaskedChirpOptions options;
  options.length = 8000;
  options.num_episodes = 3;
  options.min_episode_length = 800;
  options.max_episode_length = 1400;
  const auto data = GenerateMaskedChirp(options, /*query_length=*/1024);

  const double epsilon = CalibrateEpsilon(
      data.stream, data.query,
      EventRegions(data.events, data.stream.size(), 100), 1.2);
  const std::vector<Match> matches =
      DisjointMatches(data.stream, data.query, epsilon);
  ExpectAllEventsDetected(data.events, matches);
  // Matching is selective: no more than a couple of extra matches.
  EXPECT_LE(matches.size(), data.events.size() + 2);
}

TEST(EndToEndTest, TemperatureEpisodesDetectedDespiteMissingValues) {
  gen::TemperatureOptions options;
  options.length = 15000;
  options.num_episodes = 2;
  options.min_episode_length = 2000;
  options.max_episode_length = 3000;
  const auto data = GenerateTemperature(options, /*query_length=*/2500);
  ASSERT_GT(data.stream.CountMissing(), 0);

  const ts::Series repaired =
      RepairMissing(data.stream, ts::RepairPolicy::kHoldLast);
  const double epsilon = CalibrateEpsilon(
      repaired, data.query, EventRegions(data.events, repaired.size(), 200),
      1.2);
  const std::vector<Match> matches =
      DisjointMatches(repaired, data.query, epsilon);
  ExpectAllEventsDetected(data.events, matches);
}

TEST(EndToEndTest, SeismicEventDetectedDespiteIntervalJitter) {
  gen::SeismicOptions options;
  options.length = 20000;
  options.event_length = 2000;
  const auto data = GenerateSeismic(options);

  const double epsilon = CalibrateEpsilon(
      data.stream, data.query,
      EventRegions(data.events, data.stream.size(), 200), 1.2);
  const std::vector<Match> matches =
      DisjointMatches(data.stream, data.query, epsilon);
  ExpectAllEventsDetected(data.events, matches);
}

TEST(EndToEndTest, SunspotCyclesDetectedAcrossVaryingPeriod) {
  gen::SunspotOptions options;
  options.length = 10000;
  options.min_cycle_length = 2000;
  options.max_cycle_length = 2800;
  const auto data = GenerateSunspots(options, /*query_length=*/1400);

  const double epsilon = CalibrateEpsilon(
      data.stream, data.query,
      EventRegions(data.events, data.stream.size(), 150), 1.25);
  const std::vector<Match> matches =
      DisjointMatches(data.stream, data.query, epsilon);
  ExpectAllEventsDetected(data.events, matches);
}

TEST(EndToEndTest, MonitorEngineReplaysTemperatureStream) {
  gen::TemperatureOptions options;
  options.length = 12000;
  options.num_episodes = 2;
  options.min_episode_length = 1800;
  options.max_episode_length = 2400;
  const auto data = GenerateTemperature(options, 2000);

  const ts::Series repaired =
      RepairMissing(data.stream, ts::RepairPolicy::kHoldLast);
  const double epsilon = CalibrateEpsilon(
      repaired, data.query, EventRegions(data.events, repaired.size(), 200),
      1.2);

  monitor::MonitorEngine engine;
  monitor::CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("temperature");
  core::SpringOptions spring_options;
  spring_options.epsilon = epsilon;
  ASSERT_TRUE(engine
                  .AddQuery(stream, "warmup", data.query.values(),
                            spring_options)
                  .ok());

  monitor::SeriesSource source(data.stream);  // Repairs NaN inline.
  double value = 0.0;
  while (source.Next(&value)) {
    ASSERT_TRUE(engine.Push(stream, value).ok());
  }
  engine.FlushAll();

  std::vector<Match> matches;
  for (const auto& entry : sink.entries()) matches.push_back(entry.match);
  ExpectAllEventsDetected(data.events, matches);
}

TEST(EndToEndTest, MocapAllSevenMotionsSpotted) {
  gen::MocapOptions options;
  options.dims = 16;  // Scaled down from 62 for test speed.
  options.canonical_length = 120;
  const auto data = GenerateMocap(options);

  // For each motion query, find matches; the union over queries must cover
  // all 7 segments, and each query's matches must land on segments of its
  // own archetype.
  std::vector<Match> all_matches;
  for (const auto& [name, query] : data.queries) {
    // Calibrate epsilon per query from the segments of this archetype.
    double epsilon = 0.0;
    for (const PlantedEvent& e : data.events) {
      if (e.label != name) continue;
      const ts::VectorSeries segment =
          data.stream.Slice(e.start, e.length);
      core::SpringOptions probe;
      probe.epsilon = -1.0;
      core::VectorSpringMatcher matcher(query, probe);
      for (int64_t t = 0; t < segment.size(); ++t) {
        matcher.Update(segment.Row(t), nullptr);
      }
      epsilon = std::max(epsilon, matcher.best().distance);
    }
    epsilon *= 1.2;

    const std::vector<Match> matches =
        core::DisjointVectorMatches(data.stream, query, epsilon);
    for (const Match& m : matches) {
      all_matches.push_back(m);
      // Every match of this query overlaps a segment of the right type.
      bool on_own_archetype = false;
      for (const PlantedEvent& e : data.events) {
        if (e.label == name &&
            gen::IntervalsOverlap(e.start, e.end(), m.start, m.end)) {
          on_own_archetype = true;
        }
      }
      EXPECT_TRUE(on_own_archetype)
          << name << " matched X[" << m.start << ":" << m.end
          << "] which is not a " << name << " segment";
    }
  }
  ExpectAllEventsDetected(data.events, all_matches);
}

}  // namespace
}  // namespace springdtw
