// Differential oracle harness: every execution path that claims SPRING
// semantics — SpringMatcher, the SoA SpringBatchPool, the batch-mode
// MonitorEngine, and the ShardedMonitor scale-out shell — is run over the
// same randomized workloads and compared.
//
// Two tiers of agreement are enforced per trial:
//   * the O(n*m)-per-tick NaiveMatcher baseline (an independent
//     implementation of the time-warping matrix) must agree with
//     SpringMatcher on every match's positions and report time, with
//     distances within 1e-9 (it sums the same terms in a different order);
//   * the fast paths must agree with SpringMatcher *bitwise* — identical
//     doubles, identical report order — because they advertise bit-for-bit
//     equivalence, not approximation.
// Trials include NaN-repaired streams (leading and interior gaps), the
// exact-match regime epsilon = 0, loose epsilons, and max_match_length.
//
// Tie handling: when several start positions achieve *exactly* the same
// distance, the paper does not pin down which tied optimum is reported —
// the naive baseline's per-row reduction keeps the earliest tied start
// while SPRING's recurrence inherits the start of its predecessor
// tie-break, and both are correct. Ties are routine over a small alphabet,
// and hold-last NaN repair manufactures them even in continuous streams (a
// repeated value lets a warping path shift its start across the repeat for
// free). The oracle tier therefore runs on gap-free continuous workloads,
// where ties have measure zero; the tie-heavy and NaN-repaired workloads
// exercise the bitwise family, which shares one DP and must agree exactly
// even on ties.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/match.h"
#include "core/naive.h"
#include "core/spring.h"
#include "core/spring_batch.h"
#include "gtest/gtest.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "ts/repair.h"
#include "util/random.h"

namespace springdtw {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

struct Trial {
  /// Raw stream, possibly with NaNs (repaired before matcher-level runs;
  /// fed raw to the engine/monitor, whose repair must match).
  std::vector<double> raw;
  std::vector<std::vector<double>> queries;
  std::vector<core::SpringOptions> options;
};

/// Mirrors MonitorEngine's stream repair: hold-last, seeded at the first
/// finite value, 0.0 before one arrives.
std::vector<double> Repair(const std::vector<double>& raw) {
  std::vector<double> repaired;
  repaired.reserve(raw.size());
  ts::StreamingRepairer repairer;
  bool seeded = false;
  for (const double x : raw) {
    if (!seeded && !ts::IsMissing(x)) {
      repairer = ts::StreamingRepairer(x);
      seeded = true;
    }
    repaired.push_back(repairer.Next(x));
  }
  return repaired;
}

enum class ValueStyle {
  /// Gap-free continuous values: exact DP ties have measure zero, so the
  /// naive oracle's tied-optimum choice never diverges — oracle comparable.
  kContinuous,
  /// 5-letter integer alphabet plus NaN gaps: DP ties are routine —
  /// exercises the bitwise family's shared tie-break and the repair path;
  /// oracle skipped (see file comment).
  kTieHeavy,
};

Trial MakeTrial(util::Rng& rng, ValueStyle style, bool exact_regime) {
  Trial trial;
  const int64_t n = rng.UniformInt(80, 260);
  trial.raw.reserve(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    if (style == ValueStyle::kTieHeavy && rng.Bernoulli(0.06)) {
      trial.raw.push_back(kNaN);
    } else if (style == ValueStyle::kTieHeavy) {
      trial.raw.push_back(static_cast<double>(rng.UniformInt(0, 4)));
    } else {
      trial.raw.push_back(rng.Uniform(-2.0, 2.0));
    }
  }
  // A leading gap in some trials: repair must substitute 0.0 until the
  // first finite value.
  if (style == ValueStyle::kTieHeavy && rng.Bernoulli(0.2)) {
    trial.raw[0] = kNaN;
    if (n > 1) trial.raw[1] = kNaN;
  }

  const int64_t num_queries = rng.UniformInt(1, 4);
  for (int64_t q = 0; q < num_queries; ++q) {
    const int64_t m = rng.UniformInt(2, 8);
    std::vector<double> query(static_cast<size_t>(m));
    for (double& y : query) {
      y = (style == ValueStyle::kTieHeavy)
              ? static_cast<double>(rng.UniformInt(0, 4))
              : rng.Uniform(-2.0, 2.0);
    }
    core::SpringOptions options;
    if (exact_regime) {
      options.epsilon = 0.0;
      // Plant one exact occurrence so epsilon = 0 trials still produce
      // matches to disagree about.
      const int64_t at = rng.UniformInt(0, n - m);
      for (int64_t i = 0; i < m; ++i) {
        trial.raw[static_cast<size_t>(at + i)] =
            query[static_cast<size_t>(i)];
      }
    } else {
      options.epsilon = rng.Bernoulli(0.3) ? rng.Uniform(4.0, 30.0)
                                           : rng.Uniform(0.5, 4.0);
      if (rng.Bernoulli(0.25)) {
        options.max_match_length = rng.UniformInt(m, 3 * m);
      }
    }
    trial.queries.push_back(std::move(query));
    trial.options.push_back(options);
  }
  return trial;
}

/// (query, match) pairs in report order — the comparable unit of output.
struct Outcome {
  int64_t query = 0;
  core::Match match;
};

template <typename Matcher>
std::vector<Outcome> RunPerTickMatchers(const Trial& trial,
                                        const std::vector<double>& stream) {
  std::vector<Matcher> matchers;
  for (size_t q = 0; q < trial.queries.size(); ++q) {
    matchers.emplace_back(trial.queries[q], trial.options[q]);
  }
  std::vector<Outcome> out;
  core::Match match;
  for (const double x : stream) {
    for (size_t q = 0; q < matchers.size(); ++q) {
      if (matchers[q].Update(x, &match)) {
        out.push_back({static_cast<int64_t>(q), match});
      }
    }
  }
  for (size_t q = 0; q < matchers.size(); ++q) {
    if (matchers[q].Flush(&match)) {
      out.push_back({static_cast<int64_t>(q), match});
    }
  }
  return out;
}

std::vector<Outcome> RunBatchPool(const Trial& trial,
                                  const std::vector<double>& stream) {
  core::SpringBatchPool pool;
  for (size_t q = 0; q < trial.queries.size(); ++q) {
    pool.AddQuery(trial.queries[q], trial.options[q]);
  }
  std::vector<core::SpringBatchPool::Report> reports;
  pool.PushBatch(stream, &reports);
  pool.Flush(&reports);
  std::vector<Outcome> out;
  out.reserve(reports.size());
  for (const auto& report : reports) {
    out.push_back({report.query_index, report.match});
  }
  return out;
}

std::vector<Outcome> RunEngine(const Trial& trial,
                               const std::vector<double>& raw) {
  monitor::EngineOptions engine_options;
  engine_options.batch_queries = true;
  monitor::MonitorEngine engine(engine_options);
  monitor::CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream_id = engine.AddStream("s", /*repair_missing=*/true);
  for (size_t q = 0; q < trial.queries.size(); ++q) {
    EXPECT_TRUE(engine
                    .AddQuery(stream_id, "q" + std::to_string(q),
                              trial.queries[q], trial.options[q])
                    .ok());
  }
  EXPECT_TRUE(engine.PushBatch(stream_id, raw).ok());
  engine.FlushAll();
  std::vector<Outcome> out;
  for (const auto& entry : sink.entries()) {
    out.push_back({entry.origin.query_id, entry.match});
  }
  return out;
}

std::vector<Outcome> RunShardedMonitor(const Trial& trial,
                                       const std::vector<double>& raw,
                                       int64_t num_workers) {
  monitor::ShardedMonitorOptions options;
  options.num_workers = num_workers;
  monitor::ShardedMonitor monitor(options);
  monitor::CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t stream_id = monitor.AddStream("s", /*repair_missing=*/true);
  for (size_t q = 0; q < trial.queries.size(); ++q) {
    EXPECT_TRUE(monitor
                    .AddQuery(stream_id, "q" + std::to_string(q),
                              trial.queries[q], trial.options[q])
                    .ok());
  }
  monitor.Start();
  for (const double x : raw) {
    EXPECT_TRUE(monitor.Push(stream_id, x).ok());
  }
  monitor.FlushAll();
  monitor.Stop();
  std::vector<Outcome> out;
  for (const auto& entry : sink.entries()) {
    out.push_back({entry.origin.query_id, entry.match});
  }
  return out;
}

/// Bitwise agreement: same order, same positions, same doubles.
void ExpectBitwiseEqual(const std::vector<Outcome>& got,
                        const std::vector<Outcome>& expected,
                        const char* label, uint64_t seed) {
  ASSERT_EQ(got.size(), expected.size()) << label << " seed " << seed;
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(std::string(label) + " seed " + std::to_string(seed) +
                 " match " + std::to_string(i));
    EXPECT_EQ(got[i].query, expected[i].query);
    EXPECT_EQ(got[i].match.start, expected[i].match.start);
    EXPECT_EQ(got[i].match.end, expected[i].match.end);
    EXPECT_EQ(got[i].match.report_time, expected[i].match.report_time);
    // Bitwise: EQ on doubles, not NEAR.
    EXPECT_EQ(got[i].match.distance, expected[i].match.distance);
  }
}

/// Oracle agreement: the naive baseline sums identical local distances in a
/// different order, so positions/report times must be exact and distances
/// within 1e-9.
void ExpectOracleAgreement(const std::vector<Outcome>& fast,
                           const std::vector<Outcome>& oracle,
                           uint64_t seed) {
  ASSERT_EQ(fast.size(), oracle.size()) << "oracle seed " << seed;
  for (size_t i = 0; i < oracle.size(); ++i) {
    SCOPED_TRACE("oracle seed " + std::to_string(seed) + " match " +
                 std::to_string(i));
    EXPECT_EQ(fast[i].query, oracle[i].query);
    EXPECT_EQ(fast[i].match.start, oracle[i].match.start);
    EXPECT_EQ(fast[i].match.end, oracle[i].match.end);
    EXPECT_EQ(fast[i].match.report_time, oracle[i].match.report_time);
    EXPECT_NEAR(fast[i].match.distance, oracle[i].match.distance, 1e-9);
  }
}

/// Runs one full differential trial; returns the reference match count.
int64_t RunTrial(uint64_t seed, ValueStyle style, bool exact_regime) {
  util::Rng rng(seed);
  const Trial trial = MakeTrial(rng, style, exact_regime);
  const std::vector<double> repaired = Repair(trial.raw);

  const std::vector<Outcome> reference =
      RunPerTickMatchers<core::SpringMatcher>(trial, repaired);
  if (style == ValueStyle::kContinuous) {
    const std::vector<Outcome> oracle =
        RunPerTickMatchers<core::NaiveMatcher>(trial, repaired);
    ExpectOracleAgreement(reference, oracle, seed);
  }

  ExpectBitwiseEqual(RunBatchPool(trial, repaired), reference, "pool", seed);
  ExpectBitwiseEqual(RunEngine(trial, trial.raw), reference, "engine", seed);
  ExpectBitwiseEqual(RunShardedMonitor(trial, trial.raw, /*num_workers=*/3),
                     reference, "sharded", seed);
  return static_cast<int64_t>(reference.size());
}

TEST(DifferentialOracleTest, ContinuousTrialsAgreeWithOracleAndEachOther) {
  int64_t total_matches = 0;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    total_matches += RunTrial(seed, ValueStyle::kContinuous,
                              /*exact_regime=*/false);
    if (HasFatalFailure()) return;
  }
  // The harness is vacuous if the workloads rarely match; make sure they
  // don't.
  EXPECT_GT(total_matches, 100);
}

TEST(DifferentialOracleTest, TieHeavyNaNRepairedTrialsAgreeBitwise) {
  int64_t total_matches = 0;
  for (uint64_t seed = 500; seed < 650; ++seed) {
    total_matches += RunTrial(seed, ValueStyle::kTieHeavy,
                              /*exact_regime=*/false);
    if (HasFatalFailure()) return;
  }
  // Loose epsilons over a 5-letter alphabet match constantly.
  EXPECT_GT(total_matches, 100);
}

TEST(DifferentialOracleTest, ExactMatchRegimeEpsilonZero) {
  int64_t total_matches = 0;
  for (uint64_t seed = 1000; seed < 1100; ++seed) {
    total_matches += RunTrial(seed, ValueStyle::kContinuous,
                              /*exact_regime=*/true);
    if (HasFatalFailure()) return;
  }
  // Every exact-regime trial plants one exact occurrence per query.
  EXPECT_GT(total_matches, 100);
}

TEST(DifferentialOracleTest, AllMissingPrefixRepairsToZero) {
  // A stream that *starts* missing exercises the unseeded repairer on
  // every path at once. The repaired zero-run is tie-heavy by construction
  // (see file comment), so this is a bitwise-family case.
  Trial trial;
  trial.raw = {kNaN, kNaN, kNaN, 1.0, 2.0, 3.0, kNaN, 9.0};
  trial.queries = {{0.0, 0.0, 1.0}, {1.0, 2.0, 3.0, 3.0}};
  core::SpringOptions options;
  options.epsilon = 0.5;
  trial.options = {options, options};

  const std::vector<double> repaired = Repair(trial.raw);
  EXPECT_EQ(repaired[0], 0.0);
  EXPECT_EQ(repaired[2], 0.0);
  EXPECT_EQ(repaired[6], 3.0);

  const std::vector<Outcome> reference =
      RunPerTickMatchers<core::SpringMatcher>(trial, repaired);
  EXPECT_FALSE(reference.empty());
  ExpectBitwiseEqual(RunBatchPool(trial, repaired), reference, "pool", 0);
  ExpectBitwiseEqual(RunEngine(trial, trial.raw), reference, "engine", 0);
  ExpectBitwiseEqual(RunShardedMonitor(trial, trial.raw, /*num_workers=*/2),
                     reference, "sharded", 0);
}

}  // namespace
}  // namespace springdtw
