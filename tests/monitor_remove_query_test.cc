// MonitorEngine::RemoveQuery / ShardedMonitor::RemoveQuery semantics: a
// pending candidate is flushed iff it is already report-eligible under the
// paper's Problem-2 rule (no current-row cell with d(t,i) < d_min and
// s(t,i) <= t_e), removal tombstones the global id without shifting other
// ids, checkpoints skip removed queries and round-trip byte-identically,
// and the scalar and SoA-batch engines agree on all of it.
#include <cstdint>
#include <string>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "util/random.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions Eps(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

class EngineModeTest : public ::testing::TestWithParam<bool> {
 protected:
  MonitorEngine MakeEngine() {
    EngineOptions options;
    options.batch_queries = GetParam();
    return MonitorEngine(options);
  }
};

INSTANTIATE_TEST_SUITE_P(ScalarAndBatch, EngineModeTest, ::testing::Bool());

TEST_P(EngineModeTest, RemoveUnknownOrRemovedQueryFails) {
  MonitorEngine engine = MakeEngine();
  const int64_t stream = engine.AddStream("s");
  const int64_t q0 = *engine.AddQuery(stream, "q0", {1.0, 2.0}, Eps(0.5));
  const int64_t q1 = *engine.AddQuery(stream, "q1", {3.0}, Eps(0.5));

  EXPECT_EQ(engine.RemoveQuery(-1).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine.RemoveQuery(99).status().code(),
            util::StatusCode::kNotFound);

  ASSERT_TRUE(engine.RemoveQuery(q0).ok());
  EXPECT_TRUE(engine.query_removed(q0));
  EXPECT_FALSE(engine.query_removed(q1));
  // Tombstone: ids do not shift, the count of live queries drops.
  EXPECT_EQ(engine.num_queries(), 2);
  EXPECT_EQ(engine.num_active_queries(), 1);
  // Double remove is NotFound, not a crash.
  EXPECT_EQ(engine.RemoveQuery(q0).status().code(),
            util::StatusCode::kNotFound);
  // The survivor still ingests under its old id.
  ASSERT_TRUE(engine.Push(stream, 3.0).ok());
  EXPECT_EQ(engine.stats(q1).ticks, 1);
}

TEST_P(EngineModeTest, EligibleCandidateFlushesOnRemove) {
  MonitorEngine engine = MakeEngine();
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s");
  const int64_t query =
      *engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Eps(0.5));
  // Exact pattern occurrence ending at the last tick: the candidate was
  // updated to dmin = 0 *after* this tick's report check ran, and no cell
  // can beat a zero distance, so removal must flush it.
  for (const double v : {5.0, 1.0, 2.0, 3.0}) {
    ASSERT_TRUE(engine.Push(stream, v).ok());
  }
  ASSERT_TRUE(sink.entries().empty());
  util::StatusOr<int64_t> flushed = engine.RemoveQuery(query);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 1);
  ASSERT_EQ(sink.entries().size(), 1u);
  const CollectSink::Entry& entry = sink.entries()[0];
  EXPECT_EQ(entry.origin.query_id, query);
  EXPECT_EQ(entry.origin.query_name, "q");
  EXPECT_EQ(entry.match.start, 1);
  EXPECT_EQ(entry.match.end, 3);
  EXPECT_EQ(entry.match.distance, 0.0);
  EXPECT_EQ(entry.match.report_time, 4);
  EXPECT_EQ(engine.stats(query).matches, 1);
}

TEST_P(EngineModeTest, NoCandidateNothingToFlush) {
  MonitorEngine engine = MakeEngine();
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s");
  const int64_t query =
      *engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Eps(0.5));
  for (const double v : {9.0, 9.0, 9.0}) {
    ASSERT_TRUE(engine.Push(stream, v).ok());
  }
  util::StatusOr<int64_t> flushed = engine.RemoveQuery(query);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 0);
  EXPECT_TRUE(sink.entries().empty());
  EXPECT_EQ(engine.stats(query).matches, 0);
}

// Property: the engine's flush-on-remove decision must equal the Problem-2
// predicate evaluated on a standalone scalar matcher fed the same values
// (rows 1..m; the star row is exempt). Random prefixes must exercise both
// outcomes, or the test is vacuous.
TEST_P(EngineModeTest, FlushDecisionMatchesScalarOraclePredicate) {
  util::Rng rng(20260807);
  int64_t flushed_cases = 0;
  int64_t dropped_cases = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> query_values;
    const int64_t m = 2 + rng.UniformInt(0, 2);
    for (int64_t i = 0; i < m; ++i) {
      query_values.push_back(static_cast<double>(rng.UniformInt(0, 3)));
    }
    const core::SpringOptions options = Eps(1.5);

    MonitorEngine engine = MakeEngine();
    CollectSink sink;
    engine.AddSink(&sink);
    const int64_t stream = engine.AddStream("s");
    const int64_t query =
        *engine.AddQuery(stream, "q", query_values, options);
    core::SpringMatcher oracle(query_values, options);

    const int64_t prefix = 1 + rng.UniformInt(0, 30);
    for (int64_t t = 0; t < prefix; ++t) {
      const double v = static_cast<double>(rng.UniformInt(0, 3));
      ASSERT_TRUE(engine.Push(stream, v).ok());
      core::Match ignored;
      (void)oracle.Update(v, &ignored);
    }

    bool expect_flush = false;
    if (oracle.has_pending_candidate() &&
        oracle.candidate_distance() <= options.epsilon) {
      expect_flush = true;
      const std::span<const double> d = oracle.LastRowDistances();
      const std::span<const int64_t> s = oracle.LastRowStarts();
      for (size_t i = 1; i < d.size(); ++i) {
        if (d[i] < oracle.candidate_distance() &&
            s[i] <= oracle.candidate_end()) {
          expect_flush = false;
          break;
        }
      }
    }

    const size_t matches_before = sink.entries().size();
    util::StatusOr<int64_t> flushed = engine.RemoveQuery(query);
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(*flushed, expect_flush ? 1 : 0) << "trial " << trial;
    ASSERT_EQ(sink.entries().size(), matches_before + (expect_flush ? 1 : 0));
    if (expect_flush) {
      const CollectSink::Entry& entry = sink.entries().back();
      EXPECT_EQ(entry.match.start, oracle.candidate_start());
      EXPECT_EQ(entry.match.end, oracle.candidate_end());
      EXPECT_EQ(entry.match.distance, oracle.candidate_distance());
      ++flushed_cases;
    } else {
      ++dropped_cases;
    }
  }
  EXPECT_GT(flushed_cases, 0);
  EXPECT_GT(dropped_cases, 0);
}

// Batch and scalar engines run the same remove-mid-ingest schedule and
// must produce identical match streams and identical flush counts.
TEST(RemoveQueryDifferentialTest, BatchAgreesWithScalar) {
  util::Rng rng(7771);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<std::vector<double>> patterns = {
        {1.0, 2.0, 3.0}, {2.0, 2.0}, {0.0, 1.0, 0.0}};
    std::vector<std::pair<int64_t, double>> ops;
    const int64_t n = 60 + rng.UniformInt(0, 60);
    for (int64_t i = 0; i < n; ++i) {
      ops.emplace_back(0, static_cast<double>(rng.UniformInt(0, 3)));
    }
    const int64_t remove_at = rng.UniformInt(1, n - 1);
    const int64_t remove_query = rng.UniformInt(0, 2);

    auto run = [&](bool batch) {
      EngineOptions engine_options;
      engine_options.batch_queries = batch;
      MonitorEngine engine(engine_options);
      CollectSink sink;
      engine.AddSink(&sink);
      const int64_t stream = engine.AddStream("s");
      for (size_t q = 0; q < patterns.size(); ++q) {
        EXPECT_TRUE(engine
                        .AddQuery(stream, "q" + std::to_string(q),
                                  patterns[q], Eps(q == 1 ? 0.5 : 2.0))
                        .ok());
      }
      int64_t flushed = -1;
      for (int64_t i = 0; i < n; ++i) {
        if (i == remove_at) {
          util::StatusOr<int64_t> removed = engine.RemoveQuery(remove_query);
          EXPECT_TRUE(removed.ok());
          flushed = *removed;
        }
        EXPECT_TRUE(engine.Push(ops[static_cast<size_t>(i)].first,
                                ops[static_cast<size_t>(i)].second)
                        .ok());
      }
      engine.FlushAll();
      return std::make_pair(flushed, sink.entries());
    };

    const auto [scalar_flushed, scalar_entries] = run(false);
    const auto [batch_flushed, batch_entries] = run(true);
    EXPECT_EQ(scalar_flushed, batch_flushed) << "trial " << trial;
    ASSERT_EQ(scalar_entries.size(), batch_entries.size()) << "trial "
                                                           << trial;
    for (size_t i = 0; i < scalar_entries.size(); ++i) {
      EXPECT_EQ(scalar_entries[i].origin.query_id,
                batch_entries[i].origin.query_id);
      EXPECT_EQ(scalar_entries[i].match.start, batch_entries[i].match.start);
      EXPECT_EQ(scalar_entries[i].match.end, batch_entries[i].match.end);
      EXPECT_EQ(scalar_entries[i].match.distance,
                batch_entries[i].match.distance);
      EXPECT_EQ(scalar_entries[i].match.report_time,
                batch_entries[i].match.report_time);
    }
  }
}

// Removal must not disturb checkpoints: serialize-after-remove restores
// into an engine whose own serialization is byte-identical, and both
// continue identically.
TEST_P(EngineModeTest, CheckpointAfterRemoveRoundTripsByteIdentically) {
  MonitorEngine engine = MakeEngine();
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(engine.AddQuery(stream, "q0", {1.0, 2.0, 3.0}, Eps(2.0)).ok());
  const int64_t q1 = *engine.AddQuery(stream, "q1", {2.0, 2.0}, Eps(0.5));
  ASSERT_TRUE(engine.AddQuery(stream, "q2", {0.0, 1.0}, Eps(1.0)).ok());
  util::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        engine.Push(stream, static_cast<double>(rng.UniformInt(0, 3))).ok());
  }
  ASSERT_TRUE(engine.RemoveQuery(q1).ok());

  const std::vector<uint8_t> snapshot = engine.SerializeState();
  EngineOptions restore_options;
  restore_options.batch_queries = GetParam();
  MonitorEngine restored(restore_options);
  CollectSink restored_sink;
  restored.AddSink(&restored_sink);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  EXPECT_EQ(restored.SerializeState(), snapshot);

  // Note the restored engine compacts ids (removed queries are not in the
  // checkpoint), so compare by name + match fields, not raw ids.
  sink.Clear();
  for (int i = 0; i < 50; ++i) {
    const double v = static_cast<double>(rng.UniformInt(0, 3));
    ASSERT_TRUE(engine.Push(stream, v).ok());
    ASSERT_TRUE(restored.Push(stream, v).ok());
  }
  engine.FlushAll();
  restored.FlushAll();
  ASSERT_EQ(sink.entries().size(), restored_sink.entries().size());
  for (size_t i = 0; i < sink.entries().size(); ++i) {
    EXPECT_EQ(sink.entries()[i].origin.query_name,
              restored_sink.entries()[i].origin.query_name);
    EXPECT_EQ(sink.entries()[i].match.start,
              restored_sink.entries()[i].match.start);
    EXPECT_EQ(sink.entries()[i].match.end,
              restored_sink.entries()[i].match.end);
    EXPECT_EQ(sink.entries()[i].match.distance,
              restored_sink.entries()[i].match.distance);
  }
}

// ShardedMonitor removal: same schedule as a single reference engine, for
// 1/2/8 workers — identical output (flush ordered after tick matches),
// Status errors for bad ids, and ListQueries reflecting the tombstone.
class ShardedRemoveTest : public ::testing::TestWithParam<int64_t> {};

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ShardedRemoveTest,
                         ::testing::Values<int64_t>(1, 2, 8));

TEST_P(ShardedRemoveTest, MatchesSingleEngineWithMidStreamRemovals) {
  util::Rng rng(4242);
  const int64_t kStreams = 4;
  std::vector<std::pair<int64_t, double>> ops;
  for (int i = 0; i < 3000; ++i) {
    ops.emplace_back(rng.UniformInt(0, kStreams - 1),
                     static_cast<double>(rng.UniformInt(0, 3)));
  }
  const std::vector<std::vector<double>> patterns = {
      {1.0, 2.0, 3.0}, {2.0, 2.0}, {0.0, 1.0, 0.0}, {3.0, 3.0}};
  // (op index, query id) removal schedule.
  const std::vector<std::pair<int64_t, int64_t>> removals = {
      {500, 1}, {1500, 6}, {2500, 3}};

  auto build = [&](auto&& add_stream, auto&& add_query) {
    for (int64_t s = 0; s < kStreams; ++s) {
      add_stream("stream-" + std::to_string(s));
    }
    int64_t id = 0;
    for (int64_t s = 0; s < kStreams; ++s) {
      for (int64_t q = 0; q < 2; ++q, ++id) {
        add_query(s, "q" + std::to_string(id),
                  patterns[static_cast<size_t>((s + q) % 4)],
                  Eps(q == 0 ? 0.75 : 3.0));
      }
    }
  };

  // Reference: one engine, removals inline.
  MonitorEngine reference;
  CollectSink reference_sink;
  reference.AddSink(&reference_sink);
  build([&](const std::string& name) { reference.AddStream(name); },
        [&](int64_t s, const std::string& name,
            const std::vector<double>& values,
            const core::SpringOptions& options) {
          ASSERT_TRUE(reference.AddQuery(s, name, values, options).ok());
        });
  std::vector<int64_t> reference_flushed;
  {
    size_t next_removal = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      while (next_removal < removals.size() &&
             removals[next_removal].first == static_cast<int64_t>(i)) {
        util::StatusOr<int64_t> flushed =
            reference.RemoveQuery(removals[next_removal].second);
        ASSERT_TRUE(flushed.ok());
        reference_flushed.push_back(*flushed);
        ++next_removal;
      }
      ASSERT_TRUE(reference.Push(ops[i].first, ops[i].second).ok());
    }
  }

  ShardedMonitorOptions options;
  options.num_workers = GetParam();
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  build([&](const std::string& name) { monitor.AddStream(name); },
        [&](int64_t s, const std::string& name,
            const std::vector<double>& values,
            const core::SpringOptions& opts) {
          ASSERT_TRUE(monitor.AddQuery(s, name, values, opts).ok());
        });
  monitor.Start();
  std::vector<int64_t> sharded_flushed;
  {
    size_t next_removal = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      while (next_removal < removals.size() &&
             removals[next_removal].first == static_cast<int64_t>(i)) {
        util::StatusOr<int64_t> flushed =
            monitor.RemoveQuery(removals[next_removal].second);
        ASSERT_TRUE(flushed.ok());
        sharded_flushed.push_back(*flushed);
        ++next_removal;
      }
      ASSERT_TRUE(monitor.Push(ops[i].first, ops[i].second).ok());
    }
  }
  monitor.Drain();
  monitor.Stop();

  EXPECT_EQ(sharded_flushed, reference_flushed);
  // The reference dispatches immediately; the sharded monitor delivers at
  // barriers in (seq, query id) order. Removal flushes must land in the
  // same relative position in both.
  ASSERT_EQ(sink.entries().size(), reference_sink.entries().size());
  for (size_t i = 0; i < sink.entries().size(); ++i) {
    EXPECT_EQ(sink.entries()[i].origin.stream_name,
              reference_sink.entries()[i].origin.stream_name)
        << i;
    EXPECT_EQ(sink.entries()[i].origin.query_name,
              reference_sink.entries()[i].origin.query_name)
        << i;
    EXPECT_EQ(sink.entries()[i].match.start,
              reference_sink.entries()[i].match.start)
        << i;
    EXPECT_EQ(sink.entries()[i].match.end,
              reference_sink.entries()[i].match.end)
        << i;
    EXPECT_EQ(sink.entries()[i].match.distance,
              reference_sink.entries()[i].match.distance)
        << i;
    EXPECT_EQ(sink.entries()[i].match.report_time,
              reference_sink.entries()[i].match.report_time)
        << i;
  }
}

TEST_P(ShardedRemoveTest, AdminErrorsAndListQueries) {
  ShardedMonitorOptions options;
  options.num_workers = GetParam();
  ShardedMonitor monitor(options);
  const int64_t s0 = monitor.AddStream("alpha");
  const int64_t s1 = monitor.AddStream("beta");
  const int64_t q0 = *monitor.AddQuery(s0, "q0", {1.0, 2.0}, Eps(0.5));
  const int64_t q1 = *monitor.AddQuery(s1, "q1", {2.0}, Eps(0.5));
  monitor.Start();

  EXPECT_EQ(monitor.RemoveQuery(-3).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(monitor.RemoveQuery(17).status().code(),
            util::StatusCode::kNotFound);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(monitor.Push(s0, 9.0).ok());
    ASSERT_TRUE(monitor.Push(s1, 9.0).ok());
  }
  ASSERT_TRUE(monitor.RemoveQuery(q0).ok());
  EXPECT_EQ(monitor.RemoveQuery(q0).status().code(),
            util::StatusCode::kNotFound);

  const std::vector<ShardedMonitor::QueryListEntry> live =
      monitor.ListQueries();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].query_id, q1);
  EXPECT_EQ(live[0].name, "q1");
  EXPECT_EQ(live[0].stream_name, "beta");
  EXPECT_EQ(live[0].ticks, 10);

  // Removed ids keep their stats; the stream keeps ingesting.
  EXPECT_EQ(monitor.stats(q0).ticks, 10);
  ASSERT_TRUE(monitor.Push(s0, 1.0).ok());
  monitor.Drain();
  monitor.Stop();

  // Checkpoint after removal restores only the live query.
  const std::vector<uint8_t> snapshot = monitor.SerializeState();
  ShardedMonitor restored(options);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  EXPECT_EQ(restored.num_queries(), 1);
  EXPECT_EQ(restored.SerializeState(), snapshot);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
