#include "ts/binary_io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "util/random.h"

namespace springdtw {
namespace ts {
namespace {

class BinaryIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(BinaryIoTest, SeriesRoundTrip) {
  const std::string path = TempPath("series.sdtw");
  util::Rng rng(1);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.Gaussian();
  values[17] = MissingValue();
  const Series original(values, "sensor-a");

  ASSERT_TRUE(WriteSeriesBinary(path, original).ok());
  const auto loaded = ReadSeriesBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == original);
  EXPECT_EQ(loaded->name(), "sensor-a");
}

TEST_F(BinaryIoTest, EmptySeriesRoundTrip) {
  const std::string path = TempPath("empty.sdtw");
  ASSERT_TRUE(WriteSeriesBinary(path, Series()).ok());
  const auto loaded = ReadSeriesBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(BinaryIoTest, VectorSeriesRoundTrip) {
  const std::string path = TempPath("vector.sdtw");
  util::Rng rng(2);
  VectorSeries original(5, "mocap");
  std::vector<double> row(5);
  for (int t = 0; t < 200; ++t) {
    for (double& v : row) v = rng.Gaussian();
    original.AppendRow(row);
  }
  ASSERT_TRUE(WriteVectorSeriesBinary(path, original).ok());
  const auto loaded = ReadVectorSeriesBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dims(), 5);
  EXPECT_EQ(loaded->size(), 200);
  EXPECT_EQ(loaded->data(), original.data());
  EXPECT_EQ(loaded->name(), "mocap");
}

TEST_F(BinaryIoTest, ScalarFileLoadsAsVectorSeries) {
  const std::string path = TempPath("scalar_as_vector.sdtw");
  ASSERT_TRUE(WriteSeriesBinary(path, Series({1.0, 2.0})).ok());
  const auto loaded = ReadVectorSeriesBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dims(), 1);
  EXPECT_EQ(loaded->size(), 2);
}

TEST_F(BinaryIoTest, VectorFileRejectedByScalarReader) {
  const std::string path = TempPath("vector_as_scalar.sdtw");
  VectorSeries series(2);
  series.AppendUniformRow(1.0);
  ASSERT_TRUE(WriteVectorSeriesBinary(path, series).ok());
  EXPECT_FALSE(ReadSeriesBinary(path).ok());
}

TEST_F(BinaryIoTest, MissingFileIsIoError) {
  const auto loaded = ReadSeriesBinary(TempPath("nope.sdtw"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST_F(BinaryIoTest, WriteToUnwritablePathFailsCleanly) {
  EXPECT_EQ(
      WriteSeriesBinary("/nonexistent-dir/x.sdtw", Series({1.0})).code(),
      util::StatusCode::kIoError);
}

TEST_F(BinaryIoTest, GarbageRejected) {
  const std::string path = TempPath("garbage.sdtw");
  std::ofstream(path) << "this is not a binary series";
  EXPECT_FALSE(ReadSeriesBinary(path).ok());
}

TEST_F(BinaryIoTest, TruncatedPayloadRejected) {
  const std::string path = TempPath("truncated.sdtw");
  ASSERT_TRUE(
      WriteSeriesBinary(path, Series({1.0, 2.0, 3.0, 4.0})).ok());
  // Chop the file mid-payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();
  EXPECT_FALSE(ReadSeriesBinary(path).ok());
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
