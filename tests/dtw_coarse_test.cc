#include "dtw/coarse.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dtw/dtw.h"
#include "util/random.h"

namespace springdtw {
namespace dtw {
namespace {

std::vector<double> RandomSeq(util::Rng& rng, int64_t n) {
  std::vector<double> out(static_cast<size_t>(n));
  double x = 0.0;
  for (double& v : out) {
    x += rng.Gaussian(0.0, 0.4);
    v = x;
  }
  return out;
}

struct CoarseCase {
  int64_t segment_size;
  LocalDistance distance;
};

class CoarseLowerBoundProperty
    : public ::testing::TestWithParam<CoarseCase> {};

TEST_P(CoarseLowerBoundProperty, NeverExceedsExactDtw) {
  util::Rng rng(91);
  const auto [segment_size, distance] = GetParam();
  DtwOptions options;
  options.local_distance = distance;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<double> x = RandomSeq(rng, rng.UniformInt(1, 50));
    const std::vector<double> y = RandomSeq(rng, rng.UniformInt(1, 50));
    const double lb = CoarseDtwLowerBound(x, y, segment_size, distance);
    const double exact = DtwDistance(x, y, options);
    EXPECT_LE(lb, exact + 1e-9)
        << "trial " << trial << " |x|=" << x.size() << " |y|=" << y.size();
    EXPECT_GE(lb, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, CoarseLowerBoundProperty,
    ::testing::Values(CoarseCase{1, LocalDistance::kSquared},
                      CoarseCase{2, LocalDistance::kSquared},
                      CoarseCase{4, LocalDistance::kSquared},
                      CoarseCase{16, LocalDistance::kSquared},
                      CoarseCase{3, LocalDistance::kAbsolute},
                      CoarseCase{8, LocalDistance::kAbsolute}),
    [](const auto& info) {
      return std::string(LocalDistanceName(info.param.distance)) + "_seg" +
             std::to_string(info.param.segment_size);
    });

TEST(CoarseLowerBoundTest, ZeroForIdenticalSequences) {
  util::Rng rng(92);
  const std::vector<double> x = RandomSeq(rng, 40);
  EXPECT_DOUBLE_EQ(CoarseDtwLowerBound(x, x, 5), 0.0);
}

TEST(CoarseLowerBoundTest, PositiveForSeparatedSequences) {
  const std::vector<double> lo(20, 0.0);
  const std::vector<double> hi(20, 5.0);
  // Ranges never overlap: every block costs (5-0)^2.
  EXPECT_GT(CoarseDtwLowerBound(lo, hi, 4), 0.0);
}

TEST(CoarseApproximationTest, ExactAtSegmentSizeOne) {
  util::Rng rng(93);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> x = RandomSeq(rng, rng.UniformInt(2, 25));
    const std::vector<double> y = RandomSeq(rng, rng.UniformInt(2, 25));
    EXPECT_NEAR(CoarseDtwApproximation(x, y, 1), DtwDistance(x, y), 1e-9);
  }
}

TEST(CoarseApproximationTest, RoughlyTracksExactDistance) {
  util::Rng rng(94);
  // Over many pairs, the rank correlation between approximation and exact
  // distance should be strongly positive; test a weak proxy: the pair with
  // much larger exact distance also has the larger approximation.
  const std::vector<double> base = RandomSeq(rng, 64);
  std::vector<double> near = base;
  for (double& v : near) v += rng.Gaussian(0.0, 0.05);
  std::vector<double> far = base;
  for (double& v : far) v += rng.Gaussian(0.0, 2.0) + 5.0;
  EXPECT_LT(CoarseDtwApproximation(base, near, 8),
            CoarseDtwApproximation(base, far, 8));
}

TEST(CoarseNnSearchTest, FindsSameBestAsPlainSearch) {
  util::Rng rng(95);
  const ts::Series query(RandomSeq(rng, 48));
  std::vector<ts::Series> candidates;
  for (int i = 0; i < 60; ++i) {
    candidates.emplace_back(RandomSeq(rng, 48));
  }
  const auto plain = NearestNeighborDtw(candidates, query);
  const auto coarse = NearestNeighborDtwCoarse(candidates, query, 6);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(coarse->best_index, plain->best_index);
  EXPECT_NEAR(coarse->best_distance, plain->best_distance, 1e-9);
}

TEST(CoarseNnSearchTest, CoarseBoundPrunesBeyondKimAndYi) {
  // Impostors share the query's endpoints (0), global min (0), and global
  // max (1), so LB_Kim and LB_Yi cannot see any difference. Their *shape*
  // differs: the query is a segment-aligned square wave whose 8-tick
  // segments are all-0 or all-1, while the impostors spend long stretches
  // at 0.5 — a level no query segment's range contains — which only the
  // segment-range coarse bound detects (every 0.5-segment must pair with
  // a pure-0 or pure-1 query segment at gap 0.5).
  const int64_t n = 64;
  std::vector<double> square(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    square[static_cast<size_t>(i)] = ((i / 8) % 2 == 1) ? 1.0 : 0.0;
  }
  square[static_cast<size_t>(n - 1)] = 0.0;  // Segment 7 is all-0 anyway.
  const ts::Series query(square);

  std::vector<ts::Series> candidates;
  std::vector<double> dup = square;
  dup[20] += 0.01;  // Near-duplicate: tiny best-so-far after candidate 0.
  candidates.emplace_back(dup);
  for (int64_t variant = 0; variant < 20; ++variant) {
    // [0]*8 then 0.5s, one all-1 segment (to match the max), trailing 0s.
    std::vector<double> impostor(static_cast<size_t>(n), 0.5);
    for (int64_t i = 0; i < 8; ++i) impostor[static_cast<size_t>(i)] = 0.0;
    for (int64_t i = 48; i < 56; ++i) {
      impostor[static_cast<size_t>(i)] = 1.0;
    }
    for (int64_t i = 56; i < 64; ++i) {
      impostor[static_cast<size_t>(i)] = 0.0;
    }
    // Tiny per-variant perturbation inside the 0.5 plateau keeps the
    // candidates distinct without moving any segment range materially.
    impostor[static_cast<size_t>(10 + variant)] = 0.5001;
    candidates.emplace_back(impostor);
  }

  const auto result = NearestNeighborDtwCoarse(candidates, query, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 0);
  EXPECT_EQ(result->pruned_by_kim, 0);
  EXPECT_EQ(result->pruned_by_yi, 0);
  EXPECT_GT(result->pruned_by_coarse, 0);
  EXPECT_EQ(result->pruned_by_kim + result->pruned_by_yi +
                result->pruned_by_coarse + result->full_computations,
            static_cast<int64_t>(candidates.size()));
}

TEST(CoarseNnSearchTest, ErrorsOnBadInput) {
  util::Rng rng(97);
  EXPECT_FALSE(
      NearestNeighborDtwCoarse({}, ts::Series(RandomSeq(rng, 4)), 2).ok());
  EXPECT_FALSE(NearestNeighborDtwCoarse({ts::Series(RandomSeq(rng, 4))},
                                        ts::Series(), 2)
                   .ok());
}

}  // namespace
}  // namespace dtw
}  // namespace springdtw
