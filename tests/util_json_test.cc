#include "util/json.h"

#include <string>

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

TEST(JsonTest, ParsesScalarsArraysAndObjects) {
  auto doc = ParseJson(
      "{\"n\":-12.5e1,\"i\":42,\"s\":\"a\\\"b\\\\c\\n\",\"t\":true,"
      "\"f\":false,\"z\":null,\"arr\":[1,2,3],\"obj\":{\"k\":\"v\"}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->is_object());
  EXPECT_EQ(doc->size(), 8u);
  EXPECT_DOUBLE_EQ(doc->NumberOr("n", 0), -125.0);
  EXPECT_EQ(doc->IntOr("i", 0), 42);
  EXPECT_EQ(doc->StringOr("s", ""), "a\"b\\c\n");
  EXPECT_TRUE(doc->BoolOr("t", false));
  EXPECT_FALSE(doc->BoolOr("f", true));
  ASSERT_NE(doc->Find("arr"), nullptr);
  ASSERT_EQ(doc->Find("arr")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->Find("arr")->array()[2].number_value(), 3.0);
  EXPECT_EQ(doc->Find("obj")->StringOr("k", ""), "v");
}

TEST(JsonTest, NullAndMissingFallBack) {
  auto doc = ParseJson("{\"z\":null}");
  ASSERT_TRUE(doc.ok());
  // The exposition layer writes `null` for non-finite doubles, so numeric
  // lookups treat it as absent, not as an error or zero.
  EXPECT_DOUBLE_EQ(doc->NumberOr("z", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("missing", -2.0), -2.0);
  EXPECT_EQ(doc->StringOr("z", "fb"), "fb");
  EXPECT_EQ(doc->Find("missing"), nullptr);
  // Wrong-kind lookups also fall back.
  auto s = ParseJson("{\"s\":\"text\"}");
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->NumberOr("s", 7.0), 7.0);
}

TEST(JsonTest, DuplicateKeysResolveToLast) {
  auto doc = ParseJson("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->IntOr("k", 0), 2);
  EXPECT_EQ(doc->members().size(), 2u);  // Document order retained.
}

TEST(JsonTest, UnicodeEscapes) {
  auto doc = ParseJson("{\"s\":\"\\u0041\\u00e9\"}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->StringOr("s", ""), "A\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // Empty input.
      "{",           // Unterminated object.
      "[1,2",        // Unterminated array.
      "{\"k\":}",    // Missing value.
      "{k:1}",       // Unquoted key.
      "[1,]",        // Trailing comma.
      "\"\\x\"",     // Bad escape.
      "{} trailing"  // Garbage after the document.
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << text;
  }
}

TEST(JsonTest, ErrorCarriesByteOffset) {
  auto doc = ParseJson("[1, !]");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("4"), std::string::npos)
      << doc.status().ToString();
}

}  // namespace
}  // namespace util
}  // namespace springdtw
