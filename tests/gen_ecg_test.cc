#include "gen/ecg.h"

#include <gtest/gtest.h>

#include "core/subsequence_scan.h"
#include "dtw/dtw.h"
#include "eval/detection.h"

namespace springdtw {
namespace gen {
namespace {

TEST(EcgTest, ShapeAndDeterminism) {
  EcgOptions options;
  options.length = 8000;
  const EcgData a = GenerateEcg(options);
  EXPECT_EQ(a.stream.size(), 8000);
  EXPECT_GT(a.normal_beat.size(), 20);
  EXPECT_EQ(a.normal_beat.size(), a.anomalous_beat.size());
  const EcgData b = GenerateEcg(options);
  EXPECT_TRUE(a.stream == b.stream);
}

TEST(EcgTest, AnomaliesAreInBoundsAndLabeled) {
  EcgOptions options;
  options.length = 20000;
  options.num_anomalies = 4;
  const EcgData data = GenerateEcg(options);
  EXPECT_GE(data.anomalies.size(), 3u);  // One may fall off the end.
  for (const PlantedEvent& e : data.anomalies) {
    EXPECT_GE(e.start, 0);
    EXPECT_LT(e.end(), options.length);
    EXPECT_EQ(e.label, "ectopic");
  }
}

TEST(EcgTest, RPeaksDominateTheSignal) {
  EcgOptions options;
  options.length = 10000;
  const EcgData data = GenerateEcg(options);
  // R spikes reach a large fraction of the configured amplitude (the
  // overlapping Q/S dips subtract a bit from the discrete peak).
  EXPECT_GT(data.stream.Max(), 0.7 * options.r_amplitude);
  EXPECT_GT(data.normal_beat.Max(), 0.7 * options.r_amplitude);
}

TEST(EcgTest, NormalAndEctopicBeatsAreDistantUnderDtw) {
  EcgOptions options;
  const EcgData data = GenerateEcg(options);
  const double cross = dtw::DtwDistance(data.normal_beat.values(),
                                        data.anomalous_beat.values());
  // Self-distance is 0; the cross distance must dwarf the per-beat noise
  // energy (~ noise_sigma^2 * period = 0.088 at the defaults) so the two
  // templates are separable at any sane epsilon.
  const double noise_energy = options.noise_sigma * options.noise_sigma *
                              options.beat_period;
  EXPECT_GT(cross, 20.0 * noise_energy);
  EXPECT_GT(cross, 1.0);
}

TEST(EcgTest, SpringSpotsEveryPlantedEctopicBeat) {
  EcgOptions options;
  options.length = 20000;
  options.num_anomalies = 3;
  const EcgData data = GenerateEcg(options);
  ASSERT_GE(data.anomalies.size(), 2u);

  std::vector<std::pair<int64_t, int64_t>> regions;
  for (const PlantedEvent& e : data.anomalies) {
    regions.emplace_back(e.start, e.end());
  }
  const double epsilon =
      core::CalibrateEpsilon(data.stream, data.anomalous_beat, regions, 1.2);
  const std::vector<core::Match> alarms =
      core::DisjointMatches(data.stream, data.anomalous_beat, epsilon);

  const eval::DetectionScore score =
      eval::ScoreMatches(data.anomalies, alarms);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  // Normal beats must not flood the alarm list.
  EXPECT_LE(score.false_positives, 2);
}

TEST(EcgTest, NormalBeatMatchesDespiteRateDrift) {
  EcgOptions options;
  options.length = 10000;
  options.num_anomalies = 0;
  const EcgData data = GenerateEcg(options);
  // The best normal-beat match is near-zero despite no beat in the stream
  // having exactly the nominal period.
  const core::Match best =
      core::BestSubsequence(data.stream, data.normal_beat);
  const double beat_energy =
      options.beat_period * 0.05;  // Generous noise allowance.
  EXPECT_LT(best.distance, beat_energy);
}

}  // namespace
}  // namespace gen
}  // namespace springdtw
