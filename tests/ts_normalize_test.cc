#include "ts/normalize.h"

#include <cmath>

#include <gtest/gtest.h>

namespace springdtw {
namespace ts {
namespace {

TEST(ZNormalizeTest, ProducesZeroMeanUnitVariance) {
  Series s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  Series z = ZNormalize(s);
  EXPECT_NEAR(z.Mean(), 0.0, 1e-12);
  EXPECT_NEAR(z.Stddev(), 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantSeriesIsOnlyShifted) {
  Series s({3.0, 3.0, 3.0});
  Series z = ZNormalize(s);
  for (int64_t i = 0; i < z.size(); ++i) EXPECT_DOUBLE_EQ(z[i], 0.0);
}

TEST(ZNormalizeTest, MissingValuesPassThrough) {
  Series s({1.0, MissingValue(), 3.0});
  Series z = ZNormalize(s);
  EXPECT_TRUE(IsMissing(z[1]));
  EXPECT_EQ(z.CountMissing(), 1);
}

TEST(TransformTest, SameTransformForQueryAndStream) {
  // The transform estimated on the stream applies verbatim to the query so
  // relative geometry is preserved.
  Series stream({0.0, 10.0});
  AffineTransform t = MinMaxTransform(stream, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(t.Apply(5.0), 0.5);
  EXPECT_DOUBLE_EQ(t.Apply(10.0), 1.0);
}

TEST(TransformTest, InvertRoundTrips) {
  Series s({1.0, 5.0, 9.0});
  AffineTransform t = ZNormTransform(s);
  EXPECT_NEAR(t.Invert(t.Apply(3.7)), 3.7, 1e-12);
}

TEST(MinMaxTransformTest, MapsRangeToTarget) {
  Series s({-5.0, 0.0, 5.0});
  Series scaled = Apply(MinMaxTransform(s, 0.0, 2.0), s);
  EXPECT_DOUBLE_EQ(scaled.Min(), 0.0);
  EXPECT_DOUBLE_EQ(scaled.Max(), 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 1.0);
}

TEST(MinMaxTransformTest, ConstantSeries) {
  Series s({4.0, 4.0});
  Series scaled = Apply(MinMaxTransform(s, 1.0, 2.0), s);
  EXPECT_DOUBLE_EQ(scaled[0], 1.0);
}

TEST(ApplyTest, PreservesNameAndLength) {
  Series s({1.0, 2.0}, "sensor");
  Series out = Apply(AffineTransform{2.0, 1.0}, s);
  EXPECT_EQ(out.name(), "sensor");
  EXPECT_EQ(out.size(), 2);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
