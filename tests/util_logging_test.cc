#include "util/logging.h"

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

TEST(LoggingTest, SeverityNamesAreStable) {
  EXPECT_STREQ(LogSeverityName(LogSeverity::kDebug), "DEBUG");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kInfo), "INFO");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kWarning), "WARNING");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kError), "ERROR");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kFatal), "FATAL");
}

TEST(LoggingTest, MinSeverityIsAdjustable) {
  const LogSeverity previous = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  // Below-threshold messages are swallowed (no observable crash/output
  // contract to assert beyond not aborting).
  SPRINGDTW_LOG(Info) << "should be filtered";
  SetMinLogSeverity(previous);
}

TEST(LoggingTest, StreamingFormatsArbitraryTypes) {
  // Must compile and not abort for non-fatal severities.
  SPRINGDTW_LOG(Warning) << "value=" << 42 << " pi=" << 3.14 << " flag="
                         << true;
}

TEST(LoggingTest, CheckPassesSilently) {
  SPRINGDTW_CHECK(1 + 1 == 2) << "never printed";
  SPRINGDTW_CHECK_EQ(4, 4);
  SPRINGDTW_CHECK_NE(4, 5);
  SPRINGDTW_CHECK_LT(1, 2);
  SPRINGDTW_CHECK_LE(2, 2);
  SPRINGDTW_CHECK_GT(3, 2);
  SPRINGDTW_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SPRINGDTW_CHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(SPRINGDTW_CHECK_EQ(1, 2), "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(SPRINGDTW_LOG(Fatal) << "fatal message", "fatal message");
}

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH(SPRINGDTW_DCHECK(false), "Check failed");
}
#else
TEST(LoggingTest, DcheckCompiledOutInReleaseBuilds) {
  SPRINGDTW_DCHECK(false) << "not evaluated";  // Must not abort.
}
#endif

}  // namespace
}  // namespace util
}  // namespace springdtw
