// SpscQueue: FIFO integrity, full/empty edge behavior, and a
// producer/consumer stress transfer. Runs under the tsan preset like every
// test; the stress case is the one that matters there.
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "monitor/spsc_queue.h"

namespace springdtw {
namespace monitor {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q2(2);
  EXPECT_EQ(q2.capacity(), 2u);
  SpscQueue<int> q5(5);
  EXPECT_EQ(q5.capacity(), 8u);
  SpscQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(SpscQueueTest, FifoSingleThreaded) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) {
    int item = i;
    EXPECT_TRUE(queue.TryPush(item));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // Untouched on failure.
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(SpscQueueTest, WrapAroundKeepsOrder) {
  SpscQueue<int64_t> queue(4);
  int64_t next_push = 0;
  int64_t next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    int64_t item = next_push;
    while (queue.TryPush(item)) {
      item = ++next_push;
    }
    int64_t out = -1;
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, next_pop++);
  }
}

TEST(SpscQueueTest, StressTransferPreservesOrderAndSum) {
  constexpr int64_t kItems = 200000;
  SpscQueue<int64_t> queue(64);  // Small: forces both sides to block.

  int64_t received_sum = 0;
  int64_t received_count = 0;
  bool ordered = true;
  std::thread consumer([&] {
    int64_t expected = 0;
    int64_t item = -1;
    while (expected < kItems) {
      queue.Pop(&item);
      if (item != expected) ordered = false;
      received_sum += item;
      ++received_count;
      ++expected;
    }
  });

  for (int64_t i = 0; i < kItems; ++i) {
    queue.Push(i);
  }
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(received_count, kItems);
  EXPECT_EQ(received_sum, kItems * (kItems - 1) / 2);
  EXPECT_EQ(queue.ApproxSize(), 0u);
}

TEST(SpscQueueTest, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> queue(4);
  auto item = std::make_unique<int>(42);
  EXPECT_TRUE(queue.TryPush(item));
  EXPECT_EQ(item, nullptr);  // Moved from on success.
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
