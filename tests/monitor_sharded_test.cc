// ShardedMonitor: the scale-out shell must be *observably identical* to a
// single MonitorEngine fed the same interleaved workload — same matches,
// same deterministic order for any worker count (1, 2, 8), including
// across a mid-stream checkpoint restored into a different worker count.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "util/random.h"

namespace springdtw {
namespace monitor {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

struct Workload {
  struct Stream {
    std::string name;
    bool repair_missing = true;
  };
  struct Query {
    int64_t stream_id = 0;
    std::string name;
    std::vector<double> values;
    core::SpringOptions options;
  };
  std::vector<Stream> streams;
  std::vector<Query> queries;
  /// Interleaved (stream, value) pushes.
  std::vector<std::pair<int64_t, double>> ops;
};

Workload MakeWorkload(uint64_t seed, size_t num_ops) {
  util::Rng rng(seed);
  Workload w;
  for (int s = 0; s < 6; ++s) {
    // All streams repair; NaN errors on repair-off streams are covered
    // separately.
    w.streams.push_back({"stream-" + std::to_string(s), true});
  }
  const std::vector<std::vector<double>> patterns = {
      {1.0, 2.0, 3.0}, {3.0, 1.0}, {2.0, 2.0, 2.0}, {0.0, 4.0}};
  for (int64_t s = 0; s < 6; ++s) {
    const int queries_here = 1 + static_cast<int>(s % 3);
    for (int q = 0; q < queries_here; ++q) {
      Workload::Query query;
      query.stream_id = s;
      query.name = "q" + std::to_string(s) + "-" + std::to_string(q);
      query.values = patterns[static_cast<size_t>((s + q) % 4)];
      query.options.epsilon = (q % 2 == 0) ? 0.5 : 6.0;
      if (q == 2) query.options.max_match_length = 5;
      w.queries.push_back(std::move(query));
    }
  }
  w.ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    const int64_t stream = rng.UniformInt(0, 5);
    double value = static_cast<double>(rng.UniformInt(0, 4));
    if (rng.Bernoulli(0.04)) value = kNaN;
    w.ops.emplace_back(stream, value);
  }
  return w;
}

/// Single-engine reference: same topology, same interleaved pushes.
std::vector<CollectSink::Entry> RunReference(const Workload& w) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  for (const auto& stream : w.streams) {
    engine.AddStream(stream.name, stream.repair_missing);
  }
  for (const auto& query : w.queries) {
    EXPECT_TRUE(engine
                    .AddQuery(query.stream_id, query.name, query.values,
                              query.options)
                    .ok());
  }
  for (const auto& [stream, value] : w.ops) {
    EXPECT_TRUE(engine.Push(stream, value).ok());
  }
  engine.FlushAll();
  return sink.entries();
}

void BuildTopology(const Workload& w, ShardedMonitor* monitor) {
  for (const auto& stream : w.streams) {
    monitor->AddStream(stream.name, stream.repair_missing);
  }
  for (const auto& query : w.queries) {
    ASSERT_TRUE(monitor
                    ->AddQuery(query.stream_id, query.name, query.values,
                               query.options)
                    .ok());
  }
}

void ExpectSameEntries(const std::vector<CollectSink::Entry>& got,
                       const std::vector<CollectSink::Entry>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].origin.stream_id, expected[i].origin.stream_id) << i;
    EXPECT_EQ(got[i].origin.query_id, expected[i].origin.query_id) << i;
    EXPECT_EQ(got[i].origin.stream_name, expected[i].origin.stream_name);
    EXPECT_EQ(got[i].origin.query_name, expected[i].origin.query_name);
    EXPECT_EQ(got[i].match.start, expected[i].match.start) << i;
    EXPECT_EQ(got[i].match.end, expected[i].match.end) << i;
    EXPECT_EQ(got[i].match.distance, expected[i].match.distance) << i;
    EXPECT_EQ(got[i].match.report_time, expected[i].match.report_time) << i;
  }
}

class ShardedMonitorTest : public ::testing::TestWithParam<int64_t> {};

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ShardedMonitorTest,
                         ::testing::Values<int64_t>(1, 2, 8));

TEST_P(ShardedMonitorTest, MatchesSingleEngineByteForByte) {
  const Workload w = MakeWorkload(1234, 4000);
  const std::vector<CollectSink::Entry> expected = RunReference(w);
  ASSERT_FALSE(expected.empty());

  ShardedMonitorOptions options;
  options.num_workers = GetParam();
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  BuildTopology(w, &monitor);
  monitor.Start();
  for (const auto& [stream, value] : w.ops) {
    ASSERT_TRUE(monitor.Push(stream, value).ok());
  }
  monitor.FlushAll();
  monitor.Stop();
  ExpectSameEntries(sink.entries(), expected);

  // Monitor-level stats mirror the reference engine's.
  MonitorEngine reference;
  for (const auto& stream : w.streams) {
    reference.AddStream(stream.name, stream.repair_missing);
  }
  for (const auto& query : w.queries) {
    ASSERT_TRUE(reference
                    .AddQuery(query.stream_id, query.name, query.values,
                              query.options)
                    .ok());
  }
  for (const auto& [stream, value] : w.ops) {
    ASSERT_TRUE(reference.Push(stream, value).ok());
  }
  reference.FlushAll();
  for (int64_t q = 0; q < monitor.num_queries(); ++q) {
    EXPECT_EQ(monitor.stats(q).ticks, reference.stats(q).ticks) << q;
    EXPECT_EQ(monitor.stats(q).matches, reference.stats(q).matches) << q;
  }
}

TEST_P(ShardedMonitorTest, PushBatchMatchesReference) {
  const Workload w = MakeWorkload(99, 3000);
  const std::vector<CollectSink::Entry> expected = RunReference(w);

  ShardedMonitorOptions options;
  options.num_workers = GetParam();
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  BuildTopology(w, &monitor);
  monitor.Start();
  // Group consecutive same-stream ops into batch pushes.
  std::vector<double> run;
  size_t i = 0;
  while (i < w.ops.size()) {
    const int64_t stream = w.ops[i].first;
    run.clear();
    while (i < w.ops.size() && w.ops[i].first == stream) {
      run.push_back(w.ops[i].second);
      ++i;
    }
    ASSERT_TRUE(monitor.PushBatch(stream, run).ok());
  }
  monitor.FlushAll();
  monitor.Stop();
  ExpectSameEntries(sink.entries(), expected);
}

TEST_P(ShardedMonitorTest, CheckpointReshardsIntoAnyWorkerCount) {
  const Workload w = MakeWorkload(77, 3000);
  const std::vector<CollectSink::Entry> expected = RunReference(w);
  const size_t split = w.ops.size() / 2 + 13;

  // First half at 2 workers.
  ShardedMonitorOptions first_options;
  first_options.num_workers = 2;
  ShardedMonitor first(first_options);
  CollectSink first_sink;
  first.AddSink(&first_sink);
  BuildTopology(w, &first);
  first.Start();
  for (size_t i = 0; i < split; ++i) {
    ASSERT_TRUE(first.Push(w.ops[i].first, w.ops[i].second).ok());
  }
  const std::vector<uint8_t> checkpoint = first.SerializeState();
  first.Stop();

  // Second half at the parameterized worker count, restored from the
  // 2-worker checkpoint.
  ShardedMonitorOptions second_options;
  second_options.num_workers = GetParam();
  ShardedMonitor second(second_options);
  CollectSink second_sink;
  second.AddSink(&second_sink);
  ASSERT_TRUE(second.RestoreState(checkpoint).ok());
  ASSERT_EQ(second.num_streams(), static_cast<int64_t>(w.streams.size()));
  ASSERT_EQ(second.num_queries(), static_cast<int64_t>(w.queries.size()));
  second.Start();
  for (size_t i = split; i < w.ops.size(); ++i) {
    ASSERT_TRUE(second.Push(w.ops[i].first, w.ops[i].second).ok());
  }
  second.FlushAll();

  // first-half + second-half deliveries == the uninterrupted reference.
  std::vector<CollectSink::Entry> combined = first_sink.entries();
  combined.insert(combined.end(), second_sink.entries().begin(),
                  second_sink.entries().end());
  ExpectSameEntries(combined, expected);

  // A checkpoint's bytes are worker-count independent: re-serializing the
  // restored monitor reproduces the original checkpoint exactly.
  ShardedMonitorOptions third_options;
  third_options.num_workers = GetParam();
  ShardedMonitor third(third_options);
  ASSERT_TRUE(third.RestoreState(checkpoint).ok());
  EXPECT_EQ(third.SerializeState(), checkpoint);
  second.Stop();
}

TEST(ShardedMonitorTest, MergedMetricsSumAcrossShards) {
  const Workload w = MakeWorkload(5, 2000);
  ShardedMonitorOptions options;
  options.num_workers = 4;
  options.collect_metrics = true;
  ShardedMonitor monitor(options);
  BuildTopology(w, &monitor);
  monitor.Start();
  for (const auto& [stream, value] : w.ops) {
    ASSERT_TRUE(monitor.Push(stream, value).ok());
  }
  monitor.Drain();
  const obs::MetricsSnapshot merged = monitor.MergedMetricsSnapshot();
  monitor.Stop();

  const obs::FamilySnapshot* pushes = merged.Find("spring_pushes_total");
  ASSERT_NE(pushes, nullptr);
  int64_t total_pushes = 0;
  for (const auto& series : pushes->series) {
    total_pushes += series.counter_value;
  }
  EXPECT_EQ(total_pushes, static_cast<int64_t>(w.ops.size()));

  const obs::FamilySnapshot* streams_gauge = merged.Find("spring_streams");
  ASSERT_NE(streams_gauge, nullptr);
  ASSERT_EQ(streams_gauge->series.size(), 1u);
  // Gauges sum across shards: every stream lives on exactly one shard.
  EXPECT_EQ(streams_gauge->series[0].gauge_value,
            static_cast<double>(w.streams.size()));
}

TEST(ShardedMonitorTest, ErrorsAndLifecycleEdges) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  ShardedMonitor monitor(options);
  const int64_t strict = monitor.AddStream("strict", /*repair=*/false);
  ASSERT_TRUE(
      monitor.AddQuery(strict, "q", {1.0, 2.0}, core::SpringOptions{}).ok());
  EXPECT_FALSE(monitor.AddQuery(99, "bad", {1.0}, core::SpringOptions{}).ok());
  EXPECT_FALSE(monitor.AddQuery(strict, "empty", {}, core::SpringOptions{})
                   .ok());

  monitor.Start();
  EXPECT_FALSE(monitor.Push(99, 1.0).ok());
  EXPECT_FALSE(monitor.Push(strict, kNaN).ok());
  EXPECT_TRUE(monitor.Push(strict, 1.0).ok());

  // Stop is idempotent and restart works.
  monitor.Stop();
  monitor.Stop();
  monitor.Start();
  EXPECT_TRUE(monitor.Push(strict, 2.0).ok());
  monitor.FlushAll();
  monitor.Stop();

  EXPECT_GE(monitor.Footprint().TotalBytes(), 0);
  EXPECT_EQ(monitor.stats(0).ticks, 2);
}

TEST(ShardedMonitorTest, TopologyGrowsWhileRunning) {
  ShardedMonitorOptions options;
  options.num_workers = 3;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t early = monitor.AddStream("early");
  ASSERT_TRUE(monitor
                  .AddQuery(early, "q0", {1.0, 2.0, 3.0},
                            core::SpringOptions{.epsilon = 0.5})
                  .ok());
  monitor.Start();
  for (const double x : {9.0, 1.0, 2.0, 3.0, 9.0}) {
    ASSERT_TRUE(monitor.Push(early, x).ok());
  }
  // Mid-flight topology growth (drains internally).
  const int64_t late = monitor.AddStream("late");
  ASSERT_TRUE(monitor
                  .AddQuery(late, "q1", {1.0, 2.0, 3.0},
                            core::SpringOptions{.epsilon = 0.5})
                  .ok());
  for (const double x : {9.0, 1.0, 2.0, 3.0, 9.0}) {
    ASSERT_TRUE(monitor.Push(late, x).ok());
  }
  monitor.FlushAll();
  monitor.Stop();
  EXPECT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(monitor.stats(0).matches, 1);
  EXPECT_EQ(monitor.stats(1).matches, 1);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
