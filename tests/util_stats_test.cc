#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace springdtw {
namespace util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequentialFeed) {
  Rng rng(99);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.Add(5.0);
  a.Merge(b);  // Empty += non-empty.
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  RunningStats c;
  a.Merge(c);  // Non-empty += empty.
  EXPECT_EQ(a.count(), 1);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
}

TEST(QuantileSketchTest, ExactQuantiles) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.Add(static_cast<double>(i));
  EXPECT_EQ(q.count(), 100);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 100.0);
  EXPECT_NEAR(q.Median(), 50.0, 1.0);
  EXPECT_NEAR(q.Quantile(0.9), 90.0, 1.0);
}

TEST(QuantileSketchTest, EmptyReturnsZero) {
  QuantileSketch q;
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, AddAfterQueryStillSorted) {
  QuantileSketch q;
  q.Add(3.0);
  q.Add(1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  q.Add(0.5);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 0.5);
}

TEST(LogHistogramTest, CountsAndQuantiles) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.Add(100.0);  // Bucket edge 128.
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 128.0);
  h.Add(1e9);
  EXPECT_GT(h.Quantile(1.0), 1e8);
}

TEST(LogHistogramTest, QuantileOrderingIsMonotone) {
  LogHistogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.Add(std::exp(rng.Uniform(0.0, 20.0)));
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(1.0));
}

TEST(LogHistogramTest, SummaryMentionsCount) {
  LogHistogram h;
  h.Add(5.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(QuantileSketchTest, ResetClearsSamples) {
  QuantileSketch q;
  q.Add(1.0);
  q.Add(2.0);
  q.Reset();
  EXPECT_EQ(q.count(), 0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 0.0);
  q.Add(7.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 7.0);
}

TEST(QuantileSketchTest, MergeMatchesSequentialFeed) {
  Rng rng(11);
  QuantileSketch all;
  QuantileSketch a;
  QuantileSketch b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.0, 100.0);
    all.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  // Query `a` first so merge must re-sort the combined samples.
  (void)a.Quantile(0.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q)) << q;
  }
}

TEST(QuantileSketchTest, MergeEmptySides) {
  QuantileSketch a;
  QuantileSketch b;
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  QuantileSketch c;
  a.Merge(c);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 3.0);
}

TEST(LogHistogramTest, MergeMatchesSequentialFeed) {
  Rng rng(23);
  LogHistogram all;
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::exp(rng.Uniform(0.0, 15.0));
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q)) << q;
  }
}

TEST(LogHistogramTest, SerializeRoundTrips) {
  LogHistogram h;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) h.Add(std::exp(rng.Uniform(0.0, 10.0)));

  ByteWriter writer;
  h.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  LogHistogram restored;
  ASSERT_TRUE(restored.DeserializeFrom(&reader));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.count(), h.count());
  for (const double q : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(restored.Quantile(q), h.Quantile(q)) << q;
  }
}

TEST(LogHistogramTest, DeserializeRejectsCorruptBuckets) {
  // count=1 but bucket totals sum to 0 -> inconsistent.
  ByteWriter writer;
  writer.WriteI64(1);       // count_
  writer.WriteDouble(0.0);  // max_seen_
  writer.WriteInt64Vector(std::vector<int64_t>(LogHistogram::kNumBuckets, 0));
  ByteReader reader(writer.buffer());
  LogHistogram h;
  EXPECT_FALSE(h.DeserializeFrom(&reader));
}

TEST(LogHistogramTest, DeserializeRejectsTruncation) {
  LogHistogram h;
  h.Add(2.0);
  ByteWriter writer;
  h.SerializeTo(&writer);
  std::vector<uint8_t> bytes = writer.buffer();
  bytes.resize(bytes.size() / 2);
  ByteReader reader(bytes);
  LogHistogram restored;
  EXPECT_FALSE(restored.DeserializeFrom(&reader));
}

}  // namespace
}  // namespace util
}  // namespace springdtw
