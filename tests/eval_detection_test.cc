#include "eval/detection.h"

#include <vector>

#include <gtest/gtest.h>

namespace springdtw {
namespace eval {
namespace {

gen::PlantedEvent Event(int64_t start, int64_t length,
                        const std::string& label = "e") {
  return gen::PlantedEvent{start, length, label};
}

core::Match MatchAt(int64_t start, int64_t end, int64_t report_time = -1) {
  core::Match m;
  m.start = start;
  m.end = end;
  m.report_time = report_time < 0 ? end : report_time;
  return m;
}

TEST(IntervalIouTest, Basics) {
  EXPECT_DOUBLE_EQ(IntervalIou(0, 9, 0, 9), 1.0);
  EXPECT_DOUBLE_EQ(IntervalIou(0, 9, 10, 19), 0.0);
  EXPECT_DOUBLE_EQ(IntervalIou(0, 9, 5, 14), 5.0 / 15.0);
  EXPECT_DOUBLE_EQ(IntervalIou(0, 19, 5, 9), 5.0 / 20.0);  // Nested.
  EXPECT_DOUBLE_EQ(IntervalIou(3, 3, 3, 3), 1.0);          // Single ticks.
}

TEST(ScoreMatchesTest, PerfectDetection) {
  const std::vector<gen::PlantedEvent> events{Event(10, 20), Event(50, 10)};
  const std::vector<core::Match> matches{MatchAt(10, 29, 35),
                                         MatchAt(50, 59, 62)};
  const DetectionScore score = ScoreMatches(events, matches);
  EXPECT_EQ(score.true_positives, 2);
  EXPECT_EQ(score.false_positives, 0);
  EXPECT_EQ(score.false_negatives, 0);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  EXPECT_DOUBLE_EQ(score.f1(), 1.0);
  EXPECT_DOUBLE_EQ(score.iou.mean(), 1.0);
  EXPECT_DOUBLE_EQ(score.output_delay.mean(), (6.0 + 3.0) / 2.0);
}

TEST(ScoreMatchesTest, MissAndFalseAlarm) {
  const std::vector<gen::PlantedEvent> events{Event(10, 20), Event(80, 10)};
  const std::vector<core::Match> matches{MatchAt(12, 27),  // Hits event 1.
                                         MatchAt(200, 210)};  // Spurious.
  const DetectionScore score = ScoreMatches(events, matches);
  EXPECT_EQ(score.true_positives, 1);
  EXPECT_EQ(score.false_positives, 1);
  EXPECT_EQ(score.false_negatives, 1);
  EXPECT_DOUBLE_EQ(score.precision(), 0.5);
  EXPECT_DOUBLE_EQ(score.recall(), 0.5);
}

TEST(ScoreMatchesTest, OneToOneAssignment) {
  // Two events, one match overlapping both: only one may claim it.
  const std::vector<gen::PlantedEvent> events{Event(0, 10), Event(8, 10)};
  const std::vector<core::Match> matches{MatchAt(0, 17)};
  const DetectionScore score = ScoreMatches(events, matches);
  EXPECT_EQ(score.true_positives, 1);
  EXPECT_EQ(score.false_negatives, 1);
  EXPECT_EQ(score.false_positives, 0);
}

TEST(ScoreMatchesTest, GreedyPicksBestIouPairing) {
  // Match A fits event 1 tightly; match B overlaps both loosely. The
  // greedy assignment must give A to event 1 and B to event 2.
  const std::vector<gen::PlantedEvent> events{Event(0, 10), Event(20, 10)};
  const std::vector<core::Match> matches{MatchAt(0, 9),
                                         MatchAt(5, 29)};
  const DetectionScore score = ScoreMatches(events, matches);
  EXPECT_EQ(score.true_positives, 2);
  EXPECT_EQ(score.false_positives, 0);
  EXPECT_EQ(score.false_negatives, 0);
}

TEST(ScoreMatchesTest, MinIouThreshold) {
  const std::vector<gen::PlantedEvent> events{Event(0, 100)};
  const std::vector<core::Match> matches{MatchAt(90, 109)};  // IoU small.
  DetectionOptions strict;
  strict.min_iou = 0.5;
  const DetectionScore score = ScoreMatches(events, matches, strict);
  EXPECT_EQ(score.true_positives, 0);
  EXPECT_EQ(score.false_negatives, 1);
  EXPECT_EQ(score.false_positives, 1);
}

TEST(ScoreMatchesTest, LabelFilterScopesEvents) {
  const std::vector<gen::PlantedEvent> events{Event(0, 10, "walk"),
                                              Event(20, 10, "jump")};
  const std::vector<core::Match> matches{MatchAt(0, 9)};
  DetectionOptions options;
  options.event_label_filter = "walk";
  DetectionScore score = ScoreMatches(events, matches, options);
  EXPECT_EQ(score.true_positives, 1);
  EXPECT_EQ(score.false_negatives, 0);  // The jump event is out of scope.

  options.event_label_filter = "jump";
  score = ScoreMatches(events, matches, options);
  EXPECT_EQ(score.true_positives, 0);
  EXPECT_EQ(score.false_negatives, 1);
  EXPECT_EQ(score.false_positives, 1);  // The walk match is unclaimed.
}

TEST(ScoreMatchesTest, EmptyInputs) {
  const DetectionScore none = ScoreMatches({}, {});
  EXPECT_EQ(none.true_positives, 0);
  EXPECT_DOUBLE_EQ(none.precision(), 0.0);
  EXPECT_DOUBLE_EQ(none.f1(), 0.0);

  const DetectionScore only_matches = ScoreMatches({}, {MatchAt(0, 5)});
  EXPECT_EQ(only_matches.false_positives, 1);

  const DetectionScore only_events = ScoreMatches({Event(0, 5)}, {});
  EXPECT_EQ(only_events.false_negatives, 1);
}

TEST(ScoreMatchesTest, ToStringMentionsEverything) {
  const DetectionScore score =
      ScoreMatches({Event(0, 10)}, {MatchAt(0, 9)});
  const std::string text = score.ToString();
  EXPECT_NE(text.find("P=1.000"), std::string::npos);
  EXPECT_NE(text.find("R=1.000"), std::string::npos);
  EXPECT_NE(text.find("tp=1"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace springdtw
