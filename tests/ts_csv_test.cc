#include "ts/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace springdtw {
namespace ts {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, SeriesRoundTrip) {
  const std::string path = TempPath("series_roundtrip.csv");
  Series original({1.5, -2.25, 1e-10, 123456.789}, "orig");
  ASSERT_TRUE(WriteSeriesCsv(path, original).ok());
  auto loaded = ReadSeriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == original);
}

TEST_F(CsvTest, SeriesRoundTripWithMissing) {
  const std::string path = TempPath("series_missing.csv");
  Series original({1.0, MissingValue(), 3.0});
  ASSERT_TRUE(WriteSeriesCsv(path, original).ok());
  auto loaded = ReadSeriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->CountMissing(), 1);
  EXPECT_TRUE(*loaded == original);
}

TEST_F(CsvTest, SeriesSkipsCommentsAndBlankLines) {
  const std::string path = TempPath("series_comments.csv");
  WriteFile(path, "# header\n\n1.0\n\n2.0\n# trailing\n");
  auto loaded = ReadSeriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2);
}

TEST_F(CsvTest, SeriesRejectsMalformedLine) {
  const std::string path = TempPath("series_bad.csv");
  WriteFile(path, "1.0\nnot_a_number\n");
  auto loaded = ReadSeriesCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos);
}

TEST_F(CsvTest, SeriesMissingFileIsIoError) {
  auto loaded = ReadSeriesCsv(TempPath("does_not_exist.csv"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST_F(CsvTest, VectorSeriesRoundTrip) {
  const std::string path = TempPath("vector_roundtrip.csv");
  VectorSeries original(3);
  original.AppendRow(std::vector<double>{1.0, 2.0, 3.0});
  original.AppendRow(std::vector<double>{-1.5, MissingValue(), 0.25});
  ASSERT_TRUE(WriteVectorSeriesCsv(path, original).ok());
  auto loaded = ReadVectorSeriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dims(), 3);
  EXPECT_EQ(loaded->size(), 2);
  EXPECT_DOUBLE_EQ(loaded->Row(1)[0], -1.5);
  EXPECT_TRUE(IsMissing(loaded->Row(1)[1]));
  EXPECT_DOUBLE_EQ(loaded->Row(1)[2], 0.25);
}

TEST_F(CsvTest, VectorSeriesEmptyFieldIsMissing) {
  const std::string path = TempPath("vector_empty_field.csv");
  WriteFile(path, "1.0,,3.0\n");
  auto loaded = ReadVectorSeriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(IsMissing(loaded->Row(0)[1]));
}

TEST_F(CsvTest, VectorSeriesRaggedRowsRejected) {
  const std::string path = TempPath("vector_ragged.csv");
  WriteFile(path, "1.0,2.0\n1.0,2.0,3.0\n");
  auto loaded = ReadVectorSeriesCsv(path);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(CsvTest, WriteToUnwritablePathFailsCleanly) {
  const Series series({1.0});
  EXPECT_EQ(WriteSeriesCsv("/nonexistent-dir/x.csv", series).code(),
            util::StatusCode::kIoError);
  VectorSeries vseries(1);
  vseries.AppendUniformRow(1.0);
  EXPECT_EQ(
      WriteVectorSeriesCsv("/nonexistent-dir/x.csv", vseries).code(),
      util::StatusCode::kIoError);
}

TEST_F(CsvTest, VectorSeriesNoRowsRejected) {
  const std::string path = TempPath("vector_empty.csv");
  WriteFile(path, "# only a comment\n");
  auto loaded = ReadVectorSeriesCsv(path);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
