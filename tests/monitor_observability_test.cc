#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/engine.h"
#include "monitor/sink.h"
#include "obs/observability.h"
#include "ts/vector_series.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions Options(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

// A stream with two disjoint occurrences of {1,2,3} separated by
// off-pattern values.
std::vector<double> TwoMatchStream() {
  return {9.0, 1.0, 2.0, 3.0, 9.0, 9.0, 1.0, 2.0, 3.0, 9.0, 9.0};
}

int64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                     std::string_view family) {
  const obs::FamilySnapshot* f = snapshot.Find(family);
  if (f == nullptr) return -1;
  int64_t total = 0;
  for (const obs::SeriesSnapshot& s : f->series) total += s.counter_value;
  return total;
}

TEST(MonitorObservabilityTest, CountersMatchQueryStats) {
  obs::Observability observability;
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s0");
  const auto query =
      engine.AddQuery(stream, "pattern", {1.0, 2.0, 3.0}, Options(0.5));
  ASSERT_TRUE(query.ok());

  for (const double x : TwoMatchStream()) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }
  engine.FlushAll();

  const QueryStats& stats = engine.stats(*query);
  const obs::MetricsSnapshot snapshot =
      observability.registry().Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "spring_ticks_total"), stats.ticks);
  EXPECT_EQ(CounterValue(snapshot, "spring_matches_total"), stats.matches);
  EXPECT_EQ(CounterValue(snapshot, "spring_pushes_total"), stats.ticks);
  EXPECT_EQ(stats.matches, 2);
  EXPECT_GE(CounterValue(snapshot, "spring_candidates_opened_total"), 2);
  EXPECT_GE(CounterValue(snapshot, "spring_best_improvements_total"), 1);

  // The per-query series carries stream/query/space labels.
  const obs::FamilySnapshot* matches =
      snapshot.Find("spring_matches_total");
  ASSERT_NE(matches, nullptr);
  ASSERT_EQ(matches->series.size(), 1u);
  const obs::Labels want = {obs::Label{"stream", "s0"},
                            obs::Label{"query", "pattern"},
                            obs::Label{"space", "scalar"}};
  EXPECT_EQ(matches->series[0].labels, want);
}

TEST(MonitorObservabilityTest, ReportDelayHistogramMatchesOutputDelay) {
  obs::Observability observability;
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddStream("s0");
  const auto query =
      engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Options(0.5));
  ASSERT_TRUE(query.ok());
  for (const double x : TwoMatchStream()) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }

  const QueryStats& stats = engine.stats(*query);
  ASSERT_EQ(stats.matches, 2);
  const obs::MetricsSnapshot snapshot =
      observability.registry().Snapshot();
  const obs::FamilySnapshot* family =
      snapshot.Find("spring_report_delay_ticks");
  ASSERT_NE(family, nullptr);
  ASSERT_EQ(family->series.size(), 1u);
  const obs::HistogramSnapshot& h = family->series[0].histogram;
  EXPECT_EQ(h.count, stats.output_delay.count());
  EXPECT_DOUBLE_EQ(h.sum, stats.output_delay.sum());
  EXPECT_DOUBLE_EQ(h.mean, stats.output_delay.mean());
  EXPECT_DOUBLE_EQ(h.min, stats.output_delay.min());
  EXPECT_DOUBLE_EQ(h.max, stats.output_delay.max());
}

TEST(MonitorObservabilityTest, TraceMatchReportedCarriesOutputDelay) {
  obs::ObservabilityOptions options;
  options.trace_capacity = 256;
  obs::Observability observability(options);
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s0");
  const auto query =
      engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Options(0.5));
  ASSERT_TRUE(query.ok());
  for (const double x : TwoMatchStream()) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }

  std::vector<obs::TraceEvent> reported;
  for (const obs::TraceEvent& e : observability.trace().Events()) {
    if (e.kind == obs::TraceEventKind::kMatchReported) reported.push_back(e);
  }
  ASSERT_EQ(reported.size(), sink.entries().size());
  ASSERT_EQ(reported.size(), 2u);
  const QueryStats& stats = engine.stats(*query);
  double delay_sum = 0.0;
  for (size_t i = 0; i < reported.size(); ++i) {
    const core::Match& match = sink.entries()[i].match;
    EXPECT_EQ(reported[i].start, match.start);
    EXPECT_EQ(reported[i].end, match.end);
    EXPECT_DOUBLE_EQ(reported[i].distance, match.distance);
    // The trace's report_delay is the engine's output delay:
    // t_report - t_e, and the event tick is the report time.
    EXPECT_EQ(reported[i].report_delay, match.report_time - match.end);
    EXPECT_EQ(reported[i].tick, match.report_time);
    delay_sum += static_cast<double>(reported[i].report_delay);
  }
  EXPECT_DOUBLE_EQ(delay_sum, stats.output_delay.sum());
}

TEST(MonitorObservabilityTest, FlushEmitsCandidateFlushedEvent) {
  obs::ObservabilityOptions options;
  options.trace_capacity = 64;
  obs::Observability observability(options);
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddStream("s0");
  ASSERT_TRUE(
      engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Options(0.5)).ok());
  // Pattern at the very end: the candidate is still pending at flush time.
  for (const double x : {9.0, 1.0, 2.0, 3.0}) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }
  EXPECT_EQ(engine.FlushAll(), 1);

  int flushed = 0;
  for (const obs::TraceEvent& e : observability.trace().Events()) {
    if (e.kind == obs::TraceEventKind::kCandidateFlushed) ++flushed;
  }
  EXPECT_EQ(flushed, 1);
  EXPECT_EQ(CounterValue(observability.registry().Snapshot(),
                         "spring_candidates_flushed_total"),
            1);
}

TEST(MonitorObservabilityTest, VectorQueriesUseVectorSpaceLabel) {
  obs::Observability observability;
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddVectorStream("v0", 2);
  ts::VectorSeries query(2);
  const std::vector<double> row1 = {1.0, 1.0};
  const std::vector<double> row2 = {2.0, 2.0};
  query.AppendRow(row1);
  query.AppendRow(row2);
  ASSERT_TRUE(
      engine.AddVectorQuery(stream, "vq", std::move(query), Options(0.5))
          .ok());
  const std::vector<double> row = {1.0, 1.0};
  ASSERT_TRUE(engine.PushRow(stream, row).ok());

  const obs::MetricsSnapshot snapshot =
      observability.registry().Snapshot();
  const obs::FamilySnapshot* ticks = snapshot.Find("spring_ticks_total");
  ASSERT_NE(ticks, nullptr);
  ASSERT_EQ(ticks->series.size(), 1u);
  const obs::Labels want = {obs::Label{"stream", "v0"},
                            obs::Label{"query", "vq"},
                            obs::Label{"space", "vector"}};
  EXPECT_EQ(ticks->series[0].labels, want);
}

TEST(MonitorObservabilityTest, DetachStopsCollection) {
  obs::Observability observability;
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddStream("s0");
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0}, Options(0.5)).ok());
  ASSERT_TRUE(engine.Push(stream, 1.0).ok());
  engine.AttachObservability(nullptr);
  ASSERT_TRUE(engine.Push(stream, 1.0).ok());
  EXPECT_EQ(CounterValue(observability.registry().Snapshot(),
                         "spring_ticks_total"),
            1);
  EXPECT_EQ(engine.observability(), nullptr);
}

TEST(MonitorObservabilityTest, PeriodicReporterEmitsSummaryLines) {
  std::ostringstream log;
  obs::ObservabilityOptions options;
  options.report_every_ticks = 4;
  options.report_out = &log;
  obs::Observability observability(options);
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddStream("s0");
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0}, Options(0.5)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Push(stream, 9.0).ok());
  }
  ASSERT_NE(observability.reporter(), nullptr);
  EXPECT_EQ(observability.reporter()->lines_reported(), 2);
  // Two lines, each a "[obs] ..." summary.
  const std::string text = log.str();
  EXPECT_EQ(text.find("[obs]"), 0u);
  EXPECT_NE(text.find("[obs]", 1), std::string::npos);
  EXPECT_NE(text.find("spring_ticks_total=" ), std::string::npos);
}

TEST(MonitorObservabilityTest, RefreshUpdatesGauges) {
  obs::Observability observability;
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddStream("s0");
  ASSERT_TRUE(
      engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Options(0.5)).ok());
  // Leave a candidate pending (pattern suffix not yet beaten).
  for (const double x : {9.0, 1.0, 2.0, 3.0}) {
    ASSERT_TRUE(engine.Push(stream, x).ok());
  }
  engine.RefreshObservabilityGauges();
  const obs::MetricsSnapshot snapshot =
      observability.registry().Snapshot();
  EXPECT_GT(snapshot.Find("spring_memory_bytes")->series[0].gauge_value,
            0.0);
  EXPECT_DOUBLE_EQ(snapshot.Find("spring_streams")->series[0].gauge_value,
                   1.0);
  EXPECT_DOUBLE_EQ(snapshot.Find("spring_queries")->series[0].gauge_value,
                   1.0);
  EXPECT_DOUBLE_EQ(
      snapshot.Find("spring_candidate_pending")->series[0].gauge_value, 1.0);
}

TEST(MonitorObservabilityTest, CheckpointEventsAndRestoredEngineCollects) {
  obs::ObservabilityOptions options;
  options.trace_capacity = 64;
  obs::Observability observability(options);
  MonitorEngine engine;
  engine.AttachObservability(&observability);
  const int64_t stream = engine.AddStream("s0");
  ASSERT_TRUE(
      engine.AddQuery(stream, "q", {1.0, 2.0, 3.0}, Options(0.5)).ok());
  ASSERT_TRUE(engine.Push(stream, 9.0).ok());
  const std::vector<uint8_t> blob = engine.SerializeState();

  MonitorEngine restored;
  restored.AttachObservability(&observability);
  ASSERT_TRUE(restored.RestoreState(blob).ok());

  int saves = 0;
  int restores = 0;
  for (const obs::TraceEvent& e : observability.trace().Events()) {
    if (e.kind == obs::TraceEventKind::kCheckpointSave) ++saves;
    if (e.kind == obs::TraceEventKind::kCheckpointRestore) ++restores;
  }
  EXPECT_EQ(saves, 1);
  EXPECT_EQ(restores, 1);
  const obs::MetricsSnapshot snapshot =
      observability.registry().Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "spring_checkpoint_saves_total"), 1);
  EXPECT_EQ(CounterValue(snapshot, "spring_checkpoint_restores_total"), 1);

  // The restored engine re-resolved instrument handles for the restored
  // topology; pushing through it keeps counting into the same registry.
  ASSERT_TRUE(restored.Push(stream, 9.0).ok());
  EXPECT_EQ(CounterValue(observability.registry().Snapshot(),
                         "spring_ticks_total"),
            2);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
