// Verifies the "constant space, no allocation per time-tick" claim on the
// hot path: once constructed (and, for the path matcher, warmed up), Update()
// must not touch the heap.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "core/spring_path.h"
#include "core/vector_spring.h"
#include "util/memory.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

TEST(AllocationTest, SpringMatcherHotPathIsAllocationFree) {
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(std::vector<double>(256, 0.0), options);
  util::Rng rng(1);
  Match match;
  // Warm up a few ticks (first-touch effects).
  for (int t = 0; t < 10; ++t) matcher.Update(rng.Gaussian(), &match);

  util::ScopedAllocationCheck check;
  for (int t = 0; t < 10000; ++t) {
    matcher.Update(rng.Gaussian(), &match);
  }
  EXPECT_EQ(check.Allocations(), 0);
}

TEST(AllocationTest, VectorSpringMatcherHotPathIsAllocationFree) {
  ts::VectorSeries query(8);
  for (int i = 0; i < 64; ++i) query.AppendUniformRow(0.0);
  SpringOptions options;
  options.epsilon = 0.5;
  VectorSpringMatcher matcher(query, options);
  util::Rng rng(2);
  std::vector<double> row(8);
  Match match;
  for (int t = 0; t < 10; ++t) {
    for (double& v : row) v = rng.Gaussian();
    matcher.Update(row, &match);
  }

  util::ScopedAllocationCheck check;
  for (int t = 0; t < 5000; ++t) {
    for (double& v : row) v = rng.Gaussian();
    matcher.Update(row, &match);
  }
  EXPECT_EQ(check.Allocations(), 0);
}

TEST(AllocationTest, SpringPathMatcherSteadyStateAllocatesRarely) {
  // The path arena recycles freed nodes; on a stationary stream the live
  // set stabilizes, so steady-state allocations amortize to (near) zero.
  SpringOptions options;
  options.epsilon = 0.5;
  SpringPathMatcher matcher(std::vector<double>{0.0, 1.0, 0.0, -1.0},
                            options);
  util::Rng rng(3);
  PathMatch match;
  auto tickvalue = [&](int64_t t) {
    return std::sin(0.2 * static_cast<double>(t)) + rng.Gaussian(0.0, 0.05);
  };
  for (int64_t t = 0; t < 20000; ++t) matcher.Update(tickvalue(t), &match);

  util::ScopedAllocationCheck check;
  const int64_t kTicks = 10000;
  for (int64_t t = 0; t < kTicks; ++t) {
    matcher.Update(tickvalue(20000 + t), &match);
  }
  // Allow sporadic arena growth/path extraction but not per-tick churn.
  EXPECT_LT(check.Allocations(), kTicks / 20);
}

TEST(AllocationTest, FootprintReportingDoesNotDisturbMatcherState) {
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher a(std::vector<double>(16, 0.0), options);
  SpringMatcher b(std::vector<double>(16, 0.0), options);
  util::Rng rng(4);
  Match match;
  for (int t = 0; t < 500; ++t) {
    const double x = rng.Gaussian();
    const bool ra = a.Update(x, &match);
    (void)a.Footprint();  // Interleaved footprint queries on `a` only.
    const bool rb = b.Update(x, &match);
    ASSERT_EQ(ra, rb);
  }
}

}  // namespace
}  // namespace core
}  // namespace springdtw
