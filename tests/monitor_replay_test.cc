#include "monitor/replay.h"

#include <vector>

#include <gtest/gtest.h>

#include "gen/masked_chirp.h"
#include "monitor/sink.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions Options(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

TEST(ReplayStreamTest, DrainsSourceAndCountsMatches) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0, 2.0}, Options(0.25)).ok());

  SeriesSource source(ts::Series({9.0, 1.0, 2.0, 9.0, 1.0, 2.0}));
  const auto result = ReplayStream(source, engine, stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ticks, 6);
  // One match closes mid-stream, the trailing one needs the flush.
  EXPECT_EQ(result->matches, 2);
  EXPECT_EQ(sink.entries().size(), 2u);
  EXPECT_GE(result->seconds, 0.0);
  EXPECT_GT(result->ticks_per_second(), 0.0);
}

TEST(ReplayStreamTest, FlushToggle) {
  MonitorEngine engine;
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0, 2.0}, Options(0.25)).ok());
  SeriesSource source(ts::Series({1.0, 2.0}));  // Ends inside the match.
  ReplayOptions options;
  options.flush_at_end = false;
  const auto result = ReplayStream(source, engine, stream, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches, 0);
  EXPECT_EQ(engine.FlushAll(), 1);  // Still pending.
}

TEST(ReplayStreamTest, ProgressCallbackFires) {
  MonitorEngine engine;
  const int64_t stream = engine.AddStream("s");
  ASSERT_TRUE(engine.AddQuery(stream, "q", {0.0}, Options(-1.0)).ok());
  SeriesSource source(ts::Series(std::vector<double>(100, 1.0)));
  ReplayOptions options;
  options.progress_every = 25;
  std::vector<int64_t> reported_at;
  options.on_progress = [&](int64_t ticks, int64_t) {
    reported_at.push_back(ticks);
  };
  ASSERT_TRUE(ReplayStream(source, engine, stream, options).ok());
  EXPECT_EQ(reported_at, (std::vector<int64_t>{25, 50, 75, 100}));
}

TEST(ReplayStreamTest, BadStreamIdPropagatesError) {
  MonitorEngine engine;
  SeriesSource source(ts::Series({1.0}));
  EXPECT_FALSE(ReplayStream(source, engine, 7).ok());
}

TEST(ReplayStreamTest, RepairsMissingViaSource) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddStream("s", /*repair_missing=*/false);
  ASSERT_TRUE(engine.AddQuery(stream, "q", {1.0, 2.0}, Options(0.25)).ok());
  // The source repairs, so repair-disabled streams still get finite input.
  SeriesSource source(
      ts::Series({1.0, ts::MissingValue(), 2.0, 9.0}));
  const auto result = ReplayStream(source, engine, stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches, 1);
}

TEST(ReplayVectorSeriesTest, DrainsVectorStream) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream = engine.AddVectorStream("v", 2);
  ts::VectorSeries query(2);
  query.AppendRow(std::vector<double>{1.0, -1.0});
  ASSERT_TRUE(engine.AddVectorQuery(stream, "q", query, Options(0.1)).ok());

  ts::VectorSeries data(2);
  data.AppendRow(std::vector<double>{9.0, 9.0});
  data.AppendRow(std::vector<double>{1.0, -1.0});
  data.AppendRow(std::vector<double>{9.0, 9.0});
  const auto result = ReplayVectorSeries(data, engine, stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ticks, 3);
  EXPECT_EQ(result->matches, 1);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
