// MonitorEngine batch mode (EngineOptions::batch_queries): the SoA-pooled
// engine must be observably identical to the per-matcher engine — same
// matches in the same sink order, same stats, byte-identical checkpoints,
// and mode-portable restore in both directions.
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "obs/observability.h"
#include "util/random.h"

namespace springdtw {
namespace monitor {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Two streams, five queries (one stream holds three), mixed options.
void BuildTopology(MonitorEngine* engine) {
  const int64_t hot = engine->AddStream("hot");
  const int64_t cold = engine->AddStream("cold", /*repair_missing=*/false);
  core::SpringOptions tight;
  tight.epsilon = 0.5;
  core::SpringOptions loose;
  loose.epsilon = 8.0;
  core::SpringOptions constrained;
  constrained.epsilon = 8.0;
  constrained.max_match_length = 6;
  ASSERT_TRUE(engine->AddQuery(hot, "ramp", {1.0, 2.0, 3.0}, tight).ok());
  ASSERT_TRUE(engine->AddQuery(hot, "dip", {3.0, 1.0}, loose).ok());
  ASSERT_TRUE(
      engine->AddQuery(hot, "short", {2.0, 2.0}, constrained).ok());
  ASSERT_TRUE(engine->AddQuery(cold, "ramp2", {1.0, 2.0, 3.0}, tight).ok());
  ASSERT_TRUE(engine->AddQuery(cold, "flat", {9.0, 9.0}, loose).ok());
}

std::vector<double> TestStream(uint64_t seed, size_t n, bool with_nan) {
  util::Rng rng(seed);
  std::vector<double> stream(n);
  for (double& x : stream) {
    x = static_cast<double>(rng.UniformInt(0, 4));
    if (with_nan && rng.Bernoulli(0.05)) x = kNaN;
  }
  return stream;
}

void ExpectSameEntries(const std::vector<CollectSink::Entry>& got,
                       const std::vector<CollectSink::Entry>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].origin.stream_id, expected[i].origin.stream_id);
    EXPECT_EQ(got[i].origin.query_id, expected[i].origin.query_id);
    EXPECT_EQ(got[i].origin.query_name, expected[i].origin.query_name);
    EXPECT_EQ(got[i].match.start, expected[i].match.start);
    EXPECT_EQ(got[i].match.end, expected[i].match.end);
    EXPECT_EQ(got[i].match.distance, expected[i].match.distance);
    EXPECT_EQ(got[i].match.report_time, expected[i].match.report_time);
  }
}

TEST(MonitorEngineBatchTest, MatchesAndStatsIdenticalToPerMatcherMode) {
  MonitorEngine scalar_engine;
  MonitorEngine batch_engine(EngineOptions{.batch_queries = true});
  CollectSink scalar_sink;
  CollectSink batch_sink;
  scalar_engine.AddSink(&scalar_sink);
  batch_engine.AddSink(&batch_sink);
  BuildTopology(&scalar_engine);
  BuildTopology(&batch_engine);

  const std::vector<double> hot = TestStream(7, 400, /*with_nan=*/true);
  const std::vector<double> cold = TestStream(11, 400, /*with_nan=*/false);
  for (size_t t = 0; t < hot.size(); ++t) {
    const auto a = scalar_engine.Push(0, hot[t]);
    const auto b = batch_engine.Push(0, hot[t]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
    ASSERT_TRUE(scalar_engine.Push(1, cold[t]).ok());
    ASSERT_TRUE(batch_engine.Push(1, cold[t]).ok());
  }
  EXPECT_EQ(scalar_engine.FlushAll(), batch_engine.FlushAll());
  ExpectSameEntries(batch_sink.entries(), scalar_sink.entries());
  ASSERT_FALSE(scalar_sink.entries().empty());

  for (int64_t q = 0; q < scalar_engine.num_queries(); ++q) {
    EXPECT_EQ(batch_engine.stats(q).ticks, scalar_engine.stats(q).ticks);
    EXPECT_EQ(batch_engine.stats(q).matches, scalar_engine.stats(q).matches);
  }
}

TEST(MonitorEngineBatchTest, PushBatchEqualsPerValuePush) {
  MonitorEngine tick_engine(EngineOptions{.batch_queries = true});
  MonitorEngine batch_engine(EngineOptions{.batch_queries = true});
  CollectSink tick_sink;
  CollectSink batch_sink;
  tick_engine.AddSink(&tick_sink);
  batch_engine.AddSink(&batch_sink);
  BuildTopology(&tick_engine);
  BuildTopology(&batch_engine);

  const std::vector<double> stream = TestStream(21, 600, /*with_nan=*/true);
  int64_t tick_reported = 0;
  for (const double x : stream) {
    tick_reported += *tick_engine.Push(0, x);
  }
  int64_t batch_reported = 0;
  constexpr size_t kChunk = 37;
  for (size_t offset = 0; offset < stream.size(); offset += kChunk) {
    const size_t count = std::min(kChunk, stream.size() - offset);
    const auto pushed = batch_engine.PushBatch(
        0, std::span<const double>(stream.data() + offset, count));
    ASSERT_TRUE(pushed.ok());
    batch_reported += *pushed;
  }
  EXPECT_EQ(batch_reported, tick_reported);
  ExpectSameEntries(batch_sink.entries(), tick_sink.entries());
  EXPECT_EQ(batch_engine.stats(0).ticks, tick_engine.stats(0).ticks);
  EXPECT_EQ(batch_engine.SerializeState(), tick_engine.SerializeState());
}

TEST(MonitorEngineBatchTest, PushBatchWorksInPerMatcherMode) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  BuildTopology(&engine);
  const std::vector<double> stream = TestStream(33, 200, /*with_nan=*/false);
  const auto pushed = engine.PushBatch(0, stream);
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ(engine.stats(0).ticks, static_cast<int64_t>(stream.size()));
}

TEST(MonitorEngineBatchTest, PushBatchMissingValueStopsAtTheNaN) {
  MonitorEngine engine(EngineOptions{.batch_queries = true});
  BuildTopology(&engine);
  // Stream 1 ("cold") has repair disabled: the prefix before the NaN is
  // processed, then the push fails — exactly the per-value Push contract.
  const std::vector<double> values = {1.0, 2.0, kNaN, 3.0};
  EXPECT_FALSE(engine.PushBatch(1, values).ok());
  EXPECT_EQ(engine.stats(3).ticks, 2);
}

TEST(MonitorEngineBatchTest, CheckpointsArePortableAcrossModes) {
  MonitorEngine scalar_engine;
  MonitorEngine batch_engine(EngineOptions{.batch_queries = true});
  BuildTopology(&scalar_engine);
  BuildTopology(&batch_engine);
  const std::vector<double> stream = TestStream(5, 321, /*with_nan=*/true);
  for (const double x : stream) {
    ASSERT_TRUE(scalar_engine.Push(0, x).ok());
    ASSERT_TRUE(batch_engine.Push(0, x).ok());
  }
  // Same bytes from both modes.
  const std::vector<uint8_t> scalar_ckpt = scalar_engine.SerializeState();
  const std::vector<uint8_t> batch_ckpt = batch_engine.SerializeState();
  EXPECT_EQ(batch_ckpt, scalar_ckpt);

  // Cross-restore: batch checkpoint into a per-matcher engine and the other
  // way round; both resume with identical output.
  MonitorEngine restored_scalar;
  MonitorEngine restored_batch(EngineOptions{.batch_queries = true});
  ASSERT_TRUE(restored_scalar.RestoreState(batch_ckpt).ok());
  ASSERT_TRUE(restored_batch.RestoreState(scalar_ckpt).ok());
  CollectSink scalar_sink;
  CollectSink batch_sink;
  restored_scalar.AddSink(&scalar_sink);
  restored_batch.AddSink(&batch_sink);
  const std::vector<double> tail = TestStream(6, 200, /*with_nan=*/false);
  for (const double x : tail) {
    ASSERT_TRUE(restored_scalar.Push(0, x).ok());
    ASSERT_TRUE(restored_batch.Push(0, x).ok());
  }
  restored_scalar.FlushAll();
  restored_batch.FlushAll();
  ExpectSameEntries(batch_sink.entries(), scalar_sink.entries());
  EXPECT_EQ(restored_batch.SerializeState(), restored_scalar.SerializeState());
}

TEST(MonitorEngineBatchTest, QuerySnapshotRoundTripsThroughAnyMode) {
  MonitorEngine batch_engine(EngineOptions{.batch_queries = true});
  BuildTopology(&batch_engine);
  const std::vector<double> stream = TestStream(9, 150, /*with_nan=*/false);
  for (const double x : stream) {
    ASSERT_TRUE(batch_engine.Push(0, x).ok());
  }

  // Lift query 1 ("dip") out of the batch engine and resume it on a fresh
  // per-matcher engine — the resharding primitive.
  const std::vector<uint8_t> snapshot = batch_engine.SerializeQueryState(1);
  MonitorEngine target;
  const int64_t stream_id = target.AddStream("hot");
  const auto query_id =
      target.AddQueryFromSnapshot(stream_id, "dip", snapshot);
  ASSERT_TRUE(query_id.ok());
  EXPECT_EQ(target.SerializeQueryState(*query_id), snapshot);

  // And back into a batch engine.
  MonitorEngine batch_target(EngineOptions{.batch_queries = true});
  batch_target.AddStream("hot");
  const auto batch_query = batch_target.AddQueryFromSnapshot(0, "dip", snapshot);
  ASSERT_TRUE(batch_query.ok());
  EXPECT_EQ(batch_target.SerializeQueryState(*batch_query), snapshot);

  // Corrupt snapshots are rejected.
  std::vector<uint8_t> corrupt = snapshot;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(target.AddQueryFromSnapshot(stream_id, "bad", corrupt).ok());
}

TEST(MonitorEngineBatchTest, ObservabilityCountsMatchAcrossModes) {
  obs::Observability scalar_obs;
  obs::Observability batch_obs;
  MonitorEngine scalar_engine;
  MonitorEngine batch_engine(EngineOptions{.batch_queries = true});
  scalar_engine.AttachObservability(&scalar_obs);
  batch_engine.AttachObservability(&batch_obs);
  BuildTopology(&scalar_engine);
  BuildTopology(&batch_engine);

  const std::vector<double> stream = TestStream(13, 300, /*with_nan=*/false);
  for (const double x : stream) {
    ASSERT_TRUE(scalar_engine.Push(0, x).ok());
    ASSERT_TRUE(batch_engine.Push(0, x).ok());
  }
  scalar_engine.RefreshObservabilityGauges();
  batch_engine.RefreshObservabilityGauges();

  // Metric families must agree series-by-series except the memory gauge
  // (layouts differ) and latency histograms (timing noise).
  const obs::MetricsSnapshot scalar_snap = scalar_obs.registry().Snapshot();
  const obs::MetricsSnapshot batch_snap = batch_obs.registry().Snapshot();
  ASSERT_EQ(scalar_snap.families.size(), batch_snap.families.size());
  for (size_t f = 0; f < scalar_snap.families.size(); ++f) {
    const auto& sf = scalar_snap.families[f];
    const auto& bf = batch_snap.families[f];
    EXPECT_EQ(sf.name, bf.name);
    if (sf.name == "spring_memory_bytes" ||
        sf.name == "spring_push_latency_nanos") {
      continue;
    }
    ASSERT_EQ(sf.series.size(), bf.series.size()) << sf.name;
    for (size_t s = 0; s < sf.series.size(); ++s) {
      EXPECT_EQ(sf.series[s].labels, bf.series[s].labels) << sf.name;
      EXPECT_EQ(sf.series[s].counter_value, bf.series[s].counter_value)
          << sf.name;
    }
  }
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
