// StreamServer + StreamClient end-to-end over loopback: wire-fed monitors
// must report byte-identical matches to directly-fed ones at any worker
// count, checkpoints taken through the daemon must survive a kill-and-
// restore, admin operations work over the wire with non-fatal error
// responses, protocol violations are session-fatal, slow subscribers are
// disconnected instead of stalling ingest, and the whole stack holds up
// under concurrent clients (tsan target).
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace springdtw {
namespace net {
namespace {

using monitor::CollectSink;
using monitor::ShardedMonitor;
using monitor::ShardedMonitorOptions;

// (stream name, query name, match fields) — ids are not compared because
// restored monitors compact query ids and the wire run assigns its own.
using MatchKey =
    std::tuple<std::string, std::string, int64_t, int64_t, double, int64_t>;

MatchKey KeyOf(const std::string& stream_name, const std::string& query_name,
               const core::Match& match) {
  return {stream_name, query_name, match.start, match.end, match.distance,
          match.report_time};
}

std::vector<MatchKey> KeysOf(const std::vector<CollectSink::Entry>& entries) {
  std::vector<MatchKey> keys;
  keys.reserve(entries.size());
  for (const auto& entry : entries) {
    keys.push_back(
        KeyOf(entry.origin.stream_name, entry.origin.query_name, entry.match));
  }
  return keys;
}

std::vector<MatchKey> KeysOf(const std::vector<MatchEventPayload>& events) {
  std::vector<MatchKey> keys;
  keys.reserve(events.size());
  for (const auto& event : events) {
    keys.push_back(KeyOf(event.stream_name, event.query_name, event.match));
  }
  return keys;
}

core::SpringOptions Eps(double epsilon) {
  core::SpringOptions options;
  options.epsilon = epsilon;
  return options;
}

struct QuerySpec {
  std::string stream;
  std::string name;
  std::vector<double> values;
  double epsilon;
};

std::vector<QuerySpec> Topology() {
  return {
      {"s0", "q-ramp", {1.0, 2.0, 3.0}, 0.5},
      {"s1", "q-flat", {2.0, 2.0, 2.0}, 1.0},
      {"s0", "q-bump", {1.0, 2.0, 3.0, 2.0, 1.0}, 2.0},
  };
}

// Deterministic interleaved workload: alternating chunks on two streams.
struct Chunk {
  std::string stream;
  std::vector<double> values;
};

std::vector<Chunk> Workload(uint64_t seed, int64_t chunks,
                            int64_t chunk_size) {
  util::Rng rng(seed);
  std::vector<Chunk> out;
  for (int64_t c = 0; c < chunks; ++c) {
    Chunk chunk;
    chunk.stream = (c % 2 == 0) ? "s0" : "s1";
    for (int64_t i = 0; i < chunk_size; ++i) {
      chunk.values.push_back(static_cast<double>(rng.UniformInt(0, 4)));
    }
    out.push_back(std::move(chunk));
  }
  return out;
}

// Runs the workload directly against a ShardedMonitor (no network) and
// returns the committed matches in delivery order. No FlushAll: the daemon
// never performs end-of-stream flushes, so the reference must not either.
std::vector<MatchKey> DirectReference(int64_t workers,
                                      const std::vector<Chunk>& chunks) {
  ShardedMonitorOptions options;
  options.num_workers = workers;
  ShardedMonitor ref(options);
  CollectSink sink;
  ref.AddSink(&sink);
  int64_t s0 = ref.AddStream("s0");
  int64_t s1 = ref.AddStream("s1");
  for (const auto& spec : Topology()) {
    auto added = ref.AddQuery(spec.stream == "s0" ? s0 : s1, spec.name,
                              spec.values, Eps(spec.epsilon));
    SPRINGDTW_CHECK(added.ok());
  }
  ref.Start();
  for (const auto& chunk : chunks) {
    SPRINGDTW_CHECK(
        ref.PushBatch(chunk.stream == "s0" ? s0 : s1, chunk.values).ok());
  }
  ref.Drain();
  ref.Stop();
  return KeysOf(sink.entries());
}

StreamClientOptions ClientOptionsFor(const StreamServer& server) {
  StreamClientOptions options;
  options.port = server.port();
  options.io_timeout_ms = 10000.0;
  return options;
}

class WorkerCountTest : public ::testing::TestWithParam<int64_t> {};

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountTest,
                         ::testing::Values<int64_t>(1, 2, 8));

TEST_P(WorkerCountTest, EndToEndMatchesDirectRun) {
  const std::vector<Chunk> chunks = Workload(/*seed=*/20260807, 24, 50);
  const std::vector<MatchKey> expected = DirectReference(GetParam(), chunks);
  ASSERT_FALSE(expected.empty()) << "workload must exercise match fan-out";

  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = GetParam();
  ShardedMonitor monitor(monitor_options);
  monitor.Start();
  StreamServer server(&monitor, StreamServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::vector<MatchEventPayload> events;
  StreamClient client(ClientOptionsFor(server));
  client.SetMatchCallback(
      [&events](const MatchEventPayload& event) { events.push_back(event); });
  ASSERT_TRUE(client.Connect().ok());

  auto s0 = client.OpenStream("s0");
  auto s1 = client.OpenStream("s1");
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  for (const auto& spec : Topology()) {
    auto added = client.AddQuery(spec.stream == "s0" ? *s0 : *s1, spec.name,
                                 spec.values, Eps(spec.epsilon));
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
  ASSERT_TRUE(client.SubscribeMatches().ok());

  uint64_t total_ticks = 0;
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(
        client.TickBatch(chunk.stream == "s0" ? *s0 : *s1, chunk.values)
            .ok());
    total_ticks += chunk.values.size();
  }
  auto drained = client.Drain();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(*drained, total_ticks);

  // Delivery order over the wire must equal the direct run's sink order.
  EXPECT_EQ(KeysOf(events), expected);
  // Delivery sequence numbers are strictly increasing.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].delivery_seq, events[i - 1].delivery_seq);
  }

  client.Close();
  server.Stop();
  monitor.Stop();
}

TEST_P(WorkerCountTest, CheckpointKillRestoreContinuesIdentically) {
  const std::vector<Chunk> chunks = Workload(/*seed=*/4711, 20, 40);
  const std::vector<MatchKey> expected = DirectReference(GetParam(), chunks);
  const size_t split = chunks.size() / 2;

  std::vector<uint8_t> blob;
  std::vector<MatchEventPayload> events;

  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = GetParam();

  {
    ShardedMonitor monitor(monitor_options);
    monitor.Start();
    StreamServer server(&monitor, StreamServerOptions{});
    server.SetCheckpointFn([&monitor, &blob]() -> util::StatusOr<uint64_t> {
      blob = monitor.SerializeState();
      return static_cast<uint64_t>(blob.size());
    });
    ASSERT_TRUE(server.Start().ok());

    StreamClient client(ClientOptionsFor(server));
    client.SetMatchCallback([&events](const MatchEventPayload& event) {
      events.push_back(event);
    });
    ASSERT_TRUE(client.Connect().ok());
    auto s0 = client.OpenStream("s0");
    auto s1 = client.OpenStream("s1");
    ASSERT_TRUE(s0.ok());
    ASSERT_TRUE(s1.ok());
    for (const auto& spec : Topology()) {
      ASSERT_TRUE(client.AddQuery(spec.stream == "s0" ? *s0 : *s1, spec.name,
                                  spec.values, Eps(spec.epsilon))
                      .ok());
    }
    ASSERT_TRUE(client.SubscribeMatches().ok());
    for (size_t c = 0; c < split; ++c) {
      ASSERT_TRUE(client
                      .TickBatch(chunks[c].stream == "s0" ? *s0 : *s1,
                                 chunks[c].values)
                      .ok());
    }
    ASSERT_TRUE(client.Drain().ok());
    auto bytes = client.Checkpoint();
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    EXPECT_EQ(*bytes, blob.size());
    ASSERT_FALSE(blob.empty());

    // "Kill": tear down without FlushAll — pending candidates must survive
    // inside the checkpoint, not leak out as end-of-stream matches.
    client.Close();
    server.Stop();
    monitor.Stop();
  }

  {
    ShardedMonitor monitor(monitor_options);
    ASSERT_TRUE(monitor.RestoreState(blob).ok());
    monitor.Start();
    StreamServer server(&monitor, StreamServerOptions{});
    ASSERT_TRUE(server.Start().ok());

    StreamClient client(ClientOptionsFor(server));
    client.SetMatchCallback([&events](const MatchEventPayload& event) {
      events.push_back(event);
    });
    ASSERT_TRUE(client.Connect().ok());
    // OPEN_STREAM is idempotent across restore: the restored stream table
    // must be found, not shadowed by fresh ids.
    auto s0 = client.OpenStream("s0");
    auto s1 = client.OpenStream("s1");
    ASSERT_TRUE(s0.ok());
    ASSERT_TRUE(s1.ok());
    EXPECT_EQ(*s0, 0);
    EXPECT_EQ(*s1, 1);
    ASSERT_TRUE(client.SubscribeMatches().ok());
    for (size_t c = split; c < chunks.size(); ++c) {
      ASSERT_TRUE(client
                      .TickBatch(chunks[c].stream == "s0" ? *s0 : *s1,
                                 chunks[c].values)
                      .ok());
    }
    ASSERT_TRUE(client.Drain().ok());
    client.Close();
    server.Stop();
    monitor.Stop();
  }

  // First-half deliveries + post-restore deliveries == one uninterrupted
  // direct run, in order.
  EXPECT_EQ(KeysOf(events), expected);
}

// Observability must be a pure observer: with span tracing and cost
// accounting fully enabled on the serving monitor, the wire-fed run's
// delivery order must stay byte-identical to a direct run with everything
// disabled — and the spans/stats the run produces must hold their
// invariants.
TEST_P(WorkerCountTest, EndToEndMatchesDirectRunWithTracingOn) {
  const std::vector<Chunk> chunks = Workload(/*seed=*/20260807, 24, 50);
  const std::vector<MatchKey> expected = DirectReference(GetParam(), chunks);
  ASSERT_FALSE(expected.empty());

  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = GetParam();
  monitor_options.enable_introspection = true;
  monitor_options.publish_interval_ms = 0.0;
  monitor_options.span_sample_every = 4;
  monitor_options.span_ring_capacity = 512;
  monitor_options.cost_sample_every = 8;
  ShardedMonitor monitor(monitor_options);
  monitor.Start();
  StreamServer server(&monitor, StreamServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::vector<MatchEventPayload> events;
  StreamClient client(ClientOptionsFor(server));
  client.SetMatchCallback(
      [&events](const MatchEventPayload& event) { events.push_back(event); });
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.negotiated_version(), kProtocolVersion);

  auto s0 = client.OpenStream("s0");
  auto s1 = client.OpenStream("s1");
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  for (const auto& spec : Topology()) {
    ASSERT_TRUE(client.AddQuery(spec.stream == "s0" ? *s0 : *s1, spec.name,
                                spec.values, Eps(spec.epsilon))
                    .ok());
  }
  ASSERT_TRUE(client.SubscribeMatches().ok());
  int64_t s0_ticks = 0;
  int64_t s1_ticks = 0;
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(
        client.TickBatch(chunk.stream == "s0" ? *s0 : *s1, chunk.values)
            .ok());
    (chunk.stream == "s0" ? s0_ticks : s1_ticks) +=
        static_cast<int64_t>(chunk.values.size());
  }
  ASSERT_TRUE(client.Drain().ok());

  // The tentpole acceptance bar: identical bytes with tracing on.
  EXPECT_EQ(KeysOf(events), expected);

  // Spans completed end-to-end: the client's v2 send stamp survived to the
  // span, and the server's finalizer stamped the fan-out write, with every
  // stage monotone (one machine, one monotonic clock).
  const obs::SpanzReport spans = monitor.PublishedSpans();
  ASSERT_FALSE(spans.spans.empty());
  for (const obs::TickSpan& span : spans.spans) {
    EXPECT_GT(span.client_send_nanos, 0u) << "client stamps v2 ticks";
    EXPECT_GE(span.server_recv_nanos, span.client_send_nanos);
    EXPECT_GE(span.router_enqueue_nanos, span.server_recv_nanos);
    EXPECT_GE(span.worker_pop_nanos, span.router_enqueue_nanos);
    EXPECT_GE(span.worker_done_nanos, span.worker_pop_nanos);
    EXPECT_GE(span.delivered_nanos, span.worker_done_nanos);
    EXPECT_GE(span.subscriber_write_nanos, span.delivered_nanos)
        << "the net server finalizer stamps after fan-out";
  }

  // LIST_QUERIES with stats over the wire: cost columns recount exactly.
  auto listed = client.ListQueries(/*with_stats=*/true);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 3u);
  for (const auto& entry : *listed) {
    const int64_t ticks = entry.stream_name == "s0" ? s0_ticks : s1_ticks;
    const int64_t m = entry.name == "q-bump" ? 5 : 3;
    EXPECT_EQ(entry.ticks, ticks) << entry.name;
    EXPECT_EQ(entry.cells, ticks * m) << entry.name;
  }

  client.Close();
  server.Stop();
  monitor.Stop();
}

TEST(NetServerAdminTest, AdminOpsOverTheWire) {
  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = 2;
  ShardedMonitor monitor(monitor_options);
  monitor.Start();
  StreamServer server(&monitor, StreamServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::vector<MatchEventPayload> events;
  StreamClient client(ClientOptionsFor(server));
  client.SetMatchCallback(
      [&events](const MatchEventPayload& event) { events.push_back(event); });
  ASSERT_TRUE(client.Connect().ok());

  // OPEN_STREAM is idempotent by name.
  auto first = client.OpenStream("s");
  auto second = client.OpenStream("s");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);

  // A failed admin request is an ERROR response, not a disconnect.
  auto bad = client.AddQuery(99, "q", {1.0, 2.0}, Eps(1.0));
  EXPECT_FALSE(bad.ok());
  auto bad_options = client.AddQuery(*first, "q", {}, Eps(1.0));
  EXPECT_FALSE(bad_options.ok());

  auto query = client.AddQuery(*first, "q", {1.0, 2.0, 3.0}, Eps(0.5));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(client.SubscribeMatches().ok());

  // {5,1,2,3}: the exact occurrence ends on the last tick, so the
  // candidate is pending (dmin = 0 beats every open path) — nothing
  // commits, and removal must flush exactly that match.
  const std::vector<double> prefix = {5.0, 1.0, 2.0, 3.0};
  ASSERT_TRUE(client.TickBatch(*first, prefix).ok());
  ASSERT_TRUE(client.Drain().ok());
  EXPECT_TRUE(events.empty());

  auto listed = client.ListQueries();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].name, "q");
  EXPECT_EQ((*listed)[0].stream_name, "s");
  EXPECT_EQ((*listed)[0].ticks, 4);
  EXPECT_EQ((*listed)[0].matches, 0);

  auto flushed = client.RemoveQuery(*query);
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(*flushed, 1);
  // The flushed match fanned out before the QUERY_REMOVED response.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].query_name, "q");
  EXPECT_EQ(events[0].match.start, 1);
  EXPECT_EQ(events[0].match.end, 3);
  EXPECT_EQ(events[0].match.distance, 0.0);
  EXPECT_EQ(events[0].match.report_time, 4);

  // Double remove: NOT_FOUND, connection still usable afterwards.
  auto again = client.RemoveQuery(*query);
  EXPECT_FALSE(again.ok());
  auto empty = client.ListQueries();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  client.Close();
  server.Stop();
  monitor.Stop();
}

// ---------------------------------------------------------------------------
// Raw-socket helpers for protocol-violation tests (the real client refuses
// to misbehave).

int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(port));
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends `bytes`, then reads until the peer closes (or the 5 s receive
// timeout trips) and returns everything received.
std::vector<uint8_t> SendAndCollectUntilClose(int port,
                                              std::span<const uint8_t> bytes) {
  std::vector<uint8_t> received;
  int fd = RawConnect(port);
  if (fd < 0) return received;
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  uint8_t chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.insert(received.end(), chunk, chunk + n);
  }
  ::close(fd);
  return received;
}

// The server's reply to a fatal violation: exactly one ERROR frame with
// request_id 0, then connection close.
void ExpectFatalError(const std::vector<uint8_t>& received,
                      util::StatusCode code) {
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(CutFrame(received, kDefaultMaxFrameBytes, &frame, &consumed)
                  .ok());
  ASSERT_GT(consumed, 0u) << "expected a complete ERROR frame before close";
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorPayload error;
  ASSERT_TRUE(DecodePayload(frame.payload, &error).ok());
  EXPECT_EQ(error.request_id, 0u);
  EXPECT_EQ(error.ToStatus().code(), code);
  EXPECT_EQ(consumed, received.size()) << "no frames after a fatal ERROR";
}

class ProtocolViolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    monitor_ = std::make_unique<ShardedMonitor>(ShardedMonitorOptions{});
    monitor_->AddStream("s");
    monitor_->Start();
    server_ =
        std::make_unique<StreamServer>(monitor_.get(), StreamServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override {
    server_->Stop();
    monitor_->Stop();
  }

  std::unique_ptr<ShardedMonitor> monitor_;
  std::unique_ptr<StreamServer> server_;
};

TEST_F(ProtocolViolationTest, VersionSkewIsFatal) {
  HelloPayload hello;
  hello.version = 99;
  hello.peer_name = "time-traveler";
  std::vector<uint8_t> wire;
  AppendPayloadFrame(FrameType::kHello, hello, &wire);
  ExpectFatalError(SendAndCollectUntilClose(server_->port(), wire),
                   util::StatusCode::kFailedPrecondition);
}

TEST_F(ProtocolViolationTest, VersionZeroIsFatal) {
  HelloPayload hello;
  hello.version = 0;
  hello.peer_name = "prehistoric";
  std::vector<uint8_t> wire;
  AppendPayloadFrame(FrameType::kHello, hello, &wire);
  ExpectFatalError(SendAndCollectUntilClose(server_->port(), wire),
                   util::StatusCode::kFailedPrecondition);
}

// Reads whole frames off a raw socket until `count` arrived or the 5 s
// receive timeout trips.
std::vector<Frame> ReadFrames(int fd, size_t count) {
  std::vector<Frame> frames;
  std::vector<uint8_t> buffer;
  uint8_t chunk[4096];
  while (frames.size() < count) {
    Frame frame;
    size_t consumed = 0;
    if (CutFrame(buffer, kDefaultMaxFrameBytes, &frame, &consumed).ok() &&
        consumed > 0) {
      frames.push_back(std::move(frame));
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<ptrdiff_t>(consumed));
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
  return frames;
}

// A v1 peer (no trailers anywhere) must get a v1 ack and a fully v1
// session — the min-negotiation contract that keeps old clients working.
TEST_F(ProtocolViolationTest, V1ClientNegotiatesV1Session) {
  const int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> wire;
  HelloPayload hello;
  hello.version = 1;
  hello.peer_name = "legacy";
  AppendPayloadFrame(FrameType::kHello, hello, &wire);
  ListQueriesPayload list;
  list.request_id = 7;
  AppendPayloadFrame(FrameType::kListQueries, list, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  const std::vector<Frame> frames = ReadFrames(fd, 2);
  ::close(fd);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].type, FrameType::kHelloAck);
  HelloAckPayload ack;
  ASSERT_TRUE(DecodePayload(frames[0].payload, &ack).ok());
  EXPECT_EQ(ack.version, 1u) << "server must ack min(client, server)";
  ASSERT_EQ(frames[1].type, FrameType::kQueryList);
  QueryListPayload reply;
  ASSERT_TRUE(DecodePayload(frames[1].payload, &reply).ok());
  EXPECT_EQ(reply.request_id, 7u);
  EXPECT_FALSE(reply.has_stats) << "a v1 session never carries the trailer";
}

TEST_F(ProtocolViolationTest, FrameBeforeHelloIsFatal) {
  TickPayload tick;
  tick.stream_id = 0;
  tick.value = 1.0;
  std::vector<uint8_t> wire;
  AppendPayloadFrame(FrameType::kTick, tick, &wire);
  ExpectFatalError(SendAndCollectUntilClose(server_->port(), wire),
                   util::StatusCode::kFailedPrecondition);
}

TEST_F(ProtocolViolationTest, UnknownFrameTypeIsFatal) {
  // length=1 (type only), type=200.
  const std::vector<uint8_t> wire = {1, 0, 0, 0, 200};
  ExpectFatalError(SendAndCollectUntilClose(server_->port(), wire),
                   util::StatusCode::kInvalidArgument);
}

TEST_F(ProtocolViolationTest, ZeroLengthFrameIsFatal) {
  const std::vector<uint8_t> wire = {0, 0, 0, 0};
  ExpectFatalError(SendAndCollectUntilClose(server_->port(), wire),
                   util::StatusCode::kInvalidArgument);
}

TEST_F(ProtocolViolationTest, TickForUnknownStreamIsFatal) {
  StreamClient client(ClientOptionsFor(*server_));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Tick(42, 1.0).ok());  // Buffered, fire-and-forget.
  ASSERT_TRUE(client.Flush().ok());
  // The server kills the session; the next request observes it.
  auto drained = client.Drain();
  EXPECT_FALSE(drained.ok());
}

TEST(NetServerBackpressureTest, SlowSubscriberIsDisconnected) {
  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = 1;
  ShardedMonitor monitor(monitor_options);
  int64_t stream = monitor.AddStream("s");
  // A long query name fattens every MATCH_EVENT frame, so one drain burst
  // overflows the output cap deterministically — before the kernel socket
  // buffer can soak anything up.
  const std::string query_name(64, 'q');
  ASSERT_TRUE(
      monitor.AddQuery(stream, query_name, {1.0, 2.0, 3.0}, Eps(0.25)).ok());
  monitor.Start();

  StreamServerOptions server_options;
  server_options.max_output_buffer_bytes = 2048;
  StreamServer server(&monitor, server_options);
  ASSERT_TRUE(server.Start().ok());

  // Subscribes, then never reads another byte.
  StreamClient subscriber(ClientOptionsFor(server));
  ASSERT_TRUE(subscriber.Connect().ok());
  ASSERT_TRUE(subscriber.SubscribeMatches().ok());

  StreamClient feeder(ClientOptionsFor(server));
  ASSERT_TRUE(feeder.Connect().ok());
  auto stream_id = feeder.OpenStream("s");
  ASSERT_TRUE(stream_id.ok());
  // Each {1,2,3,9} occurrence commits a match on the 9; 60 occurrences in
  // one batch fan out in a single drain burst (~160 bytes each >> 2 KiB).
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) {
    values.insert(values.end(), {1.0, 2.0, 3.0, 9.0});
  }
  ASSERT_TRUE(feeder.TickBatch(*stream_id, values).ok());
  auto drained = feeder.Drain();
  ASSERT_TRUE(drained.ok()) << "ingest must survive a slow subscriber";

  const int64_t deadline = util::Stopwatch::NowNanos() + 5'000'000'000;
  while (server.slow_disconnects() == 0 &&
         util::Stopwatch::NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.slow_disconnects(), 1);

  feeder.Close();
  subscriber.Close();
  server.Stop();
  monitor.Stop();
}

// tsan target: concurrent clients doing connect / admin / tick / drain
// while another thread scrapes the published introspection snapshots.
TEST(NetServerConcurrencyTest, ConcurrentClientsAndScrapes) {
  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = 4;
  monitor_options.enable_introspection = true;
  ShardedMonitor monitor(monitor_options);
  monitor.Start();
  StreamServerOptions server_options;
  server_options.publish_interval_ms = 0.0;
  StreamServer server(&monitor, server_options);
  server.SetCheckpointFn([&monitor]() -> util::StatusOr<uint64_t> {
    return static_cast<uint64_t>(monitor.SerializeState().size());
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::vector<util::Status> results(kClients, util::Status::Ok());
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t]() {
      auto fail = [&](const util::Status& status) {
        results[static_cast<size_t>(t)] = status;
        ++done;
      };
      StreamClient client(ClientOptionsFor(server));
      util::Status status = client.Connect();
      if (!status.ok()) return fail(status);
      auto stream = client.OpenStream("stream-" + std::to_string(t));
      if (!stream.ok()) return fail(stream.status());
      auto query = client.AddQuery(*stream, "query-" + std::to_string(t),
                                   {1.0, 2.0, 1.0}, Eps(1.0));
      if (!query.ok()) return fail(query.status());
      status = client.SubscribeMatches();
      if (!status.ok()) return fail(status);
      util::Rng rng(static_cast<uint64_t>(t) + 1);
      for (int round = 0; round < 15; ++round) {
        std::vector<double> values;
        for (int i = 0; i < 40; ++i) {
          values.push_back(static_cast<double>(rng.UniformInt(0, 3)));
        }
        status = client.TickBatch(*stream, values);
        if (!status.ok()) return fail(status);
        if (round % 5 == 4) {
          auto drained = client.Drain();
          if (!drained.ok()) return fail(drained.status());
          auto listed = client.ListQueries();
          if (!listed.ok()) return fail(listed.status());
        }
      }
      auto checkpoint = client.Checkpoint();
      if (!checkpoint.ok()) return fail(checkpoint.status());
      auto removed = client.RemoveQuery(*query);
      if (!removed.ok()) return fail(removed.status());
      client.Close();
      ++done;
    });
  }

  // Scrape the thread-safe snapshots while the clients hammer the server.
  while (done.load() < kClients) {
    (void)monitor.PublishedMetricsSnapshot();
    (void)monitor.HealthSnapshot();
    (void)server.MetricsSnapshot();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kClients; ++t) {
    EXPECT_TRUE(results[static_cast<size_t>(t)].ok())
        << "client " << t << ": "
        << results[static_cast<size_t>(t)].ToString();
  }
  EXPECT_EQ(server.total_connections(), kClients);

  server.Stop();
  monitor.Stop();
}

// The server's spring_net_* families splice into the monitor's published
// metrics via SetAuxMetricsProvider — one /metrics endpoint for both.
TEST(NetServerMetricsTest, NetFamiliesSpliceIntoMonitorSnapshot) {
  ShardedMonitorOptions monitor_options;
  monitor_options.num_workers = 2;
  monitor_options.enable_introspection = true;
  ShardedMonitor monitor(monitor_options);
  StreamServerOptions server_options;
  server_options.publish_interval_ms = 0.0;
  StreamServer server(&monitor, server_options);
  monitor.SetAuxMetricsProvider(
      [&server]() { return server.MetricsSnapshot(); });
  monitor.Start();
  ASSERT_TRUE(server.Start().ok());

  StreamClient client(ClientOptionsFor(server));
  ASSERT_TRUE(client.Connect().ok());
  auto stream = client.OpenStream("s");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(client.AddQuery(*stream, "q", {1.0, 2.0, 3.0}, Eps(0.5)).ok());
  ASSERT_TRUE(client.SubscribeMatches().ok());
  const std::vector<double> ticks = {1.0, 2.0, 3.0, 9.0, 9.0};
  ASSERT_TRUE(client.TickBatch(*stream, ticks).ok());
  ASSERT_TRUE(client.Drain().ok());

  bool found = false;
  const int64_t deadline = util::Stopwatch::NowNanos() + 5'000'000'000;
  while (!found && util::Stopwatch::NowNanos() < deadline) {
    obs::MetricsSnapshot snapshot = monitor.PublishedMetricsSnapshot();
    found = snapshot.Find("spring_net_connections") != nullptr &&
            snapshot.Find("spring_net_frames_total") != nullptr &&
            snapshot.Find("spring_net_bytes_total") != nullptr;
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(found) << "spring_net_* families missing from merged snapshot";

  obs::MetricsSnapshot direct = server.MetricsSnapshot();
  const obs::FamilySnapshot* frames = direct.Find("spring_net_frames_total");
  ASSERT_NE(frames, nullptr);
  EXPECT_FALSE(frames->series.empty());

  client.Close();
  server.Stop();
  monitor.Stop();
}

}  // namespace
}  // namespace net
}  // namespace springdtw
