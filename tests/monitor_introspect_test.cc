// Tests for the ShardedMonitor introspection surface: the staleness
// watchdog, the published pipeline-profiler metrics, the /healthz HTTP
// acceptance path, and the zero-cost-when-disabled discipline.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "obs/alert.h"
#include "obs/introspection_server.h"
#include "obs/metrics.h"
#include "util/memory.h"

namespace springdtw {
namespace monitor {
namespace {

core::SpringOptions MatchingOptions() {
  core::SpringOptions options;
  options.epsilon = 0.5;
  return options;
}

core::SpringOptions NonMatchingOptions() {
  core::SpringOptions options;
  options.epsilon = 1e-9;  // random-walk data never qualifies
  return options;
}

/// Stream with the query {1, 2, 3} planted every 50 ticks on a flat ramp.
std::vector<double> PlantedStream(int64_t ticks) {
  std::vector<double> stream(static_cast<size_t>(ticks), 9.0);
  for (int64_t t = 0; t + 3 < ticks; t += 50) {
    stream[static_cast<size_t>(t + 1)] = 1.0;
    stream[static_cast<size_t>(t + 2)] = 2.0;
    stream[static_cast<size_t>(t + 3)] = 3.0;
  }
  return stream;
}

/// Blocking GET against 127.0.0.1:`port`; returns the raw response.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET ";
  request += path;
  request += " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buffer[2048];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

/// Finds the worker that processes `stream_id` by diffing per-worker tick
/// counts around one push (introspection snapshots expose the counters).
int64_t WorkerOf(ShardedMonitor& monitor, int64_t stream_id) {
  const obs::StatusReport before = monitor.StatusSnapshot();
  EXPECT_TRUE(monitor.Push(stream_id, 9.0).ok());
  monitor.Drain();
  const obs::StatusReport after = monitor.StatusSnapshot();
  for (size_t w = 0; w < after.workers.size(); ++w) {
    if (after.workers[w].ticks > before.workers[w].ticks) {
      return static_cast<int64_t>(w);
    }
  }
  return -1;
}

TEST(MonitorIntrospectTest, DisabledMonitorReportsDisabledHealth) {
  ShardedMonitor monitor;
  EXPECT_EQ(monitor.introspection_port(), -1);
  const obs::HealthReport health = monitor.HealthSnapshot();
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.state, "disabled");
  EXPECT_TRUE(health.workers.empty());
  EXPECT_TRUE(monitor.PublishedMetricsSnapshot().families.empty());
}

TEST(MonitorIntrospectTest, WatchdogFlipsStarvedWorkerToStaleAndBack) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.enable_introspection = true;
  options.staleness_budget_ms = 300.0;
  options.publish_interval_ms = 20.0;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);

  std::vector<int64_t> stream_ids;
  for (int i = 0; i < 16; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              NonMatchingOptions())
                    .ok());
  }
  monitor.Start();

  // Warm every stream so both workers become ever-active (a never-active
  // worker reports "idle", not "stale").
  for (const int64_t id : stream_ids) {
    ASSERT_TRUE(monitor.Push(id, 9.0).ok());
  }
  monitor.Drain();
  {
    const obs::StatusReport status = monitor.StatusSnapshot();
    ASSERT_EQ(status.workers.size(), 2u);
    ASSERT_GT(status.workers[0].ticks, 0) << "hash spread left worker 0 idle";
    ASSERT_GT(status.workers[1].ticks, 0) << "hash spread left worker 1 idle";
  }
  EXPECT_TRUE(monitor.HealthSnapshot().healthy);

  const int64_t fed_worker = WorkerOf(monitor, stream_ids[0]);
  ASSERT_GE(fed_worker, 0);
  const int64_t starved_worker = 1 - fed_worker;

  // Keep feeding only stream 0's worker; the other worker's feed is dead.
  // After the staleness budget elapses the watchdog must flip exactly the
  // starved worker while the fed one stays "ok".
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(900);
  obs::HealthReport health;
  bool flipped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(monitor.Push(stream_ids[0], 9.0).ok());
    monitor.Drain();
    health = monitor.HealthSnapshot();
    if (!health.healthy) {
      flipped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(flipped) << "watchdog never flipped within 3x the budget";
  EXPECT_EQ(health.state, "stale");
  EXPECT_EQ(health.workers[static_cast<size_t>(starved_worker)].state,
            "stale");
  EXPECT_FALSE(health.workers[static_cast<size_t>(starved_worker)].healthy);
  EXPECT_GT(
      health.workers[static_cast<size_t>(starved_worker)].ms_since_progress,
      options.staleness_budget_ms);
  EXPECT_EQ(health.workers[static_cast<size_t>(fed_worker)].state, "ok");

  // Reviving the dead feed recovers the verdict.
  for (const int64_t id : stream_ids) {
    ASSERT_TRUE(monitor.Push(id, 9.0).ok());
  }
  monitor.Drain();
  const obs::HealthReport recovered = monitor.HealthSnapshot();
  EXPECT_TRUE(recovered.healthy) << "state=" << recovered.state;
  EXPECT_EQ(recovered.state, "ok");

  monitor.Stop();
}

TEST(MonitorIntrospectTest, PublishedMetricsCarryStageAndRingFamilies) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.enable_introspection = true;
  options.publish_interval_ms = 0.0;  // republish on every message
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);

  std::vector<int64_t> stream_ids;
  for (int i = 0; i < 4; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              MatchingOptions())
                    .ok());
  }
  const std::vector<double> stream = PlantedStream(2000);
  monitor.Start();
  for (const double x : stream) {
    for (const int64_t id : stream_ids) {
      ASSERT_TRUE(monitor.Push(id, x).ok());
    }
  }
  const int64_t delivered = monitor.FlushAll();
  ASSERT_GT(delivered, 0) << "workload must produce matches";

  const obs::MetricsSnapshot published = monitor.PublishedMetricsSnapshot();
  const obs::FamilySnapshot* stage =
      published.Find("spring_stage_latency_nanos");
  ASSERT_NE(stage, nullptr);
  // All four pipeline stages must have observations: router_enqueue and
  // delivery_delay from the router registry, ring_residency and
  // worker_pass from the workers.
  bool saw[4] = {false, false, false, false};
  const char* kStages[4] = {"router_enqueue", "ring_residency",
                            "worker_pass", "delivery_delay"};
  for (const auto& series : stage->series) {
    for (const auto& label : series.labels) {
      if (label.key != "stage") continue;
      for (int s = 0; s < 4; ++s) {
        if (label.value == kStages[s] && series.histogram.count > 0) {
          saw[s] = true;
        }
      }
    }
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(saw[s]) << "no observations for stage " << kStages[s];
  }

  const obs::FamilySnapshot* occupancy =
      published.Find("spring_ring_occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_EQ(occupancy->series.size(), 2u) << "one gauge per worker ring";
  const obs::FamilySnapshot* capacity =
      published.Find("spring_ring_capacity");
  ASSERT_NE(capacity, nullptr);
  EXPECT_NE(published.Find("spring_ring_blocked_pushes_total"), nullptr);

  // The merged live snapshot carries the same families.
  const obs::MetricsSnapshot merged = monitor.MergedMetricsSnapshot();
  EXPECT_NE(merged.Find("spring_stage_latency_nanos"), nullptr);
  EXPECT_NE(merged.Find("spring_ring_occupancy"), nullptr);

  // Matches flowed, so /tracez has events and /statusz counts them.
  const obs::TracezReport traces = monitor.PublishedTraces();
  EXPECT_FALSE(traces.events.empty());
  const obs::StatusReport status = monitor.StatusSnapshot();
  EXPECT_EQ(status.role, "sharded_monitor");
  EXPECT_EQ(status.matches_delivered, delivered);
  EXPECT_EQ(status.ticks_ingested,
            static_cast<int64_t>(stream.size() * stream_ids.size()));

  monitor.Stop();
}

TEST(MonitorIntrospectTest, HealthzEndpointFlipsTo503WhenFeedDies) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.introspect_port = 0;  // ephemeral; implies enable_introspection
  options.staleness_budget_ms = 300.0;
  options.publish_interval_ms = 20.0;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  ASSERT_GT(monitor.introspection_port(), 0);

  std::vector<int64_t> stream_ids;
  for (int i = 0; i < 16; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              NonMatchingOptions())
                    .ok());
  }
  monitor.Start();
  for (const int64_t id : stream_ids) {
    ASSERT_TRUE(monitor.Push(id, 9.0).ok());
  }
  monitor.Drain();

  const int port = monitor.introspection_port();
  const std::string live = HttpGet(port, "/healthz");
  EXPECT_NE(live.find("HTTP/1.1 200 OK"), std::string::npos) << live;

  // Kill every feed: both ever-active workers go silent past the budget.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
  std::string stale;
  bool flipped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    stale = HttpGet(port, "/healthz");
    if (stale.find("HTTP/1.1 503") != std::string::npos) {
      flipped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(flipped) << "healthz never flipped to 503: " << stale;
  EXPECT_NE(stale.find("\"state\":\"stale\""), std::string::npos) << stale;

  // /metrics scrapes work over the same server.
  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("spring_stage_latency_nanos"), std::string::npos);
  EXPECT_NE(metrics.find("spring_ring_occupancy"), std::string::npos);

  monitor.Stop();
}

TEST(MonitorIntrospectTest, SpanQueryzStreamzEndpointsServeJson) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.introspect_port = 0;
  options.publish_interval_ms = 0.0;
  options.span_sample_every = 8;
  options.span_ring_capacity = 128;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t stream_id = monitor.AddStream("s0");
  ASSERT_TRUE(
      monitor.AddQuery(stream_id, "q0", {1.0, 2.0, 3.0}, MatchingOptions())
          .ok());
  monitor.Start();
  for (const double x : PlantedStream(1000)) {
    ASSERT_TRUE(monitor.Push(stream_id, x).ok());
  }
  monitor.Drain();

  const int port = monitor.introspection_port();
  ASSERT_GT(port, 0);

  const std::string spanz = HttpGet(port, "/spanz");
  EXPECT_NE(spanz.find("HTTP/1.1 200 OK"), std::string::npos) << spanz;
  EXPECT_NE(spanz.find("\"spans\":["), std::string::npos) << spanz;
  EXPECT_NE(spanz.find("\"server_recv\":"), std::string::npos)
      << "1000 ticks at 1-in-8 sampling must complete spans";
  EXPECT_NE(spanz.find("\"dropped\":"), std::string::npos);

  const std::string queryz = HttpGet(port, "/queryz");
  EXPECT_NE(queryz.find("HTTP/1.1 200 OK"), std::string::npos) << queryz;
  EXPECT_NE(queryz.find("\"name\":\"q0\""), std::string::npos) << queryz;
  EXPECT_NE(queryz.find("\"cells\":3000"), std::string::npos)
      << "m=3 x 1000 ticks: " << queryz;

  const std::string streamz = HttpGet(port, "/streamz");
  EXPECT_NE(streamz.find("HTTP/1.1 200 OK"), std::string::npos) << streamz;
  EXPECT_NE(streamz.find("\"name\":\"s0\""), std::string::npos) << streamz;
  EXPECT_NE(streamz.find("\"queries\":1"), std::string::npos) << streamz;

  // The e2e stage histograms and the trace drop counter ride /metrics.
  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("spring_e2e_latency_nanos"), std::string::npos);
  EXPECT_NE(metrics.find("spring_trace_dropped_total"), std::string::npos);

  monitor.Stop();
}

TEST(MonitorIntrospectTest, DisabledSpanPathAddsNoAllocationsToRouterPush) {
  // The span/cost hooks ride the router's Push path; with introspection
  // off (the default) they must cost nothing — no clock reads matter here,
  // but allocations are detectable and must be zero in steady state.
  ShardedMonitor monitor;
  CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t stream_id = monitor.AddStream("s");
  ASSERT_TRUE(
      monitor.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, NonMatchingOptions())
          .ok());
  monitor.Start();
  // Warm up past ring growth and first-touch faults, and drain so the
  // worker is idle when measurement starts.
  for (int64_t t = 0; t < 2048; ++t) {
    ASSERT_TRUE(monitor.Push(stream_id, 9.0 + static_cast<double>(t % 7)).ok());
  }
  monitor.Drain();
  {
    util::ScopedAllocationCheck check;
    for (int64_t t = 0; t < 4096; ++t) {
      ASSERT_TRUE(
          monitor.Push(stream_id, 9.0 + static_cast<double>(t % 7)).ok());
    }
    EXPECT_EQ(check.Allocations(), 0);
    EXPECT_EQ(check.Bytes(), 0);
  }
  monitor.Drain();
  monitor.Stop();
}

TEST(MonitorIntrospectTest, DisabledProfilerAddsNoAllocationsToIngest) {
  // The zero-cost discipline: with no observability attached the engine's
  // push path — including all PR 4 profiler hooks — must not allocate in
  // steady state.
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream_id = engine.AddStream("s");
  ASSERT_TRUE(
      engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, NonMatchingOptions())
          .ok());
  // Warm up: first pushes may fault in matcher state.
  for (int64_t t = 0; t < 512; ++t) {
    ASSERT_TRUE(engine.Push(stream_id, 9.0 + static_cast<double>(t % 7)).ok());
  }
  util::ScopedAllocationCheck check;
  for (int64_t t = 0; t < 4096; ++t) {
    ASSERT_TRUE(engine.Push(stream_id, 9.0 + static_cast<double>(t % 7)).ok());
  }
  EXPECT_EQ(check.Allocations(), 0);
  EXPECT_EQ(check.Bytes(), 0);
}

TEST(MonitorIntrospectTest, TimezAlertzEndpointsServeJsonAndGateHealthz) {
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.introspect_port = 0;
  options.publish_interval_ms = 0.0;  // every barrier folds the timeline
  options.enable_timeline = true;
  // A 503 in this test can only mean "alerting" — staleness never trips.
  options.staleness_budget_ms = 60000.0;
  auto rule =
      obs::ParseAlertRule("alert fed page value(spring_ticks_total) > 100");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  options.alert_rules.push_back(*std::move(rule));
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t stream_id = monitor.AddStream("s0");
  ASSERT_TRUE(
      monitor.AddQuery(stream_id, "q0", {1.0, 2.0, 3.0}, NonMatchingOptions())
          .ok());
  monitor.Start();
  const int port = monitor.introspection_port();
  ASSERT_GT(port, 0);

  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(monitor.Push(stream_id, 9.0).ok());
  }
  monitor.FlushAll();
  // 50 ticks < 100: the rule is armed but inactive, health is green.
  EXPECT_NE(HttpGet(port, "/healthz").find("HTTP/1.1 200 OK"),
            std::string::npos);
  std::string alertz = HttpGet(port, "/alertz");
  EXPECT_NE(alertz.find("HTTP/1.1 200 OK"), std::string::npos) << alertz;
  EXPECT_NE(alertz.find("\"name\":\"fed\""), std::string::npos) << alertz;
  EXPECT_NE(alertz.find("\"state\":\"inactive\""), std::string::npos)
      << alertz;
  EXPECT_NE(alertz.find("\"firing\":0"), std::string::npos) << alertz;

  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(monitor.Push(stream_id, 9.0).ok());
  }
  monitor.FlushAll();
  // 250 ticks > 100 with no hold: the page rule fires on the barrier's
  // evaluation pass and must gate /healthz as "alerting" (not "stale").
  alertz = HttpGet(port, "/alertz");
  EXPECT_NE(alertz.find("\"state\":\"firing\""), std::string::npos) << alertz;
  EXPECT_NE(alertz.find("\"firing_page\":1"), std::string::npos) << alertz;
  const std::string healthz = HttpGet(port, "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 503"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"state\":\"alerting\""), std::string::npos)
      << healthz;

  // /timez serves the channel catalog and per-metric series documents.
  const std::string catalog = HttpGet(port, "/timez");
  EXPECT_NE(catalog.find("HTTP/1.1 200 OK"), std::string::npos) << catalog;
  EXPECT_NE(catalog.find("\"tiers\":["), std::string::npos) << catalog;
  EXPECT_NE(catalog.find("spring_ticks_total"), std::string::npos) << catalog;
  const std::string series =
      HttpGet(port, "/timez?metric=spring_ticks_total&window=120");
  EXPECT_NE(series.find("\"metric\":\"spring_ticks_total\""),
            std::string::npos)
      << series;
  EXPECT_NE(series.find("\"series\":["), std::string::npos) << series;

  monitor.Stop();
}

TEST(MonitorIntrospectTest, DisabledTimelineIsZeroCostAndServesEmptyDocs) {
  // Timeline + alerting off (the default, even with introspection on): the
  // publish-cadence hook must be an allocation-free no-op and the
  // endpoints must degrade to empty documents rather than 404.
  ShardedMonitorOptions options;
  options.num_workers = 2;
  options.enable_introspection = true;
  ShardedMonitor monitor(options);
  EXPECT_FALSE(monitor.timeline_enabled());
  CollectSink sink;
  monitor.AddSink(&sink);
  const int64_t stream_id = monitor.AddStream("s");
  ASSERT_TRUE(
      monitor.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, NonMatchingOptions())
          .ok());
  monitor.Start();
  for (int64_t t = 0; t < 512; ++t) {
    ASSERT_TRUE(monitor.Push(stream_id, 9.0).ok());
  }
  monitor.Drain();
  {
    util::ScopedAllocationCheck check;
    monitor.PollTimeline(/*force=*/true);
    EXPECT_EQ(check.Allocations(), 0);
    EXPECT_EQ(check.Bytes(), 0);
  }
  EXPECT_EQ(monitor.TimezJson(""),
            "{\"tiers\":[],\"records\":0,\"dropped_channels\":0,"
            "\"channels\":[]}");
  EXPECT_EQ(monitor.AlertzJson(),
            "{\"rules\":[],\"firing\":0,\"firing_page\":0}");
  monitor.Stop();
}

TEST(MonitorIntrospectTest, PendingCandidateCountSeesOpenCandidates) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream_id = engine.AddStream("s");
  ASSERT_TRUE(
      engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, MatchingOptions())
          .ok());
  EXPECT_EQ(engine.PendingCandidateCount(), 0);
  // Feed the query prefix: a candidate opens (d_m <= epsilon) but cannot
  // report until the stream moves away from it.
  ASSERT_TRUE(engine.Push(stream_id, 1.0).ok());
  ASSERT_TRUE(engine.Push(stream_id, 2.0).ok());
  ASSERT_TRUE(engine.Push(stream_id, 3.0).ok());
  EXPECT_EQ(engine.PendingCandidateCount(), 1);
  engine.FlushAll();
  EXPECT_EQ(engine.PendingCandidateCount(), 0);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
