#include "core/spring.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/match.h"

namespace springdtw {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Runs the matcher over a whole vector, collecting reports (+ flush).
std::vector<Match> RunAll(SpringMatcher& matcher,
                          const std::vector<double>& stream,
                          bool flush = true) {
  std::vector<Match> out;
  Match match;
  for (double x : stream) {
    if (matcher.Update(x, &match)) out.push_back(match);
  }
  if (flush && matcher.Flush(&match)) out.push_back(match);
  return out;
}

// ---------------------------------------------------------------------------
// The paper's worked example (Example 1 / Figure 5), checked cell-for-cell.
// X = (5, 12, 6, 10, 6, 5, 13), Y = (11, 6, 9, 4), epsilon = 15.
// All positions below are 0-based (the paper's are 1-based).
// ---------------------------------------------------------------------------

class Figure5Test : public ::testing::Test {
 protected:
  const std::vector<double> x_{5, 12, 6, 10, 6, 5, 13};
  const std::vector<double> y_{11, 6, 9, 4};

  // Paper Figure 5, distances d(t, i), rows i = 1..4, columns t = 1..7.
  const double expected_d_[4][7] = {
      {36, 1, 25, 1, 25, 36, 4},      // i=1 (y=11)
      {37, 37, 1, 17, 1, 2, 51},      // i=2 (y=6)
      {53, 46, 10, 2, 10, 17, 18},    // i=3 (y=9)
      {54, 110, 14, 38, 6, 7, 88},    // i=4 (y=4)
  };
  // Paper Figure 5, starting positions s(t, i), converted to 0-based.
  const int64_t expected_s_[4][7] = {
      {0, 1, 2, 3, 4, 5, 6},
      {0, 1, 1, 3, 3, 3, 3},
      {0, 1, 1, 1, 3, 3, 3},
      {0, 1, 1, 1, 1, 1, 1},
  };
};

TEST_F(Figure5Test, StwmCellsMatchThePaper) {
  SpringOptions options;
  // A negative threshold disables disjoint-query reporting entirely, so no
  // cell-killing reset can disturb the raw STWM recurrences under test.
  options.epsilon = -1.0;
  SpringMatcher matcher(y_, options);
  for (size_t t = 0; t < x_.size(); ++t) {
    matcher.Update(x_[t], nullptr);
    const auto d = matcher.LastRowDistances();
    const auto s = matcher.LastRowStarts();
    EXPECT_DOUBLE_EQ(d[0], 0.0);
    EXPECT_EQ(s[0], static_cast<int64_t>(t));
    for (size_t i = 1; i <= 4; ++i) {
      EXPECT_DOUBLE_EQ(d[i], expected_d_[i - 1][t])
          << "cell t=" << t << " i=" << i;
      EXPECT_EQ(s[i], expected_s_[i - 1][t])
          << "cell t=" << t << " i=" << i;
    }
  }
}

TEST_F(Figure5Test, ReportsTheOptimalSubsequenceAtTheRightTime) {
  SpringOptions options;
  options.epsilon = 15.0;
  SpringMatcher matcher(y_, options);
  std::vector<Match> reports = RunAll(matcher, x_, /*flush=*/false);
  ASSERT_EQ(reports.size(), 1u);
  // X[2:5] in the paper's 1-based indexing = [1, 4] here, distance 6,
  // reported while processing the 7th value (tick 6).
  EXPECT_EQ(reports[0].start, 1);
  EXPECT_EQ(reports[0].end, 4);
  EXPECT_DOUBLE_EQ(reports[0].distance, 6.0);
  EXPECT_EQ(reports[0].report_time, 6);
}

TEST_F(Figure5Test, CandidateIsPendingNotReportedAtT4) {
  // At the paper's t=4 the candidate X[2:3] must not be reported because
  // d(4,3) = 2 < 14 shows it can still be replaced.
  SpringOptions options;
  options.epsilon = 15.0;
  SpringMatcher matcher(y_, options);
  Match match;
  EXPECT_FALSE(matcher.Update(5, &match));
  EXPECT_FALSE(matcher.Update(12, &match));
  EXPECT_FALSE(matcher.Update(6, &match));  // Candidate X[1:2] captured here.
  EXPECT_TRUE(matcher.has_pending_candidate());
  EXPECT_FALSE(matcher.Update(10, &match));  // ... and not reported here.
  EXPECT_TRUE(matcher.has_pending_candidate());
}

TEST_F(Figure5Test, GroupRangeCoversAllQualifyingSubsequences) {
  SpringOptions options;
  options.epsilon = 15.0;
  SpringMatcher matcher(y_, options);
  std::vector<Match> reports = RunAll(matcher, x_, /*flush=*/false);
  ASSERT_EQ(reports.size(), 1u);
  // Qualifying d_m ticks: t=2 (d=14, s=1), t=4 (d=6, s=1), t=5 (d=7, s=1).
  EXPECT_EQ(reports[0].group_start, 1);
  EXPECT_EQ(reports[0].group_end, 5);
}

// ---------------------------------------------------------------------------
// Basic behaviours.
// ---------------------------------------------------------------------------

TEST(SpringMatcherTest, ExactOccurrenceHasZeroDistance) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(y, options);
  const std::vector<double> x{9.0, 9.0, 1.0, 2.0, 3.0, 9.0, 9.0};
  std::vector<Match> reports = RunAll(matcher, x);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].start, 2);
  EXPECT_EQ(reports[0].end, 4);
  EXPECT_DOUBLE_EQ(reports[0].distance, 0.0);
}

TEST(SpringMatcherTest, TimeWarpedOccurrenceStillMatchesExactly) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(y, options);
  // The pattern with elements repeated (stretched): DTW distance 0. Both
  // [1, 6] and [2, 6] achieve 0; Equation (8)'s tie-break order propagates
  // the later start (the "(t, i-1)" predecessor is preferred).
  const std::vector<double> x{9.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 9.0};
  std::vector<Match> reports = RunAll(matcher, x);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].start, 2);
  EXPECT_EQ(reports[0].end, 6);
  EXPECT_DOUBLE_EQ(reports[0].distance, 0.0);
}

TEST(SpringMatcherTest, BestMatchTracksGlobalMinimum) {
  const std::vector<double> y{5.0};
  SpringOptions options;
  options.epsilon = -1.0;  // Best-match only.
  SpringMatcher matcher(y, options);
  const std::vector<double> x{0.0, 4.0, 7.0, 5.5, 9.0};
  for (double v : x) matcher.Update(v, nullptr);
  ASSERT_TRUE(matcher.has_best());
  // Closest single value to 5 is 5.5 at tick 3 (squared distance 0.25).
  EXPECT_EQ(matcher.best().start, 3);
  EXPECT_EQ(matcher.best().end, 3);
  EXPECT_DOUBLE_EQ(matcher.best().distance, 0.25);
}

TEST(SpringMatcherTest, NoReportWhenNothingQualifies) {
  SpringOptions options;
  options.epsilon = 0.01;
  SpringMatcher matcher(std::vector<double>{100.0, 200.0}, options);
  const std::vector<double> x{0.0, 1.0, 2.0, 1.0, 0.0};
  EXPECT_TRUE(RunAll(matcher, x).empty());
  EXPECT_FALSE(matcher.has_pending_candidate());
}

TEST(SpringMatcherTest, FlushReportsPendingCandidate) {
  const std::vector<double> y{1.0, 2.0};
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(y, options);
  Match match;
  // Stream ends immediately after a perfect match: no future tick can close
  // the group, so only Flush() emits it.
  EXPECT_FALSE(matcher.Update(1.0, &match));
  EXPECT_FALSE(matcher.Update(2.0, &match));
  EXPECT_TRUE(matcher.has_pending_candidate());
  ASSERT_TRUE(matcher.Flush(&match));
  EXPECT_EQ(match.start, 0);
  EXPECT_EQ(match.end, 1);
  EXPECT_DOUBLE_EQ(match.distance, 0.0);
  EXPECT_EQ(match.report_time, 2);
  // A second flush has nothing to say.
  EXPECT_FALSE(matcher.Flush(&match));
}

TEST(SpringMatcherTest, ResetRestartsTheStream) {
  const std::vector<double> y{1.0, 2.0};
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(y, options);
  matcher.Update(1.0, nullptr);
  matcher.Update(2.0, nullptr);
  matcher.Reset();
  EXPECT_EQ(matcher.ticks_processed(), 0);
  EXPECT_FALSE(matcher.has_best());
  EXPECT_FALSE(matcher.has_pending_candidate());
  // Behaves like a fresh matcher.
  const std::vector<double> x{1.0, 2.0, 9.0};
  std::vector<Match> reports = RunAll(matcher, x);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].start, 0);
}

TEST(SpringMatcherTest, ReportsAreDisjointAndOrdered) {
  const std::vector<double> y{1.0, 2.0, 1.0};
  SpringOptions options;
  options.epsilon = 0.75;
  SpringMatcher matcher(y, options);
  std::vector<double> x;
  for (int rep = 0; rep < 5; ++rep) {
    x.insert(x.end(), {9.0, 9.0, 1.0, 2.0, 1.0, 9.0, 9.0});
  }
  std::vector<Match> reports = RunAll(matcher, x);
  ASSERT_EQ(reports.size(), 5u);
  for (size_t i = 0; i < reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(reports[i].distance, 0.0);
    EXPECT_GE(reports[i].report_time, reports[i].end);
    if (i > 0) {
      EXPECT_FALSE(reports[i].Overlaps(reports[i - 1]));
      EXPECT_GT(reports[i].start, reports[i - 1].end);
    }
  }
}

TEST(SpringMatcherTest, QueryLengthOneDegeneratesToValueMatching) {
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(std::vector<double>{3.0}, options);
  const std::vector<double> x{0.0, 3.2, 10.0};
  std::vector<Match> reports = RunAll(matcher, x);
  ASSERT_EQ(reports.size(), 1u);
  // DTW can stretch: both elements may map to the single query value, but
  // the optimum here is the singleton [1, 1].
  EXPECT_EQ(reports[0].start, 1);
  EXPECT_EQ(reports[0].end, 1);
  EXPECT_NEAR(reports[0].distance, 0.04, 1e-12);
}

TEST(SpringMatcherTest, StreamShorterThanQueryStillMatches) {
  // Subsequence matching under DTW places no length constraint: a 2-tick
  // stream can match a 4-tick query by stretching.
  SpringOptions options;
  options.epsilon = 0.5;
  SpringMatcher matcher(std::vector<double>{1.0, 1.0, 2.0, 2.0}, options);
  Match match;
  matcher.Update(1.0, &match);
  matcher.Update(2.0, &match);
  ASSERT_TRUE(matcher.Flush(&match));
  EXPECT_DOUBLE_EQ(match.distance, 0.0);
  EXPECT_EQ(match.start, 0);
  EXPECT_EQ(match.end, 1);
}

TEST(SpringMatcherTest, InfiniteEpsilonReportsEverythingEventually) {
  SpringOptions options;
  options.epsilon = kInf;
  SpringMatcher matcher(std::vector<double>{0.0}, options);
  Match match;
  int reports = 0;
  for (int t = 0; t < 100; ++t) {
    if (matcher.Update(1.0, &match)) ++reports;
  }
  // With a constant stream every tick closes the previous single-tick group
  // (nothing upcoming can beat it: ties are not strict improvements), so
  // each tick after the first reports the previous tick's candidate and the
  // last candidate is flushed.
  EXPECT_EQ(reports, 99);
  ASSERT_TRUE(matcher.Flush(&match));
  EXPECT_EQ(match.start, 99);
  EXPECT_EQ(match.end, 99);
}

TEST(SpringMatcherTest, FootprintIsConstantInStreamLength) {
  SpringOptions options;
  options.epsilon = 1.0;
  SpringMatcher matcher(std::vector<double>(256, 0.0), options);
  for (int t = 0; t < 100; ++t) matcher.Update(0.5, nullptr);
  const int64_t bytes_100 = matcher.Footprint().TotalBytes();
  for (int t = 0; t < 10000; ++t) matcher.Update(0.5, nullptr);
  EXPECT_EQ(matcher.Footprint().TotalBytes(), bytes_100);
  // O(m): roughly 4 arrays of (m+1) 8-byte values + the query.
  EXPECT_LT(bytes_100, 64 * 1024);
}

TEST(SpringMatcherDeathTest, EmptyQueryChecks) {
  SpringOptions options;
  EXPECT_DEATH(SpringMatcher(std::vector<double>{}, options), "Check failed");
}

TEST(MatchTest, ToStringAndHelpers) {
  Match m;
  m.start = 3;
  m.end = 7;
  m.distance = 1.5;
  m.report_time = 9;
  EXPECT_EQ(m.length(), 5);
  EXPECT_NE(m.ToString().find("X[3:7]"), std::string::npos);
  Match other;
  other.start = 7;
  other.end = 10;
  EXPECT_TRUE(m.Overlaps(other));
  other.start = 8;
  EXPECT_FALSE(m.Overlaps(other));
}

}  // namespace
}  // namespace core
}  // namespace springdtw
