#include "dtw/lower_bounds.h"

#include <vector>

#include <gtest/gtest.h>

#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "util/random.h"

namespace springdtw {
namespace dtw {
namespace {

std::vector<double> RandomSeq(util::Rng& rng, int64_t n) {
  std::vector<double> out(static_cast<size_t>(n));
  for (double& x : out) x = rng.Uniform(-2.0, 2.0);
  return out;
}

// The defining property of every lower bound: LB(x, y) <= DTW(x, y).
class LowerBoundProperty
    : public ::testing::TestWithParam<LocalDistance> {};

TEST_P(LowerBoundProperty, LbKimNeverExceedsDtw) {
  util::Rng rng(51);
  const LocalDistance distance = GetParam();
  DtwOptions options;
  options.local_distance = distance;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<double> x = RandomSeq(rng, rng.UniformInt(1, 30));
    const std::vector<double> y = RandomSeq(rng, rng.UniformInt(1, 30));
    EXPECT_LE(LbKim(x, y, distance), DtwDistance(x, y, options) + 1e-12)
        << "trial " << trial;
  }
}

TEST_P(LowerBoundProperty, LbYiNeverExceedsDtw) {
  util::Rng rng(52);
  const LocalDistance distance = GetParam();
  DtwOptions options;
  options.local_distance = distance;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<double> x = RandomSeq(rng, rng.UniformInt(1, 30));
    const std::vector<double> y = RandomSeq(rng, rng.UniformInt(1, 30));
    EXPECT_LE(LbYi(x, y, distance), DtwDistance(x, y, options) + 1e-12)
        << "trial " << trial;
  }
}

TEST_P(LowerBoundProperty, LbKeoghNeverExceedsBandedDtw) {
  util::Rng rng(53);
  const LocalDistance distance = GetParam();
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t n = rng.UniformInt(2, 40);
    const int64_t radius = rng.UniformInt(0, 10);
    const std::vector<double> x = RandomSeq(rng, n);
    const std::vector<double> y = RandomSeq(rng, n);
    DtwOptions options;
    options.local_distance = distance;
    options.constraint = GlobalConstraint::kSakoeChiba;
    options.band_radius = radius;
    const Envelope env = ComputeEnvelope(y, radius);
    EXPECT_LE(LbKeogh(x, env, distance),
              DtwDistance(x, y, options) + 1e-12)
        << "trial " << trial << " n=" << n << " r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLocalDistances, LowerBoundProperty,
                         ::testing::Values(LocalDistance::kSquared,
                                           LocalDistance::kAbsolute),
                         [](const auto& info) {
                           return LocalDistanceName(info.param);
                         });

TEST(LbKimTest, ExactOnKnownInput) {
  // x = (0, 5), y = (1, 1): first pair cost 1, last pair cost 16,
  // max-feature (5-1)^2=16, min-feature 1. first+last = 17 dominates.
  const std::vector<double> x{0.0, 5.0};
  const std::vector<double> y{1.0, 1.0};
  EXPECT_DOUBLE_EQ(LbKim(x, y), 17.0);
}

TEST(LbKimTest, SingleElementUsesMaxOfFeatures) {
  EXPECT_DOUBLE_EQ(
      LbKim(std::vector<double>{3.0}, std::vector<double>{1.0}), 4.0);
}

TEST(LbYiTest, ZeroWhenRangesCoincide) {
  // Equal value ranges: no excursion in either direction -> bound is 0.
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 1.5};
  EXPECT_DOUBLE_EQ(LbYi(x, y), 0.0);
}

TEST(LbYiTest, SymmetricDirectionCounts) {
  // x nests inside y's range but y pokes outside x's: the symmetric form
  // still charges y's excursions (each must align to an x value inside
  // x's range).
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{0.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(LbYi(x, y), 1.0 + 1.0);
}

TEST(LbYiTest, CountsExcursionsOutsideRange) {
  // y-range is [0, 1]; x's 3.0 and -1.0 are outside by 2 and 1.
  const std::vector<double> x{0.5, 3.0, -1.0};
  const std::vector<double> y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(LbYi(x, y), 4.0 + 1.0);
}

TEST(LbKeoghTest, ZeroWhenInsideEnvelope) {
  const std::vector<double> y{0.0, 1.0, 0.0, -1.0, 0.0};
  const Envelope env = ComputeEnvelope(y, 2);
  const std::vector<double> x{0.0, 0.5, 0.0, -0.5, 0.0};
  EXPECT_DOUBLE_EQ(LbKeogh(x, env), 0.0);
}

TEST(LbKeoghTest, TighterThanOrEqualToNothingOutside) {
  const std::vector<double> y{0.0, 0.0, 0.0};
  const Envelope env = ComputeEnvelope(y, 0);
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(LbKeogh(x, env), 1.0 + 4.0 + 9.0);
}

TEST(LbKeoghDeathTest, SizeMismatchChecks) {
  const std::vector<double> y{0.0, 1.0, 0.0};
  const Envelope env = ComputeEnvelope(y, 1);
  const std::vector<double> x{0.0, 1.0};  // Wrong length.
  EXPECT_DEATH(LbKeogh(x, env), "Check failed");
}

TEST(LowerBoundOrderingTest, KeoghTighterThanYiOnAverage) {
  // No universal ordering exists between the bounds (LB_Kim's boundary
  // features can dominate on random data), but LB_Keogh's per-element
  // envelope sums should beat LB_Yi's global-range sums on average.
  util::Rng rng(54);
  double yi_sum = 0.0;
  double keogh_sum = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> x = RandomSeq(rng, 32);
    const std::vector<double> y = RandomSeq(rng, 32);
    const Envelope env = ComputeEnvelope(y, 3);
    yi_sum += LbYi(x, y);
    keogh_sum += LbKeogh(x, env);
  }
  EXPECT_GT(keogh_sum, yi_sum);
}

}  // namespace
}  // namespace dtw
}  // namespace springdtw
