// Tests for the match-length-constraint extension (SpringOptions
// max_match_length / min_match_length).

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/spring.h"
#include "core/vector_spring.h"
#include "util/random.h"

namespace springdtw {
namespace core {
namespace {

std::vector<Match> RunAll(SpringMatcher& matcher,
                          const std::vector<double>& stream) {
  std::vector<Match> out;
  Match match;
  for (double x : stream) {
    if (matcher.Update(x, &match)) out.push_back(match);
  }
  if (matcher.Flush(&match)) out.push_back(match);
  return out;
}

std::vector<double> RandomStream(util::Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  double x = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(0.1)) x = rng.Uniform(-2.0, 2.0);
    x += rng.Gaussian(0.0, 0.3);
    v[static_cast<size_t>(t)] = x;
  }
  return v;
}

TEST(MaxMatchLengthTest, MatchesNeverExceedTheCap) {
  util::Rng rng(701);
  const std::vector<double> stream = RandomStream(rng, 500);
  SpringOptions options;
  options.epsilon = 3.0;
  options.max_match_length = 7;
  SpringMatcher matcher({0.0, 0.5, 0.0}, options);
  const std::vector<Match> matches = RunAll(matcher, stream);
  for (const Match& m : matches) {
    EXPECT_LE(m.length(), 7) << m.ToString();
  }
  if (matcher.has_best()) {
    EXPECT_LE(matcher.best().length(), 7);
  }
}

TEST(MaxMatchLengthTest, HugeCapEqualsUnconstrained) {
  util::Rng rng(702);
  const std::vector<double> stream = RandomStream(rng, 300);
  std::vector<double> query{0.0, 1.0, -1.0};
  SpringOptions unconstrained;
  unconstrained.epsilon = 2.0;
  SpringOptions capped = unconstrained;
  capped.max_match_length = 1000000;

  SpringMatcher a(query, unconstrained);
  SpringMatcher b(query, capped);
  Match ma;
  Match mb;
  for (double x : stream) {
    ASSERT_EQ(a.Update(x, &ma), b.Update(x, &mb));
  }
  EXPECT_EQ(a.has_best(), b.has_best());
  if (a.has_best()) {
    EXPECT_DOUBLE_EQ(a.best().distance, b.best().distance);
    EXPECT_EQ(a.best().start, b.best().start);
  }
}

TEST(MaxMatchLengthTest, CapForcesShorterBestWithWorseDistance) {
  // A slow ramp matches a two-point query best when it can stretch wide;
  // capping the length forces a steeper (worse) alignment.
  std::vector<double> stream;
  for (int i = 0; i <= 20; ++i) stream.push_back(0.05 * i);  // 0 .. 1 ramp.
  const std::vector<double> query{0.0, 1.0};

  SpringOptions unconstrained;
  unconstrained.epsilon = -1.0;
  SpringMatcher a(query, unconstrained);
  SpringOptions capped = unconstrained;
  capped.max_match_length = 3;
  SpringMatcher b(query, capped);
  for (double x : stream) {
    a.Update(x, nullptr);
    b.Update(x, nullptr);
  }
  ASSERT_TRUE(a.has_best());
  ASSERT_TRUE(b.has_best());
  EXPECT_LE(b.best().length(), 3);
  EXPECT_GE(b.best().distance, a.best().distance);
}

TEST(MinMatchLengthTest, ShortOptimalMatchesAreFilteredOut) {
  // The same stream and query, with and without a minimum length: the
  // 2-tick optimal match is reported only when it meets the minimum.
  const std::vector<double> stream{9.0, 1.0, 2.0, 9.0};
  const std::vector<double> query{1.0, 2.0};

  SpringOptions loose;
  loose.epsilon = 0.1;
  loose.min_match_length = 2;
  SpringMatcher with_min2(query, loose);
  const std::vector<Match> ok = RunAll(with_min2, stream);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].start, 1);
  EXPECT_EQ(ok[0].end, 2);

  SpringOptions strict = loose;
  strict.min_match_length = 3;
  SpringMatcher with_min3(query, strict);
  EXPECT_TRUE(RunAll(with_min3, stream).empty());
}

TEST(MinMatchLengthTest, ZeroMeansNoMinimum) {
  SpringOptions options;
  options.epsilon = 0.1;
  SpringMatcher matcher({1.0}, options);
  const std::vector<double> stream{9.0, 1.0, 9.0};
  const std::vector<Match> matches = RunAll(matcher, stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length(), 1);
}

TEST(LengthConstraintsTest, VectorMatcherHonorsBothCaps) {
  util::Rng rng(703);
  ts::VectorSeries query(2);
  query.AppendRow(std::vector<double>{0.0, 0.0});
  query.AppendRow(std::vector<double>{1.0, -1.0});
  SpringOptions options;
  options.epsilon = 4.0;
  options.max_match_length = 5;
  options.min_match_length = 2;
  VectorSpringMatcher matcher(query, options);
  Match match;
  std::vector<Match> matches;
  std::vector<double> row(2);
  for (int t = 0; t < 400; ++t) {
    row[0] = rng.Gaussian(0.0, 0.5);
    row[1] = -row[0] + rng.Gaussian(0.0, 0.1);
    if (matcher.Update(row, &match)) matches.push_back(match);
  }
  if (matcher.Flush(&match)) matches.push_back(match);
  for (const Match& m : matches) {
    EXPECT_LE(m.length(), 5);
    EXPECT_GE(m.length(), 2);
  }
}

TEST(LengthConstraintsTest, ConstrainedBestBracketsTheBoundedOracle) {
  // The cap prunes by each cell's *optimal-path* span, so the constrained
  // search is a heuristic subset of all length-bounded alignments: its
  // best can never beat the true bounded optimum, and every result it
  // produces is a genuine alignment of a length-bounded interval.
  util::Rng rng(705);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<double> stream = RandomStream(rng, 30);
    std::vector<double> query(static_cast<size_t>(rng.UniformInt(2, 4)));
    for (double& y : query) y = rng.Uniform(-2.0, 2.0);
    const int64_t cap = rng.UniformInt(2, 8);

    SpringOptions options;
    options.epsilon = -1.0;
    options.max_match_length = cap;
    SpringMatcher matcher(query, options);
    for (double x : stream) matcher.Update(x, nullptr);
    ASSERT_TRUE(matcher.has_best());
    EXPECT_LE(matcher.best().length(), cap);

    // Oracle: minimum DTW distance over subsequences of length <= cap.
    const auto oracle =
        AllSubsequenceDistances(ts::Series(stream), ts::Series(query));
    double bounded_best = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < oracle.size(); ++a) {
      for (size_t len = 0;
           len < oracle[a].size() && static_cast<int64_t>(len) < cap;
           ++len) {
        bounded_best = std::min(bounded_best, oracle[a][len]);
      }
    }
    EXPECT_GE(matcher.best().distance, bounded_best - 1e-9)
        << "trial " << trial;
    // And it is a real alignment of its own (bounded) interval.
    const double own_interval =
        oracle[static_cast<size_t>(matcher.best().start)]
              [static_cast<size_t>(matcher.best().length() - 1)];
    EXPECT_GE(matcher.best().distance, own_interval - 1e-9);
  }
}

TEST(LengthConstraintsTest, ConstrainedBestNeverBeatsUnconstrained) {
  util::Rng rng(704);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> stream = RandomStream(rng, 120);
    std::vector<double> query(static_cast<size_t>(rng.UniformInt(2, 5)));
    for (double& y : query) y = rng.Uniform(-2.0, 2.0);
    SpringOptions base;
    base.epsilon = -1.0;
    SpringOptions capped = base;
    capped.max_match_length = rng.UniformInt(2, 10);

    SpringMatcher a(query, base);
    SpringMatcher b(query, capped);
    for (double x : stream) {
      a.Update(x, nullptr);
      b.Update(x, nullptr);
    }
    ASSERT_TRUE(a.has_best());
    ASSERT_TRUE(b.has_best());
    EXPECT_GE(b.best().distance, a.best().distance - 1e-12);
  }
}

}  // namespace
}  // namespace core
}  // namespace springdtw
