// Concurrency stress for the monitoring layer, written to run under
// ThreadSanitizer (the tsan preset builds exactly this suite plus the rest
// of ctest). MonitorEngine is single-threaded *by design* — the supported
// patterns exercised here are:
//   * shard-per-thread: each ingest thread owns its engine + observability
//     bundle outright (the paper's multi-stream scaling argument);
//   * shared sink: engines in different threads fan matches into one sink
//     behind a mutex (OnMatch runs on the ingest path, so the lock is the
//     sink's, not the engine's);
//   * checkpoint hand-off: one thread serializes, another restores and
//     resumes the stream;
//   * snapshot-while-ingesting: a reporter thread checkpoints and reads
//     gauges under the same mutex that serializes engine access;
//   * sharded monitor: monitor::ShardedMonitor packages shard-per-thread
//     behind SPSC tick queues — the stress case here hammers its
//     router/worker handoff (queue wrap-around, drain barriers, stop and
//     restart) with live ingest, which is where its release/acquire
//     protocol either holds or TSan catches it. The SPSC ring itself is
//     stressed in monitor_spsc_queue_test.cc, also under this preset.
// Any data race here is a real bug in the library (e.g. hidden shared
// state between engine instances), which is precisely what TSan verifies.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/spring.h"
#include "gtest/gtest.h"
#include "monitor/engine.h"
#include "monitor/sharded_monitor.h"
#include "monitor/sink.h"
#include "obs/alert.h"
#include "obs/introspection_server.h"
#include "obs/observability.h"
#include "obs/span.h"

namespace springdtw {
namespace monitor {
namespace {

/// Deterministic per-shard stream: a noisy ramp with planted occurrences
/// of the query {1, 2, 3} every `period` ticks.
std::vector<double> ShardStream(int shard, int64_t ticks) {
  std::vector<double> stream(static_cast<size_t>(ticks), 9.0 + shard);
  const int64_t period = 50;
  for (int64_t t = 0; t + 3 < ticks; t += period) {
    stream[static_cast<size_t>(t + 1)] = 1.0;
    stream[static_cast<size_t>(t + 2)] = 2.0;
    stream[static_cast<size_t>(t + 3)] = 3.0;
  }
  return stream;
}

core::SpringOptions TestOptions() {
  core::SpringOptions options;
  options.epsilon = 0.5;
  return options;
}

/// Runs one shard single-threadedly and returns its match count — the
/// reference the threaded runs must reproduce exactly.
int64_t ReferenceMatchCount(int shard, int64_t ticks) {
  MonitorEngine engine;
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream_id = engine.AddStream("s");
  auto query_id =
      engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, TestOptions());
  EXPECT_TRUE(query_id.ok());
  for (const double x : ShardStream(shard, ticks)) {
    auto pushed = engine.Push(stream_id, x);
    EXPECT_TRUE(pushed.ok());
  }
  engine.FlushAll();
  return static_cast<int64_t>(sink.entries().size());
}

TEST(MonitorConcurrencyTest, ShardPerThreadEnginesAreIndependent) {
  constexpr int kThreads = 4;
  constexpr int64_t kTicks = 2000;

  std::vector<int64_t> expected(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    expected[static_cast<size_t>(i)] = ReferenceMatchCount(i, kTicks);
    ASSERT_GT(expected[static_cast<size_t>(i)], 0);
  }

  std::vector<int64_t> got(kThreads, -1);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &got] {
      // Everything engine-related lives on this thread: engine, sink, and
      // observability bundle (the metrics registry is single-threaded).
      obs::Observability obs;
      MonitorEngine engine;
      engine.AttachObservability(&obs);
      CollectSink sink;
      engine.AddSink(&sink);
      const int64_t stream_id = engine.AddStream("s");
      auto query_id =
          engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, TestOptions());
      if (!query_id.ok()) return;
      for (const double x : ShardStream(i, kTicks)) {
        if (!engine.Push(stream_id, x).ok()) return;
      }
      engine.FlushAll();
      engine.RefreshObservabilityGauges();
      got[static_cast<size_t>(i)] =
          static_cast<int64_t>(sink.entries().size());
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)],
              expected[static_cast<size_t>(i)])
        << "shard " << i;
  }
}

/// MatchSink adapter that makes a CollectSink safe to share across ingest
/// threads: OnMatch takes the mutex. This is the supported way to fan
/// multiple sharded engines into one destination.
class LockedSink : public MatchSink {
 public:
  void OnMatch(const MatchOrigin& origin,
               const core::Match& match) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.OnMatch(origin, match);
  }

  int64_t size() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(inner_.entries().size());
  }

 private:
  std::mutex mutex_;
  CollectSink inner_;
};

TEST(MonitorConcurrencyTest, ShardedEnginesShareOneLockedSink) {
  constexpr int kThreads = 4;
  constexpr int64_t kTicks = 1500;

  int64_t expected_total = 0;
  for (int i = 0; i < kThreads; ++i) {
    expected_total += ReferenceMatchCount(i, kTicks);
  }

  LockedSink shared_sink;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &shared_sink] {
      MonitorEngine engine;
      engine.AddSink(&shared_sink);
      const int64_t stream_id = engine.AddStream("s");
      auto query_id =
          engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, TestOptions());
      if (!query_id.ok()) return;
      for (const double x : ShardStream(i, kTicks)) {
        if (!engine.Push(stream_id, x).ok()) return;
      }
      engine.FlushAll();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(shared_sink.size(), expected_total);
}

TEST(MonitorConcurrencyTest, CheckpointHandsOffBetweenThreads) {
  constexpr int64_t kTicks = 1200;
  const std::vector<double> stream = ShardStream(0, kTicks);
  const int64_t split = kTicks / 2 + 7;  // Mid-group, not on a boundary.

  const int64_t expected = ReferenceMatchCount(0, kTicks);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<uint8_t> checkpoint;
  bool checkpoint_ready = false;
  int64_t first_half_matches = 0;
  int64_t second_half_matches = 0;

  std::thread producer([&] {
    MonitorEngine engine;
    CollectSink sink;
    engine.AddSink(&sink);
    const int64_t stream_id = engine.AddStream("s");
    auto query_id =
        engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, TestOptions());
    if (!query_id.ok()) return;
    for (int64_t t = 0; t < split; ++t) {
      if (!engine.Push(stream_id, stream[static_cast<size_t>(t)]).ok()) {
        return;
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex);
      checkpoint = engine.SerializeState();
      first_half_matches = static_cast<int64_t>(sink.entries().size());
      checkpoint_ready = true;
    }
    cv.notify_one();
    // The producer abandons its engine here; the consumer owns the stream
    // from the checkpoint on.
  });

  std::thread consumer([&] {
    std::vector<uint8_t> bytes;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return checkpoint_ready; });
      bytes = checkpoint;
    }
    MonitorEngine engine;
    CollectSink sink;
    engine.AddSink(&sink);
    const auto restored = engine.RestoreState(bytes);
    if (!restored.ok()) return;
    for (int64_t t = split; t < kTicks; ++t) {
      if (!engine.Push(0, stream[static_cast<size_t>(t)]).ok()) return;
    }
    engine.FlushAll();
    const std::lock_guard<std::mutex> lock(mutex);
    second_half_matches = static_cast<int64_t>(sink.entries().size());
  });

  producer.join();
  consumer.join();

  const std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(first_half_matches + second_half_matches, expected);
}

TEST(MonitorConcurrencyTest, ReporterThreadSnapshotsWhileIngesting) {
  constexpr int64_t kTicks = 3000;

  std::mutex engine_mutex;
  obs::Observability obs;
  MonitorEngine engine;
  engine.AttachObservability(&obs);
  CollectSink sink;
  engine.AddSink(&sink);
  const int64_t stream_id = engine.AddStream("s");
  auto query_id =
      engine.AddQuery(stream_id, "q", {1.0, 2.0, 3.0}, TestOptions());
  ASSERT_TRUE(query_id.ok());

  const std::vector<double> stream = ShardStream(0, kTicks);
  std::atomic<bool> done{false};
  std::atomic<int64_t> snapshots_taken{0};
  std::vector<uint8_t> last_checkpoint;

  std::thread producer([&] {
    for (const double x : stream) {
      const std::lock_guard<std::mutex> lock(engine_mutex);
      if (!engine.Push(stream_id, x).ok()) break;
    }
    {
      const std::lock_guard<std::mutex> lock(engine_mutex);
      engine.FlushAll();
    }
    done.store(true, std::memory_order_release);
  });

  std::thread reporter([&] {
    // Loop until one more snapshot has been taken *after* the producer
    // finished: guarantees at least one snapshot even if the producer
    // outraces the reporter entirely, and makes the last checkpoint cover
    // the fully flushed engine.
    bool final_pass = false;
    while (true) {
      {
        const std::lock_guard<std::mutex> lock(engine_mutex);
        engine.RefreshObservabilityGauges();
        last_checkpoint = engine.SerializeState();
      }
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      if (final_pass) break;
      final_pass = done.load(std::memory_order_acquire);
      std::this_thread::yield();
    }
  });

  producer.join();
  reporter.join();

  EXPECT_GT(snapshots_taken.load(), 0);
  ASSERT_FALSE(last_checkpoint.empty());
  // Every snapshot the reporter took must be a restorable checkpoint.
  MonitorEngine resumed;
  const auto restored = resumed.RestoreState(last_checkpoint);
  EXPECT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_EQ(resumed.num_streams(), 1);
  EXPECT_EQ(resumed.num_queries(), 1);
}

TEST(MonitorConcurrencyTest, ShardedMonitorSurvivesBarrierHammering) {
  // Small queue (forces ring wrap-around and producer blocking), frequent
  // drains (exercises the consumed/produced barrier mid-stream), plus a
  // full stop/restart cycle. Matches must still equal the per-shard
  // references exactly.
  constexpr int kStreams = 4;
  constexpr int64_t kTicks = 2000;

  int64_t expected_total = 0;
  for (int i = 0; i < kStreams; ++i) {
    expected_total += ReferenceMatchCount(i, kTicks);
  }

  ShardedMonitorOptions options;
  options.num_workers = 4;
  options.queue_capacity = 4;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  std::vector<int64_t> stream_ids;
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < kStreams; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              TestOptions())
                    .ok());
    inputs.push_back(ShardStream(i, kTicks));
  }

  monitor.Start();
  int64_t delivered = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    for (int i = 0; i < kStreams; ++i) {
      ASSERT_TRUE(monitor
                      .Push(stream_ids[static_cast<size_t>(i)],
                            inputs[static_cast<size_t>(i)]
                                  [static_cast<size_t>(t)])
                      .ok());
    }
    if (t % 97 == 0) delivered += monitor.Drain();
    if (t == kTicks / 2) {
      // Stop/restart mid-stream: all state must survive the worker
      // threads being torn down and respawned.
      monitor.Stop();
      monitor.Start();
    }
  }
  delivered += monitor.FlushAll();
  monitor.Stop();

  EXPECT_EQ(delivered, expected_total);
  EXPECT_EQ(static_cast<int64_t>(sink.entries().size()), expected_total);
}

TEST(MonitorConcurrencyTest, IntrospectionSnapshotsRaceFreeWhileIngesting) {
  // The PR 4 introspection surface under TSan: the router thread ingests
  // at full speed while this thread (standing in for the HTTP server
  // thread, which calls exactly these methods) hammers every snapshot
  // accessor. Snapshots must only ever touch published (mutex-guarded)
  // slots and always-safe atomics, so any race TSan finds here is a bug in
  // the publish protocol, not the test.
  constexpr int kStreams = 4;
  constexpr int64_t kTicks = 1500;

  int64_t expected_total = 0;
  for (int i = 0; i < kStreams; ++i) {
    expected_total += ReferenceMatchCount(i, kTicks);
  }

  ShardedMonitorOptions options;
  options.num_workers = 4;
  options.queue_capacity = 8;
  options.enable_introspection = true;
  options.publish_interval_ms = 0.0;  // republish on every message
  options.staleness_budget_ms = 60000.0;  // never flips during the test
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  std::vector<int64_t> stream_ids;
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < kStreams; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              TestOptions())
                    .ok());
    inputs.push_back(ShardStream(i, kTicks));
  }

  monitor.Start();
  std::atomic<bool> done{false};
  std::atomic<int64_t> snapshots_taken{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::HealthReport health = monitor.HealthSnapshot();
      EXPECT_TRUE(health.healthy) << health.state;
      const obs::StatusReport status = monitor.StatusSnapshot();
      EXPECT_EQ(status.role, "sharded_monitor");
      (void)monitor.PublishedMetricsSnapshot();
      (void)monitor.PublishedTraces();
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  int64_t delivered = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    for (int i = 0; i < kStreams; ++i) {
      ASSERT_TRUE(monitor
                      .Push(stream_ids[static_cast<size_t>(i)],
                            inputs[static_cast<size_t>(i)]
                                  [static_cast<size_t>(t)])
                      .ok());
    }
    if (t % 97 == 0) delivered += monitor.Drain();
  }
  delivered += monitor.FlushAll();
  done.store(true, std::memory_order_release);
  scraper.join();
  monitor.Stop();

  EXPECT_GT(snapshots_taken.load(), 0);
  EXPECT_EQ(delivered, expected_total);
  EXPECT_EQ(static_cast<int64_t>(sink.entries().size()), expected_total);
}

TEST(MonitorConcurrencyTest, SpanStagesStayMonotoneUnderStress) {
  // End-to-end span sampling at its most aggressive (every tick sampled,
  // tiny ring forcing wrap-around) while a scraper thread hammers the
  // span/cost snapshot accessors. Two invariants under TSan:
  //   * the publish protocol stays race-free (TSan verdict), and
  //   * every completed span's stage timestamps are monotone in pipeline
  //     order — each stamp is taken on one monotonic clock strictly after
  //     the previous stage's, across three threads (router -> worker ->
  //     router), so any inversion means a broken happens-before edge.
  constexpr int kStreams = 4;
  constexpr int64_t kTicks = 1500;

  ShardedMonitorOptions options;
  options.num_workers = 4;
  options.queue_capacity = 8;
  options.enable_introspection = true;
  options.publish_interval_ms = 0.0;
  options.staleness_budget_ms = 60000.0;
  options.span_sample_every = 1;
  options.span_ring_capacity = 64;
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  std::vector<int64_t> stream_ids;
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < kStreams; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              TestOptions())
                    .ok());
    inputs.push_back(ShardStream(i, kTicks));
  }

  monitor.Start();
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)monitor.PublishedSpans();
      (void)monitor.QueryzJson();
      (void)monitor.StreamzJson();
      std::this_thread::yield();
    }
  });

  for (int64_t t = 0; t < kTicks; ++t) {
    for (int i = 0; i < kStreams; ++i) {
      ASSERT_TRUE(monitor
                      .Push(stream_ids[static_cast<size_t>(i)],
                            inputs[static_cast<size_t>(i)]
                                  [static_cast<size_t>(t)])
                      .ok());
    }
    if (t % 97 == 0) monitor.Drain();
  }
  monitor.FlushAll();
  done.store(true, std::memory_order_release);
  scraper.join();

  const obs::SpanzReport report = monitor.PublishedSpans();
  ASSERT_FALSE(report.spans.empty());
  EXPECT_GT(report.dropped, 0) << "every-tick sampling must wrap a 64-ring";
  uint64_t prev_seq = 0;
  bool first = true;
  for (const obs::TickSpan& span : report.spans) {
    EXPECT_EQ(span.client_send_nanos, 0u) << "in-process pushes are unstamped";
    EXPECT_GT(span.server_recv_nanos, 0u);
    EXPECT_GE(span.router_enqueue_nanos, span.server_recv_nanos);
    EXPECT_GE(span.worker_pop_nanos, span.router_enqueue_nanos);
    EXPECT_GE(span.worker_done_nanos, span.worker_pop_nanos);
    EXPECT_GE(span.delivered_nanos, span.worker_done_nanos);
    EXPECT_EQ(span.subscriber_write_nanos, 0u) << "no net server attached";
    EXPECT_GE(span.stream_id, 0);
    if (!first) {
      EXPECT_GT(span.seq, prev_seq) << "ring must stay seq-ordered";
    }
    prev_seq = span.seq;
    first = false;
  }

  monitor.Stop();
}

TEST(MonitorConcurrencyTest, TimelineAndAlertScrapesRaceFreeWhileIngesting) {
  // The timeline + alerting layer under TSan: the router thread (this
  // thread) folds published snapshots into the timeline and runs alert
  // evaluation on every Drain (publish_interval_ms = 0 defeats the poll
  // throttle), while a scraper thread hammers /timez and /alertz render
  // paths plus the health verdict. Timeline and engine live behind the
  // monitor's timeline mutex and the page verdict rides an atomic — any
  // race TSan finds is a protocol bug.
  constexpr int kStreams = 4;
  constexpr int64_t kTicks = 1500;

  int64_t expected_total = 0;
  for (int i = 0; i < kStreams; ++i) {
    expected_total += ReferenceMatchCount(i, kTicks);
  }

  ShardedMonitorOptions options;
  options.num_workers = 4;
  options.queue_capacity = 8;
  options.publish_interval_ms = 0.0;
  options.staleness_budget_ms = 60000.0;  // never flips during the test
  options.enable_timeline = true;
  options.slo_p99_ms = 1e9;  // Burn rule present, never trips.
  for (const char* line :
       {"alert hot warn rate(spring_ticks_total) > 1e15",
        "alert rings page ratio(spring_ring_occupancy, spring_ring_capacity)"
        " > 2"}) {
    auto rule = obs::ParseAlertRule(line);
    ASSERT_TRUE(rule.ok()) << rule.status().ToString();
    options.alert_rules.push_back(*std::move(rule));
  }
  ShardedMonitor monitor(options);
  CollectSink sink;
  monitor.AddSink(&sink);
  std::vector<int64_t> stream_ids;
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < kStreams; ++i) {
    stream_ids.push_back(monitor.AddStream("s" + std::to_string(i)));
    ASSERT_TRUE(monitor
                    .AddQuery(stream_ids.back(), "q", {1.0, 2.0, 3.0},
                              TestOptions())
                    .ok());
    inputs.push_back(ShardStream(i, kTicks));
  }

  monitor.Start();
  std::atomic<bool> done{false};
  std::atomic<int64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)monitor.TimezJson("");
      (void)monitor.TimezJson("metric=spring_ticks_total&window=60");
      const std::string alertz = monitor.AlertzJson();
      EXPECT_NE(alertz.find("\"rules\":["), std::string::npos);
      const obs::HealthReport health = monitor.HealthSnapshot();
      EXPECT_TRUE(health.healthy) << health.state;
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  int64_t delivered = 0;
  for (int64_t t = 0; t < kTicks; ++t) {
    for (int i = 0; i < kStreams; ++i) {
      ASSERT_TRUE(monitor
                      .Push(stream_ids[static_cast<size_t>(i)],
                            inputs[static_cast<size_t>(i)]
                                  [static_cast<size_t>(t)])
                      .ok());
    }
    if (t % 97 == 0) delivered += monitor.Drain();
  }
  delivered += monitor.FlushAll();
  done.store(true, std::memory_order_release);
  scraper.join();
  monitor.Stop();

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(delivered, expected_total);
  // The barriers drove real evaluation passes over real records.
  EXPECT_NE(monitor.TimezJson("").find("spring_ticks_total"),
            std::string::npos);
  EXPECT_NE(monitor.AlertzJson().find("\"name\":\"hot\""), std::string::npos);
}

}  // namespace
}  // namespace monitor
}  // namespace springdtw
