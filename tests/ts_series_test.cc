#include "ts/series.h"

#include <cmath>

#include <gtest/gtest.h>

namespace springdtw {
namespace ts {
namespace {

TEST(SeriesTest, EmptyByDefault) {
  Series s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
}

TEST(SeriesTest, ConstructFromVector) {
  Series s({1.0, 2.0, 3.0}, "demo");
  EXPECT_EQ(s.size(), 3);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_EQ(s.name(), "demo");
}

TEST(SeriesTest, AppendAndMutate) {
  Series s;
  s.Append(1.0);
  s.Append(2.0);
  s[0] = 5.0;
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  EXPECT_EQ(s.size(), 2);
}

TEST(SeriesTest, AppendAll) {
  Series a({1.0, 2.0});
  Series b({3.0});
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 3);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
}

TEST(SeriesTest, SliceBasics) {
  Series s({0.0, 1.0, 2.0, 3.0, 4.0});
  Series mid = s.Slice(1, 3);
  EXPECT_EQ(mid.size(), 3);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[2], 3.0);
}

TEST(SeriesTest, SliceClampsOutOfRange) {
  Series s({0.0, 1.0, 2.0});
  EXPECT_EQ(s.Slice(2, 10).size(), 1);
  EXPECT_EQ(s.Slice(-5, 2).size(), 2);
  EXPECT_EQ(s.Slice(10, 2).size(), 0);
  EXPECT_EQ(s.Slice(0, -1).size(), 0);
}

TEST(SeriesTest, MissingValues) {
  EXPECT_TRUE(IsMissing(MissingValue()));
  EXPECT_FALSE(IsMissing(0.0));
  Series s({1.0, MissingValue(), 3.0, MissingValue()});
  EXPECT_EQ(s.CountMissing(), 2);
}

TEST(SeriesTest, StatsIgnoreMissing) {
  Series s({2.0, MissingValue(), 4.0});
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 1.0);
}

TEST(SeriesTest, StatsOfAllMissing) {
  Series s({MissingValue(), MissingValue()});
  EXPECT_TRUE(std::isinf(s.Min()));
  EXPECT_TRUE(std::isinf(s.Max()));
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SeriesTest, EqualityTreatsNanAsEqual) {
  Series a({1.0, MissingValue()});
  Series b({1.0, MissingValue()});
  Series c({1.0, 2.0});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == Series({1.0}));
}

TEST(SeriesTest, ReserveAndClear) {
  Series s;
  s.Reserve(100);
  s.Append(1.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace ts
}  // namespace springdtw
