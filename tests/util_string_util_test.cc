#include "util/string_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace springdtw {
namespace util {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, HandlesLongOutput) {
  const std::string long_arg(1000, 'a');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
}

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, AdjacentSeparatorsYieldEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrips) {
  const std::string text = "1,2,,3";
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  ASSERT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  ASSERT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  ASSERT_TRUE(ParseDouble(" 7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, ParsesNanAsMissing) {
  double v = 0.0;
  ASSERT_TRUE(ParseDouble("nan", &v));
  EXPECT_TRUE(std::isnan(v));
  ASSERT_TRUE(ParseDouble("NaN", &v));
  EXPECT_TRUE(std::isnan(v));
}

TEST(ParseDoubleTest, RejectsMalformed) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  int64_t v = 0;
  ASSERT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  ASSERT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  ASSERT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(ParseInt64Test, RejectsMalformedAndOverflow) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999", &v));
}

TEST(HumanBytesTest, PicksBinarySuffix) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024), "1.5 MiB");
  EXPECT_EQ(HumanBytes(3.0 * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

}  // namespace
}  // namespace util
}  // namespace springdtw
