// Robustness: deserializers must never crash on corrupt input — every
// random truncation, byte flip, or splice of a valid snapshot either
// round-trips (mutation hit a don't-care byte) or fails cleanly with a
// Status.

#include <vector>

#include <gtest/gtest.h>

#include "core/spring.h"
#include "core/vector_spring.h"
#include "monitor/engine.h"
#include "util/random.h"

namespace springdtw {
namespace {

std::vector<uint8_t> MakeScalarSnapshot() {
  core::SpringOptions options;
  options.epsilon = 2.0;
  core::SpringMatcher matcher({1.0, 2.0, 3.0, 4.0}, options);
  util::Rng rng(31);
  core::Match match;
  for (int t = 0; t < 50; ++t) matcher.Update(rng.Gaussian(), &match);
  return matcher.SerializeState();
}

TEST(SnapshotFuzzTest, TruncationsNeverCrashScalarMatcher) {
  const std::vector<uint8_t> snapshot = MakeScalarSnapshot();
  for (size_t cut = 0; cut < snapshot.size(); ++cut) {
    std::vector<uint8_t> truncated(snapshot.begin(),
                                   snapshot.begin() +
                                       static_cast<ptrdiff_t>(cut));
    const auto restored = core::SpringMatcher::DeserializeState(truncated);
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
  }
}

TEST(SnapshotFuzzTest, ByteFlipsNeverCrashScalarMatcher) {
  const std::vector<uint8_t> snapshot = MakeScalarSnapshot();
  util::Rng rng(32);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> mutated = snapshot;
    const int flips = static_cast<int>(rng.UniformInt(1, 4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    // Must not crash; any Status outcome is acceptable. If it restores,
    // the matcher must still be usable.
    auto restored = core::SpringMatcher::DeserializeState(mutated);
    if (restored.ok()) {
      core::Match match;
      restored->Update(1.0, &match);
    }
  }
}

TEST(SnapshotFuzzTest, RandomGarbageNeverCrashesAnyDeserializer) {
  util::Rng rng(33);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> garbage(
        static_cast<size_t>(rng.UniformInt(0, 300)));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    EXPECT_FALSE(core::SpringMatcher::DeserializeState(garbage).ok());
    EXPECT_FALSE(core::VectorSpringMatcher::DeserializeState(garbage).ok());
    monitor::MonitorEngine engine;
    EXPECT_FALSE(engine.RestoreState(garbage).ok());
  }
}

TEST(SnapshotFuzzTest, EngineCheckpointByteFlipsNeverCrash) {
  monitor::MonitorEngine original;
  const int64_t stream = original.AddStream("s");
  core::SpringOptions options;
  options.epsilon = 1.0;
  ASSERT_TRUE(original.AddQuery(stream, "q", {1.0, 2.0}, options).ok());
  const int64_t vstream = original.AddVectorStream("v", 2);
  ts::VectorSeries vquery(2);
  vquery.AppendRow(std::vector<double>{1.0, -1.0});
  ASSERT_TRUE(original.AddVectorQuery(vstream, "vq", vquery, options).ok());
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(original.Push(stream, 0.5 * t).ok());
    ASSERT_TRUE(
        original.PushRow(vstream, std::vector<double>{0.1 * t, -0.1 * t})
            .ok());
  }
  const std::vector<uint8_t> checkpoint = original.SerializeState();

  util::Rng rng(34);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<uint8_t> mutated = checkpoint;
    const auto pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    monitor::MonitorEngine engine;
    const util::Status status = engine.RestoreState(mutated);
    if (status.ok()) {
      // If the flip hit a benign byte (say a stats value), the engine must
      // still accept pushes on restored streams.
      EXPECT_TRUE(engine.Push(0, 1.0).ok());
    }
  }
}

}  // namespace
}  // namespace springdtw
