// Checkpoint & resume: simulate a monitoring-process restart. The engine
// is checkpointed mid-stream, "crashes", is restored in a fresh engine,
// and the remaining stream produces exactly the matches the uninterrupted
// run would have produced — no replay of history required.
//
//   ./checkpoint_resume [--length=20000] [--cut=10000]

#include <cstdio>
#include <vector>

#include "gen/masked_chirp.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "util/flags.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  gen::MaskedChirpOptions options;
  options.length = flags.GetInt64("length", 20000);
  const int64_t cut = flags.GetInt64("cut", options.length / 2);
  const auto data = GenerateMaskedChirp(options, 1024);

  core::SpringOptions query_options;
  query_options.epsilon = 60.0;

  // --- Reference: one uninterrupted run. ---
  monitor::MonitorEngine reference;
  monitor::CollectSink reference_sink;
  reference.AddSink(&reference_sink);
  const int64_t ref_stream = reference.AddStream("sensor");
  if (!reference
           .AddQuery(ref_stream, "pattern", data.query.values(),
                     query_options)
           .ok()) {
    return 1;
  }
  for (int64_t t = 0; t < data.stream.size(); ++t) {
    (void)reference.Push(ref_stream, data.stream[t]);
  }
  reference.FlushAll();

  // --- Interrupted run: process half, checkpoint, "crash", restore. ---
  monitor::MonitorEngine first_process;
  monitor::CollectSink first_sink;
  first_process.AddSink(&first_sink);
  const int64_t stream = first_process.AddStream("sensor");
  if (!first_process
           .AddQuery(stream, "pattern", data.query.values(), query_options)
           .ok()) {
    return 1;
  }
  for (int64_t t = 0; t < cut; ++t) {
    (void)first_process.Push(stream, data.stream[t]);
  }
  const std::vector<uint8_t> checkpoint = first_process.SerializeState();
  std::printf("checkpoint at tick %lld: %s (%zu matches so far)\n",
              static_cast<long long>(cut),
              util::HumanBytes(static_cast<double>(checkpoint.size()))
                  .c_str(),
              first_sink.entries().size());

  monitor::MonitorEngine second_process;  // The restarted process.
  monitor::CollectSink second_sink;
  second_process.AddSink(&second_sink);
  const util::Status restored = second_process.RestoreState(checkpoint);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.ToString().c_str());
    return 1;
  }
  for (int64_t t = cut; t < data.stream.size(); ++t) {
    (void)second_process.Push(stream, data.stream[t]);
  }
  second_process.FlushAll();

  // --- Compare: pre-crash matches + post-restore matches == reference. ---
  std::vector<core::Match> combined;
  for (const auto& e : first_sink.entries()) combined.push_back(e.match);
  for (const auto& e : second_sink.entries()) combined.push_back(e.match);

  std::printf("\nreference run:        %zu matches\n",
              reference_sink.entries().size());
  std::printf("crash + resume run:   %zu matches\n", combined.size());
  bool identical = combined.size() == reference_sink.entries().size();
  for (size_t i = 0; identical && i < combined.size(); ++i) {
    const core::Match& a = reference_sink.entries()[i].match;
    const core::Match& b = combined[i];
    identical = a.start == b.start && a.end == b.end &&
                a.report_time == b.report_time;
  }
  for (const core::Match& m : combined) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  std::printf("\nruns are %s\n",
              identical ? "IDENTICAL — no history replay was needed"
                        : "DIFFERENT (bug!)");
  return identical ? 0 : 1;
}
