// Seismic monitoring: spot an explosion signature (spike train) whose
// inter-spike intervals differ from the template — the paper's Kursk case
// study (Fig. 6(c)). Uses SpringPathMatcher so the report includes the
// optimal warping path, showing exactly how the intervals were stretched.
//
//   ./seismic_monitoring [--length=50000] [--jitter=0.15] [--seed=3]

#include <algorithm>
#include <cstdio>

#include "core/spring_path.h"
#include "core/subsequence_scan.h"
#include "gen/seismic.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  gen::SeismicOptions data_options;
  data_options.length = flags.GetInt64("length", 50000);
  data_options.interval_jitter = flags.GetDouble("jitter", 0.15);
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 3));
  const gen::SeismicData data = GenerateSeismic(data_options);

  std::vector<std::pair<int64_t, int64_t>> regions;
  for (const gen::PlantedEvent& e : data.events) {
    regions.emplace_back(e.start, e.end());
  }
  const double epsilon =
      core::CalibrateEpsilon(data.stream, data.query, regions, 1.3);

  std::printf(
      "seismic stream: %lld ticks; template: %lld ticks; interval jitter "
      "+/-%.0f%%; epsilon %.3g\n",
      static_cast<long long>(data.stream.size()),
      static_cast<long long>(data.query.size()),
      100.0 * data_options.interval_jitter, epsilon);

  core::SpringOptions options;
  options.epsilon = epsilon;
  core::SpringPathMatcher matcher(data.query.values(), options);

  std::vector<core::PathMatch> matches;
  core::PathMatch match;
  for (int64_t t = 0; t < data.stream.size(); ++t) {
    if (matcher.Update(data.stream[t], &match)) matches.push_back(match);
  }
  if (matcher.Flush(&match)) matches.push_back(match);

  for (const core::PathMatch& m : matches) {
    std::printf("\nevent detected: %s\n", m.match.ToString().c_str());
    // Summarize the warping: how much of the path is diagonal (1:1 time)
    // versus horizontal/vertical (stretch/compression).
    int64_t diagonal = 0;
    int64_t stretch = 0;
    int64_t compress = 0;
    for (size_t k = 1; k < m.path.size(); ++k) {
      const int64_t dt = m.path[k].first - m.path[k - 1].first;
      const int64_t di = m.path[k].second - m.path[k - 1].second;
      if (dt == 1 && di == 1) {
        ++diagonal;
      } else if (dt == 1) {
        ++stretch;  // Stream advances while the template waits.
      } else {
        ++compress;  // Template advances while the stream waits.
      }
    }
    std::printf(
        "  warping path: %zu steps (%lld diagonal, %lld stream-stretch, "
        "%lld template-stretch)\n",
        m.path.size(), static_cast<long long>(diagonal),
        static_cast<long long>(stretch), static_cast<long long>(compress));
  }

  std::printf("\nground truth:\n");
  for (const gen::PlantedEvent& e : data.events) {
    std::printf("  explosion at X[%lld:%lld]\n",
                static_cast<long long>(e.start),
                static_cast<long long>(e.end()));
  }
  std::printf("matcher working set: %s (live path nodes: %lld)\n",
              matcher.Footprint().ToString().c_str(),
              static_cast<long long>(matcher.live_nodes()));
  return matches.empty() ? 1 : 0;
}
