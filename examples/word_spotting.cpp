// Word spotting: find a spoken keyword in an "audio envelope" stream where
// speakers talk at different rates — the classic DTW application the paper
// cites from speech recognition, on a synthetic amplitude-envelope signal.
//
// Words are rendered as characteristic loudness envelopes (one bump per
// syllable); the same word spoken faster or slower is a time-rescaled
// version of the same envelope. SPRING spots every utterance of the keyword
// regardless of the speaking rate and ignores the other words.
//
//   ./word_spotting [--utterances=40] [--seed=7]

#include <cstdio>
#include <string>
#include <vector>

#include "core/spring.h"
#include "gen/signal.h"
#include "ts/series.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

using namespace springdtw;

// A "word" is a fixed syllable-amplitude signature. Rendering concatenates
// one Hann bump per syllable, scaled by the syllable's amplitude, then
// resamples to the utterance length (speaking rate).
struct Word {
  std::string text;
  std::vector<double> syllable_amplitudes;
};

std::vector<double> RenderWord(const Word& word, int64_t length,
                               util::Rng& rng, double noise_sigma) {
  const int64_t canonical_syllable = 80;
  std::vector<double> canonical;
  for (const double amp : word.syllable_amplitudes) {
    std::vector<double> bump = gen::HannWindow(canonical_syllable);
    for (double& b : bump) b *= amp;
    canonical.insert(canonical.end(), bump.begin(), bump.end());
  }
  std::vector<double> rendered = gen::Resample(canonical, length);
  gen::AddGaussianNoise(rng, rendered, noise_sigma);
  return rendered;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const int64_t utterances = flags.GetInt64("utterances", 40);
  util::Rng rng(static_cast<uint64_t>(flags.GetInt64("seed", 7)));

  const std::vector<Word> vocabulary = {
      {"data", {0.9, 0.5}},
      {"stream", {1.0}},
      {"monitoring", {0.7, 0.9, 0.4, 0.6}},
      {"warping", {0.8, 0.35}},   // The keyword.
      {"distance", {0.5, 0.95, 0.4}},
  };
  const Word& keyword = vocabulary[3];

  // Build the stream: random words at random speaking rates, separated by
  // silence gaps; remember where the keyword landed.
  ts::Series stream;
  std::vector<std::pair<int64_t, int64_t>> keyword_spans;
  for (int64_t u = 0; u < utterances; ++u) {
    const int64_t silence = rng.UniformInt(40, 160);
    for (int64_t s = 0; s < silence; ++s) {
      stream.Append(rng.Gaussian(0.0, 0.02));
    }
    const Word& word =
        vocabulary[static_cast<size_t>(rng.UniformInt(0, 4))];
    const auto canonical_len = static_cast<int64_t>(
        80 * word.syllable_amplitudes.size());
    const int64_t length = static_cast<int64_t>(
        static_cast<double>(canonical_len) / rng.Uniform(0.7, 1.4));
    const int64_t start = stream.size();
    for (const double x : RenderWord(word, length, rng, 0.02)) {
      stream.Append(x);
    }
    if (word.text == keyword.text) {
      keyword_spans.emplace_back(start, stream.size() - 1);
    }
  }

  // The query: the keyword at its canonical rate, clean.
  util::Rng query_rng = rng.Fork(99);
  const std::vector<double> query = RenderWord(
      keyword,
      static_cast<int64_t>(80 * keyword.syllable_amplitudes.size()),
      query_rng, 0.005);

  // Genuine keyword utterances score ~0.04 here; the closest impostor word
  // ("data", whose two-syllable envelope resembles the keyword's) scores
  // ~0.45, so 0.2 separates them cleanly.
  core::SpringOptions options;
  options.epsilon = 0.2;
  core::SpringMatcher matcher(query, options);

  std::printf(
      "stream: %lld ticks, %zu keyword utterances hidden among %lld words\n",
      static_cast<long long>(stream.size()), keyword_spans.size(),
      static_cast<long long>(utterances));

  std::vector<core::Match> hits;
  core::Match match;
  for (int64_t t = 0; t < stream.size(); ++t) {
    if (matcher.Update(stream[t], &match)) hits.push_back(match);
  }
  if (matcher.Flush(&match)) hits.push_back(match);

  int64_t true_positives = 0;
  for (const core::Match& m : hits) {
    bool is_keyword = false;
    for (const auto& [a, b] : keyword_spans) {
      if (m.start <= b && a <= m.end) is_keyword = true;
    }
    std::printf("  spotted %s  %s\n", m.ToString().c_str(),
                is_keyword ? "(keyword)" : "(FALSE ALARM)");
    if (is_keyword) ++true_positives;
  }
  std::printf("\nrecall: %lld / %zu utterances of '%s'\n",
              static_cast<long long>(true_positives), keyword_spans.size(),
              keyword.text.c_str());
  return 0;
}
