// Quickstart: spot a (time-warped, noisy) sine pattern in a stream with
// SPRING — the paper's Figure 1 scenario in ~40 lines of user code.
//
//   ./quickstart [--length=20000] [--seed=1]

#include <cstdio>

#include "core/spring.h"
#include "gen/masked_chirp.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  gen::MaskedChirpOptions data_options;
  data_options.length = flags.GetInt64("length", 20000);
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 1));

  // A stream of flat noise with four hidden sine episodes of different
  // periods, plus a query that is a sine of the mid period — none of the
  // episodes is an exact copy, so Euclidean matching would fail; DTW warps.
  const gen::MaskedChirpData data =
      GenerateMaskedChirp(data_options, /*query_length=*/2048);

  core::SpringOptions options;
  options.epsilon = 100.0;  // DTW distance threshold (squared local cost).
  core::SpringMatcher matcher(data.query.values(), options);

  std::printf("streaming %lld ticks, query length %lld, epsilon %.1f\n",
              static_cast<long long>(data.stream.size()),
              static_cast<long long>(data.query.size()), options.epsilon);

  core::Match match;
  int64_t found = 0;
  for (int64_t t = 0; t < data.stream.size(); ++t) {
    if (matcher.Update(data.stream[t], &match)) {
      std::printf("match #%lld: %s\n", static_cast<long long>(++found),
                  match.ToString().c_str());
    }
  }
  if (matcher.Flush(&match)) {
    std::printf("match #%lld (flushed at end): %s\n",
                static_cast<long long>(++found), match.ToString().c_str());
  }

  std::printf("\nplanted episodes for comparison:\n");
  for (const gen::PlantedEvent& e : data.events) {
    std::printf("  X[%lld:%lld]  %s\n", static_cast<long long>(e.start),
                static_cast<long long>(e.end()), e.label.c_str());
  }
  std::printf("\nbest match overall: %s\n",
              matcher.best().ToString().c_str());
  return 0;
}
