// Sensor monitoring: a temperature stream with sensor dropouts (missing
// readings) monitored by the MonitorEngine with two simultaneous pattern
// queries — the paper's Section 5.1 Temperature case study as an
// operational pipeline.
//
//   ./sensor_monitoring [--length=30000] [--seed=2] [--latency]

#include <cstdio>

#include "core/subsequence_scan.h"
#include "gen/temperature.h"
#include "monitor/engine.h"
#include "monitor/sink.h"
#include "monitor/stream_source.h"
#include "ts/repair.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  gen::TemperatureOptions data_options;
  data_options.length = flags.GetInt64("length", 30000);
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 2));
  const gen::TemperatureData data = GenerateTemperature(data_options);

  std::printf("temperature stream: %lld readings, %lld missing (%.1f%%)\n",
              static_cast<long long>(data.stream.size()),
              static_cast<long long>(data.stream.CountMissing()),
              100.0 * static_cast<double>(data.stream.CountMissing()) /
                  static_cast<double>(data.stream.size()));

  // Calibrate the threshold from the known warm-up regions (in practice an
  // operator picks epsilon from historical data, as the paper does per
  // dataset in Table 2).
  const ts::Series repaired =
      RepairMissing(data.stream, ts::RepairPolicy::kHoldLast);
  std::vector<std::pair<int64_t, int64_t>> regions;
  for (const gen::PlantedEvent& e : data.events) {
    regions.emplace_back(e.start, e.end());
  }
  const double epsilon =
      core::CalibrateEpsilon(repaired, data.query, regions, 1.2);
  std::printf("calibrated epsilon: %.1f\n\n", epsilon);

  monitor::MonitorEngine engine;
  engine.EnableLatencyTracking(flags.GetBool("latency", false));
  monitor::CollectSink collected;
  engine.AddSink(&collected);

  const int64_t stream_id =
      engine.AddStream("critter-temp", /*repair_missing=*/true);

  core::SpringOptions warmup_options;
  warmup_options.epsilon = epsilon;
  const auto warmup_query = engine.AddQuery(
      stream_id, "warmup-episode", data.query.values(), warmup_options);
  if (!warmup_query.ok()) {
    std::fprintf(stderr, "AddQuery: %s\n",
                 warmup_query.status().ToString().c_str());
    return 1;
  }

  // A second query: one clean diurnal cycle (daily rhythm detector). Its
  // threshold is deliberately loose; it fires on most days.
  ts::Series day = data.query.Slice(0, data_options.day_length);
  core::SpringOptions day_options;
  day_options.epsilon = 4.0 * epsilon;
  const auto day_query =
      engine.AddQuery(stream_id, "daily-cycle", day.values(), day_options);
  if (!day_query.ok()) {
    std::fprintf(stderr, "AddQuery: %s\n",
                 day_query.status().ToString().c_str());
    return 1;
  }

  // Replay the raw stream (NaN included: the engine repairs online).
  for (int64_t t = 0; t < data.stream.size(); ++t) {
    const auto pushed = engine.Push(stream_id, data.stream[t]);
    if (!pushed.ok()) {
      std::fprintf(stderr, "Push: %s\n", pushed.status().ToString().c_str());
      return 1;
    }
  }
  engine.FlushAll();

  std::printf("matches:\n");
  for (const auto& entry : collected.entries()) {
    std::printf("  [%s] %s\n", entry.origin.query_name.c_str(),
                entry.match.ToString().c_str());
  }

  const monitor::QueryStats& stats = engine.stats(*warmup_query);
  std::printf(
      "\nwarmup query: %lld ticks, %lld matches, mean output delay %.1f "
      "ticks\n",
      static_cast<long long>(stats.ticks),
      static_cast<long long>(stats.matches), stats.output_delay.mean());
  std::printf("engine working set: %s\n",
              engine.Footprint().ToString().c_str());
  if (flags.GetBool("latency", false)) {
    std::printf("push latency (ns): %s\n",
                engine.push_latency_nanos().Summary().c_str());
  }
  return 0;
}
