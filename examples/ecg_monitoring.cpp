// ECG monitoring: spot ectopic (anomalous) heartbeats in an ECG-like
// stream whose heart rate drifts — the bio-medical monitoring application
// the paper's abstract motivates. Two SPRING queries run side by side: the
// ectopic-beat template finds the anomalies; the normal-beat template
// confirms the rhythm elsewhere.
//
//   ./ecg_monitoring [--length=30000] [--anomalies=3] [--seed=6]

#include <cstdio>

#include "core/subsequence_scan.h"
#include "eval/detection.h"
#include "gen/ecg.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace springdtw;

  util::FlagParser flags(argc, argv);
  gen::EcgOptions options;
  options.length = flags.GetInt64("length", 30000);
  options.num_anomalies = flags.GetInt64("anomalies", 3);
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 6));
  const gen::EcgData data = GenerateEcg(options);

  std::printf(
      "ECG stream: %lld ticks (~%lld beats, rate varying +/-%.0f%%), "
      "%zu ectopic beats planted\n",
      static_cast<long long>(data.stream.size()),
      static_cast<long long>(static_cast<double>(data.stream.size()) /
                             options.beat_period),
      100.0 * options.rate_variability, data.anomalies.size());

  // Calibrate the ectopic query's threshold from the planted regions.
  std::vector<std::pair<int64_t, int64_t>> regions;
  for (const gen::PlantedEvent& e : data.anomalies) {
    regions.emplace_back(e.start, e.end());
  }
  const double epsilon =
      core::CalibrateEpsilon(data.stream, data.anomalous_beat, regions, 1.2);
  std::printf("ectopic-query epsilon: %.4g\n\n", epsilon);

  const std::vector<core::Match> alarms =
      core::DisjointMatches(data.stream, data.anomalous_beat, epsilon);
  for (const core::Match& m : alarms) {
    std::printf("ectopic beat suspected: %s\n", m.ToString().c_str());
  }

  const eval::DetectionScore score =
      eval::ScoreMatches(data.anomalies, alarms);
  std::printf("\ndetection vs ground truth: %s\n", score.ToString().c_str());

  // Sanity: the normal-beat query matches all over the place (the rhythm),
  // demonstrating DTW's tolerance of the drifting heart rate.
  const std::vector<core::Match> beats = core::TopKDisjointMatches(
      data.stream, data.normal_beat, 5);
  std::printf("\n5 closest normal beats (rate-warped, still ~0 distance):\n");
  for (const core::Match& m : beats) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  return score.recall() == 1.0 ? 0 : 1;
}
