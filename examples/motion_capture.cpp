// Motion capture: monitor a 62-dimensional motion stream with one
// VectorSpringMatcher per motion archetype and label every segment — the
// paper's Section 5.3 experiment (Figure 9).
//
//   ./motion_capture [--dims=62] [--seed=5]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/vector_spring.h"
#include "gen/mocap.h"
#include "util/flags.h"

namespace {

using namespace springdtw;

// Per-archetype epsilon: the worst best-subsequence distance over that
// archetype's own segments, with slack.
double CalibrateForArchetype(const gen::MocapData& data,
                             const std::string& name,
                             const ts::VectorSeries& query) {
  double epsilon = 0.0;
  for (const gen::PlantedEvent& e : data.events) {
    if (e.label != name) continue;
    const ts::VectorSeries segment = data.stream.Slice(e.start, e.length);
    core::SpringOptions probe;
    probe.epsilon = -1.0;
    core::VectorSpringMatcher matcher(query, probe);
    for (int64_t t = 0; t < segment.size(); ++t) {
      matcher.Update(segment.Row(t), nullptr);
    }
    epsilon = std::max(epsilon, matcher.best().distance);
  }
  return epsilon * 1.2;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  gen::MocapOptions options;
  options.dims = flags.GetInt64("dims", 62);
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 5));
  const gen::MocapData data = GenerateMocap(options);

  std::printf("mocap stream: %lld ticks x %lld channels; script:",
              static_cast<long long>(data.stream.size()),
              static_cast<long long>(data.stream.dims()));
  for (const gen::PlantedEvent& e : data.events) {
    std::printf(" %s", e.label.c_str());
  }
  std::printf("\n\n");

  // One matcher per archetype, all fed in lockstep (this is what the
  // monitor engine does for scalar streams; vector streams are driven
  // directly here).
  struct ArchetypeMatcher {
    std::string name;
    core::VectorSpringMatcher matcher;
  };
  std::vector<ArchetypeMatcher> matchers;
  for (const auto& [name, query] : data.queries) {
    core::SpringOptions spring_options;
    spring_options.epsilon = CalibrateForArchetype(data, name, query);
    std::printf("query '%s': %lld ticks, epsilon %.3g\n", name.c_str(),
                static_cast<long long>(query.size()),
                spring_options.epsilon);
    matchers.push_back(
        ArchetypeMatcher{name,
                         core::VectorSpringMatcher(query, spring_options)});
  }
  std::printf("\n");

  struct Labeled {
    std::string name;
    core::Match match;
  };
  std::vector<Labeled> found;
  core::Match match;
  for (int64_t t = 0; t < data.stream.size(); ++t) {
    for (ArchetypeMatcher& am : matchers) {
      if (am.matcher.Update(data.stream.Row(t), &match)) {
        found.push_back(Labeled{am.name, match});
      }
    }
  }
  for (ArchetypeMatcher& am : matchers) {
    if (am.matcher.Flush(&match)) found.push_back(Labeled{am.name, match});
  }
  std::sort(found.begin(), found.end(),
            [](const Labeled& a, const Labeled& b) {
              return a.match.start < b.match.start;
            });

  std::printf("detected motions (group ranges, Section 5.3 reporting):\n");
  for (const Labeled& l : found) {
    std::printf("  %-9s X[%lld:%lld]  dist=%.4g\n", l.name.c_str(),
                static_cast<long long>(l.match.group_start),
                static_cast<long long>(l.match.group_end), l.match.distance);
  }

  // Score against ground truth.
  int64_t covered = 0;
  for (const gen::PlantedEvent& e : data.events) {
    for (const Labeled& l : found) {
      if (l.name == e.label &&
          gen::IntervalsOverlap(e.start, e.end(), l.match.start,
                                l.match.end)) {
        ++covered;
        break;
      }
    }
  }
  std::printf("\n%lld / %zu scripted motions spotted by their own query\n",
              static_cast<long long>(covered), data.events.size());
  return covered == static_cast<int64_t>(data.events.size()) ? 0 : 1;
}
